#!/usr/bin/env python3
"""Author-name deduplication: the paper's short-string scenario.

The introduction motivates similarity joins with data cleaning: the same
person appears under slightly different spellings ("kaushik chaudhuri" vs
"kaushic chaduri").  This example generates an author-name dataset with
planted misspellings, joins it at several thresholds, and builds duplicate
clusters from the join result using a union-find over the similar pairs.

Usage::

    python examples/author_deduplication.py [num_strings]
"""

from __future__ import annotations

import sys
from collections import defaultdict

from repro import pass_join
from repro.datasets import dataset_statistics, generate_author_dataset


class UnionFind:
    """Minimal union-find for grouping similar strings into clusters."""

    def __init__(self, size: int) -> None:
        self.parent = list(range(size))

    def find(self, item: int) -> int:
        while self.parent[item] != item:
            self.parent[item] = self.parent[self.parent[item]]
            item = self.parent[item]
        return item

    def union(self, a: int, b: int) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            self.parent[root_b] = root_a


def cluster_duplicates(strings: list[str], tau: int) -> list[list[str]]:
    """Group strings into clusters connected by edit distance <= tau."""
    result = pass_join(strings, tau)
    union_find = UnionFind(len(strings))
    for pair in result:
        union_find.union(pair.left_id, pair.right_id)
    clusters: dict[int, list[str]] = defaultdict(list)
    for index, text in enumerate(strings):
        clusters[union_find.find(index)].append(text)
    return [members for members in clusters.values() if len(members) > 1]


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 3000
    names = generate_author_dataset(size, seed=42, duplicate_fraction=0.2)
    stats = dataset_statistics(names)
    print(f"dataset: {stats.cardinality} author names, "
          f"avg length {stats.avg_length:.1f} "
          f"(min {stats.min_length}, max {stats.max_length})")
    print()

    for tau in (1, 2, 3):
        result = pass_join(names, tau)
        join_stats = result.statistics
        print(f"tau = {tau}: {len(result)} similar pairs, "
              f"{join_stats.num_candidates} candidates, "
              f"{join_stats.total_seconds:.2f}s")

    tau = 2
    clusters = cluster_duplicates(names, tau)
    clusters.sort(key=len, reverse=True)
    print()
    print(f"duplicate clusters at tau = {tau}: {len(clusters)}")
    for members in clusters[:5]:
        print(f"  cluster of {len(members)}: " + " | ".join(sorted(members)[:4])
              + (" ..." if len(members) > 4 else ""))


if __name__ == "__main__":
    main()
