#!/usr/bin/env python3
"""Near-duplicate query detection in a search query log (medium strings).

Search engines mine query logs for near-duplicate queries (typos,
reformulations) to improve suggestions and spelling correction.  This
example generates a query-log-like dataset, runs Pass-Join at increasing
thresholds, and contrasts the work done by the four substring-selection
methods on the same workload — a miniature of the paper's Figure 12.

Usage::

    python examples/query_log_analysis.py [num_queries]
"""

from __future__ import annotations

import sys

from repro import JoinConfig, PassJoin, SelectionMethod
from repro.datasets import dataset_statistics, generate_querylog_dataset


def threshold_sweep(queries: list[str]) -> None:
    print("similar query pairs by threshold")
    print("-" * 40)
    for tau in (2, 4, 6, 8):
        result = PassJoin(tau).self_join(queries)
        print(f"  tau = {tau}: {len(result):5d} pairs   "
              f"candidates = {result.statistics.num_candidates:6d}   "
              f"time = {result.statistics.total_seconds:6.2f}s")
    print()


def selection_method_comparison(queries: list[str], tau: int) -> None:
    print(f"substring-selection comparison (tau = {tau})")
    print("-" * 40)
    for method in SelectionMethod:
        config = JoinConfig(selection=method)
        stats = PassJoin(tau, config).self_join(queries).statistics
        print(f"  {method.value:12s} selected = {stats.num_selected_substrings:8d}   "
              f"probes = {stats.num_index_probes:8d}   "
              f"selection time = {stats.selection_seconds:5.2f}s")
    print()


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 1500
    queries = generate_querylog_dataset(size, seed=7, duplicate_fraction=0.25)
    stats = dataset_statistics(queries)
    print(f"dataset: {stats.cardinality} queries, avg length {stats.avg_length:.1f}")
    print()
    threshold_sweep(queries)
    selection_method_comparison(queries, tau=4)


if __name__ == "__main__":
    main()
