#!/usr/bin/env python3
"""Joining long bibliography strings across two sources (an R-S join).

The paper's long-string dataset concatenates author names and paper titles;
a classic integration task is matching two bibliographies whose entries
differ by small typos or formatting edits.  This example builds two
overlapping "bibliographies" (a clean one and a corrupted copy with extra
records), joins them with Pass-Join's R-S join, and reports precision of the
match against the known ground truth.

It also compares Pass-Join with the ED-Join baseline on the same workload —
a miniature of the paper's long-string experiment (Figure 15c).

Usage::

    python examples/long_title_join.py [num_titles]
"""

from __future__ import annotations

import random
import sys
import time

from repro import PassJoin
from repro.baselines import EdJoin
from repro.datasets import (apply_random_edits, dataset_statistics,
                            generate_title_dataset)


def build_bibliographies(size: int, tau: int) -> tuple[list[str], list[str], dict[int, int]]:
    """Return (clean source, corrupted source, ground-truth mapping)."""
    rng = random.Random(99)
    clean = generate_title_dataset(size, seed=3, duplicate_fraction=0.0)
    corrupted: list[str] = []
    truth: dict[int, int] = {}
    for index, record in enumerate(clean):
        if rng.random() < 0.7:          # 70% of records appear in both sources
            mangled = apply_random_edits(record, rng.randint(0, tau), rng)
            truth[len(corrupted)] = index
            corrupted.append(mangled)
    # Plus some records only present in the second source.
    corrupted.extend(generate_title_dataset(size // 3, seed=4,
                                            duplicate_fraction=0.0))
    return clean, corrupted, truth


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 800
    tau = 6
    clean, corrupted, truth = build_bibliographies(size, tau)
    stats = dataset_statistics(clean)
    print(f"clean source: {len(clean)} records, avg length {stats.avg_length:.1f}")
    print(f"second source: {len(corrupted)} records "
          f"({len(truth)} true matches planted)")
    print()

    started = time.perf_counter()
    result = PassJoin(tau).join(corrupted, clean)
    elapsed = time.perf_counter() - started
    matched = {pair.left_id: pair.right_id for pair in result}
    correct = sum(1 for left, right in matched.items() if truth.get(left) == right)
    print(f"pass-join R-S join: {len(result)} pairs in {elapsed:.2f}s")
    print(f"  planted matches recovered: {correct}/{len(truth)}")
    print()

    # Self-join comparison against ED-Join on the union of both sources.
    union = clean + corrupted
    for name, algorithm in (("pass-join", PassJoin(tau)), ("ed-join", EdJoin(tau, q=4))):
        started = time.perf_counter()
        self_result = algorithm.self_join(union)
        elapsed = time.perf_counter() - started
        print(f"{name:10s} self-join of {len(union)} long strings: "
              f"{len(self_result)} pairs, "
              f"{self_result.statistics.num_candidates} candidates, {elapsed:.2f}s")


if __name__ == "__main__":
    main()
