#!/usr/bin/env python3
"""Quickstart: find similar string pairs with Pass-Join.

Runs the paper's running example (Table 1 / Figure 1) and a tiny ad-hoc
deduplication, printing the matched pairs and the work statistics the
library collects.

Usage::

    python examples/quickstart.py
"""

from repro import JoinConfig, SelectionMethod, VerificationMethod, pass_join


def paper_running_example() -> None:
    """The six strings of Table 1 with tau = 3: one similar pair."""
    strings = [
        "vankatesh",
        "avataresha",
        "kaushic chaduri",
        "kaushik chakrab",
        "kaushuk chadhui",
        "caushik chakrabar",
    ]
    result = pass_join(strings, tau=3)

    print("Paper running example (tau = 3)")
    print("-" * 40)
    for pair in result.sorted_pairs():
        print(f"  ed = {pair.distance}:  {pair.left!r}  ~  {pair.right!r}")
    stats = result.statistics
    print(f"  selected substrings : {stats.num_selected_substrings}")
    print(f"  candidate pairs     : {stats.num_candidates}")
    print(f"  verifications       : {stats.num_verifications}")
    print()


def choose_your_own_strategies() -> None:
    """Every selection/verification strategy of the paper is pluggable."""
    venues = ["vldb", "pvldb", "sigmod", "sigmmod", "icde", "icdm", "edbt",
              "kdd", "ikdd", "cikm", "wsdm", "www", "recsys"]
    config = JoinConfig(selection=SelectionMethod.POSITION,
                        verification=VerificationMethod.LENGTH_AWARE)
    result = pass_join(venues, tau=1, config=config)

    print("Venue names (tau = 1, position-aware selection)")
    print("-" * 40)
    for pair in result.sorted_pairs():
        print(f"  ed = {pair.distance}:  {pair.left}  ~  {pair.right}")
    print()


def main() -> None:
    paper_running_example()
    choose_your_own_strategies()


if __name__ == "__main__":
    main()
