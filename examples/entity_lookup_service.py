#!/usr/bin/env python3
"""Online entity lookup: build the segment index once, answer many queries.

After an offline deduplication (see ``author_deduplication.py``) a typical
system needs an *online* component: given a user-typed name, find the known
entities within a small edit distance.  This example builds a
:class:`repro.search.PassJoinSearcher` over an author dictionary and then

* answers exact-threshold lookups for misspelled queries,
* answers top-k ("did you mean?") lookups, and
* reports the query throughput, contrasting it with the naive
  scan-everything approach.

Usage::

    python examples/entity_lookup_service.py [dictionary_size] [num_queries]
"""

from __future__ import annotations

import random
import sys
import time

from repro import PassJoinSearcher
from repro.datasets import apply_random_edits, generate_author_dataset
from repro.distance import length_aware_edit_distance


def build_queries(dictionary: list[str], count: int, tau: int) -> list[str]:
    """Misspell random dictionary entries to simulate user queries."""
    rng = random.Random(17)
    return [apply_random_edits(rng.choice(dictionary), rng.randint(0, tau), rng)
            for _ in range(count)]


def naive_lookup(dictionary: list[str], query: str, tau: int) -> list[str]:
    """Scan the whole dictionary (the baseline an index replaces)."""
    return [entry for entry in dictionary
            if length_aware_edit_distance(entry, query, tau) <= tau]


def main() -> None:
    dictionary_size = int(sys.argv[1]) if len(sys.argv) > 1 else 5000
    num_queries = int(sys.argv[2]) if len(sys.argv) > 2 else 200
    tau = 2

    dictionary = sorted(set(generate_author_dataset(dictionary_size, seed=11)))
    print(f"dictionary: {len(dictionary)} distinct author names")

    build_started = time.perf_counter()
    searcher = PassJoinSearcher(dictionary, max_tau=tau)
    print(f"index built in {time.perf_counter() - build_started:.2f}s "
          f"({searcher.statistics.index_entries} segment postings, "
          f"{searcher.statistics.index_bytes / 1024:.1f} KiB)")
    print()

    queries = build_queries(dictionary, num_queries, tau)

    # A few illustrative lookups.
    for query in queries[:5]:
        matches = searcher.search(query, tau)
        suggestions = ", ".join(match.text for match in matches[:3]) or "(no match)"
        print(f"  {query!r:35s} -> {suggestions}")
    print()

    # "Did you mean?" with top-k.
    query = queries[0]
    top = searcher.search_top_k(query, k=3)
    print(f"top-3 suggestions for {query!r}: "
          + ", ".join(f"{match.text} (ed={match.distance})" for match in top))
    print()

    # Throughput: indexed search vs naive scan.
    started = time.perf_counter()
    indexed_hits = sum(len(searcher.search(query, tau)) for query in queries)
    indexed_seconds = time.perf_counter() - started

    started = time.perf_counter()
    naive_hits = sum(len(naive_lookup(dictionary, query, tau)) for query in queries)
    naive_seconds = time.perf_counter() - started

    assert indexed_hits == naive_hits, "index and scan must agree"
    print(f"{num_queries} queries: indexed search {indexed_seconds:.2f}s "
          f"({num_queries / indexed_seconds:.0f} q/s), "
          f"naive scan {naive_seconds:.2f}s "
          f"({num_queries / naive_seconds:.0f} q/s), "
          f"speed-up x{naive_seconds / indexed_seconds:.1f}")


if __name__ == "__main__":
    main()
