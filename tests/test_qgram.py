"""Unit tests for the q-gram substrate used by the baselines."""

import pytest
from collections import Counter

from repro.baselines.qgram import (PositionalGram, approximate_gram_index_bytes,
                                   gram_document_frequencies, order_grams,
                                   positional_qgrams, qgrams)


class TestQgrams:
    def test_basic_bigrams(self):
        assert qgrams("vldb", 2) == ["vl", "ld", "db"]

    def test_trigram_count(self):
        text = "similarity"
        assert len(qgrams(text, 3)) == len(text) - 3 + 1

    def test_short_string_yields_whole_string(self):
        assert qgrams("ab", 3) == ["ab"]
        assert qgrams("abc", 3) == ["abc"]

    def test_empty_string(self):
        assert qgrams("", 2) == []

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            qgrams("abc", 0)

    def test_positional_grams_positions(self):
        grams = positional_qgrams("vldb", 3)
        assert grams == [PositionalGram("vld", 0), PositionalGram("ldb", 1)]


class TestGramOrdering:
    def test_document_frequencies_count_strings_not_occurrences(self):
        frequencies = gram_document_frequencies(["aaa", "aab"], 2)
        # "aa" appears twice inside "aaa" but only counts once per string.
        assert frequencies["aa"] == 2
        assert frequencies["ab"] == 1

    def test_order_grams_puts_rare_grams_first(self):
        frequencies = Counter({"aa": 10, "zz": 1, "mm": 5})
        grams = [PositionalGram("aa", 0), PositionalGram("zz", 1),
                 PositionalGram("mm", 2)]
        ordered = order_grams(grams, frequencies)
        assert [gram.gram for gram in ordered] == ["zz", "mm", "aa"]

    def test_unknown_grams_sort_first(self):
        frequencies = Counter({"aa": 2})
        grams = [PositionalGram("aa", 0), PositionalGram("qq", 1)]
        assert order_grams(grams, frequencies)[0].gram == "qq"

    def test_ties_broken_deterministically(self):
        frequencies = Counter({"aa": 1, "bb": 1})
        grams = [PositionalGram("bb", 5), PositionalGram("aa", 9)]
        ordered = order_grams(grams, frequencies)
        assert [gram.gram for gram in ordered] == ["aa", "bb"]


def test_approximate_gram_index_bytes():
    assert approximate_gram_index_bytes(entries=10, gram_bytes=40) == 10 * 24 + 40
