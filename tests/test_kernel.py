"""Tests for the pluggable similarity-kernel layer.

Covers the registry (lookup, unknown-name errors, the discovery
catalogue), the threshold/partition-key semantics of both kernels, the
one-kernel-per-service invariant (mismatch and mixed-kernel batches are
rejected at the searcher, router, and wire layers), and the
``ServiceConfig``/CLI validation that surfaces unknown kernels at
construction time.
"""

import pytest

from repro.config import DEFAULT_KERNEL, KERNELS, ServiceConfig
from repro.core.kernel import (JACCARD_SCALE, EditDistanceKernel,
                               SimilarityKernel, TokenJaccardKernel,
                               check_batch_kernels, check_kernel_match,
                               describe_kernels, get_kernel, kernel_names,
                               resolve_kernel, token_jaccard_distance,
                               tokenize)
from repro.config import PartitionStrategy, VerificationMethod
from repro.exceptions import (ConfigurationError, InvalidThresholdError,
                              UnknownMethodError)
from repro.search import PassJoinSearcher
from repro.service import DynamicSearcher, ShardRouter, SimilarityService


class TestRegistry:
    def test_both_kernels_registered(self):
        assert kernel_names() == tuple(sorted(KERNELS))
        assert "edit-distance" in kernel_names()
        assert "token-jaccard" in kernel_names()

    def test_get_kernel_returns_singletons(self):
        assert get_kernel("edit-distance") is get_kernel("edit-distance")
        assert isinstance(get_kernel("edit-distance"), EditDistanceKernel)
        assert isinstance(get_kernel("token-jaccard"), TokenJaccardKernel)

    def test_unknown_kernel_lists_the_registered_ones(self):
        with pytest.raises(UnknownMethodError) as excinfo:
            get_kernel("cosine")
        message = str(excinfo.value)
        assert "cosine" in message
        for name in kernel_names():
            assert name in message

    def test_resolve_kernel(self):
        assert resolve_kernel(None).name == DEFAULT_KERNEL
        assert resolve_kernel("token-jaccard").name == "token-jaccard"
        kernel = get_kernel("edit-distance")
        assert resolve_kernel(kernel) is kernel

    def test_describe_kernels_is_wire_ready(self):
        catalogue = describe_kernels()
        assert [entry["name"] for entry in catalogue] == list(kernel_names())
        for entry in catalogue:
            assert isinstance(entry["tau_semantics"], str)

    def test_kernels_are_similarity_kernels(self):
        for name in kernel_names():
            assert isinstance(get_kernel(name), SimilarityKernel)


class TestTokenJaccardDistance:
    def test_identical_and_disjoint(self):
        assert token_jaccard_distance("a b c", "c b a") == 0
        assert token_jaccard_distance("a b", "c d") == JACCARD_SCALE

    def test_empty_sets(self):
        assert token_jaccard_distance("", "") == 0
        assert token_jaccard_distance("   ", "") == 0  # whitespace-only
        assert token_jaccard_distance("", "a") == JACCARD_SCALE

    def test_scaled_ceiling(self):
        # J({a,b,c}, {a,b}) = 2/3 -> distance = ceil(100/3) = 34.
        assert token_jaccard_distance("a b c", "a b") == 34
        # J = 1/2 -> exactly 50, no rounding.
        assert token_jaccard_distance("a b", "a c") == 67  # J=1/3 -> ceil(200/3)
        assert token_jaccard_distance("a b c d", "a b") == 50

    def test_duplicate_tokens_collapse(self):
        assert token_jaccard_distance("a a a b", "a b") == 0
        assert tokenize("x  x\ty") == frozenset({"x", "y"})

    def test_symmetry(self):
        pairs = [("a b c", "b c d"), ("", "q"), ("one", "one two three")]
        for left, right in pairs:
            assert (token_jaccard_distance(left, right)
                    == token_jaccard_distance(right, left))


class TestThresholdSemantics:
    def test_edit_distance_tau(self):
        kernel = get_kernel("edit-distance")
        assert kernel.validate_tau(0) == 0
        assert kernel.validate_tau(7) == 7
        with pytest.raises(InvalidThresholdError):
            kernel.validate_tau(-1)

    def test_jaccard_tau_bounded_below_the_scale(self):
        kernel = get_kernel("token-jaccard")
        assert kernel.validate_tau(0) == 0
        assert kernel.validate_tau(JACCARD_SCALE - 1) == JACCARD_SCALE - 1
        with pytest.raises(InvalidThresholdError):
            kernel.validate_tau(JACCARD_SCALE)
        with pytest.raises(InvalidThresholdError):
            kernel.validate_tau(-1)

    def test_record_keys(self):
        assert get_kernel("edit-distance").record_key("abcd") == 4
        jaccard = get_kernel("token-jaccard")
        assert jaccard.record_key("a b b c") == 3  # a set, not a list
        assert jaccard.record_key("") == 0

    def test_edit_distance_probe_key_range(self):
        kernel = get_kernel("edit-distance")
        assert kernel.probe_key_range("abcd", 2) == (2, 6)
        assert kernel.probe_key_range("a", 3) == (0, 4)

    def test_jaccard_probe_key_range(self):
        kernel = get_kernel("token-jaccard")
        # Empty queries can only match empty (distance-0) records.
        assert kernel.probe_key_range("", 50) == (0, 0)
        # tau=50 <=> J >= 0.5: candidate sizes span [ceil(n/2), 2n].
        lo, hi = kernel.probe_key_range("a b c d", 50)
        assert lo == 2 and hi == 8
        # tau=0 <=> exact set equality: only same-size sets qualify.
        assert kernel.probe_key_range("a b c", 0) == (3, 3)

    def test_jaccard_range_is_sound(self):
        # Any record within tau must have a token count inside the range.
        kernel = get_kernel("token-jaccard")
        query = "a b c d e"
        for tau in (0, 20, 40, 60, 80, 99):
            lo, hi = kernel.probe_key_range(query, tau)
            for text in ("a", "a b", "a b c", "a b c d e", "a b c d e f g",
                         "x y", "a b c x y z w q r s"):
                if token_jaccard_distance(query, text) <= tau:
                    assert lo <= len(tokenize(text)) <= hi, (tau, text)


class TestBackendConstruction:
    def test_jaccard_rejects_non_even_partition(self):
        kernel = get_kernel("token-jaccard")
        with pytest.raises(ConfigurationError):
            kernel.make_backend(50, partition=PartitionStrategy.LEFT_HEAVY)

    def test_jaccard_rejects_ed_verification_strategies(self):
        kernel = get_kernel("token-jaccard")
        with pytest.raises(ConfigurationError):
            kernel.make_backend(50,
                                verification=VerificationMethod.SHARE_PREFIX)

    def test_searchers_accept_kernel_by_name_or_instance(self):
        data = ["a b", "a c"]
        by_name = PassJoinSearcher(data, max_tau=50, kernel="token-jaccard")
        by_instance = PassJoinSearcher(data, max_tau=50,
                                       kernel=get_kernel("token-jaccard"))
        assert (by_name.search("a b", 50) == by_instance.search("a b", 50))

    def test_unknown_kernel_name_at_searcher_construction(self):
        with pytest.raises(UnknownMethodError):
            DynamicSearcher(["x"], max_tau=1, kernel="levenshtein")


class TestConfigValidation:
    def test_default_kernel(self):
        assert ServiceConfig().kernel == DEFAULT_KERNEL

    def test_known_kernels_accepted(self):
        for name in KERNELS:
            assert ServiceConfig(kernel=name).kernel == name

    def test_unknown_kernel_fails_at_construction(self):
        with pytest.raises(ConfigurationError) as excinfo:
            ServiceConfig(kernel="hamming")
        message = str(excinfo.value)
        assert "hamming" in message
        for name in KERNELS:
            assert name in message


class TestKernelMatch:
    def test_match_and_none_pass(self):
        kernel = get_kernel("edit-distance")
        check_kernel_match(kernel, None)
        check_kernel_match(kernel, "edit-distance")

    def test_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            check_kernel_match(get_kernel("edit-distance"), "token-jaccard")

    def test_batch_scalar_and_per_query_names(self):
        kernel = get_kernel("token-jaccard")
        check_batch_kernels(kernel, None)
        check_batch_kernels(kernel, "token-jaccard")
        check_batch_kernels(kernel, ["token-jaccard", None, "token-jaccard"])

    def test_mixed_kernel_batch_rejected(self):
        with pytest.raises(ConfigurationError) as excinfo:
            check_batch_kernels(get_kernel("edit-distance"),
                                ["edit-distance", "token-jaccard"])
        assert "mixed-kernel batch" in str(excinfo.value)

    def test_searcher_level_rejection(self):
        static = PassJoinSearcher(["ab"], max_tau=1)
        dynamic = DynamicSearcher(["ab"], max_tau=1)
        for searcher in (static, dynamic):
            with pytest.raises(ConfigurationError):
                searcher.search_many(["ab"], kernel="token-jaccard")
            with pytest.raises(ConfigurationError):
                searcher.search_many(["ab", "ba"],
                                     kernel=["edit-distance", "token-jaccard"])

    def test_router_level_rejection(self):
        with ShardRouter(["ab", "cd"], shards=2, max_tau=1,
                         backend="thread") as router:
            with pytest.raises(ConfigurationError):
                router.search_many(["ab"], kernel="token-jaccard")
            assert router.search_many(["ab"], kernel="edit-distance")


class TestWireLayer:
    def setup_method(self):
        self.service = SimilarityService(["vldb", "pvldb"],
                                         ServiceConfig(max_tau=2))

    def test_kernels_op(self):
        response = self.service.handle_request({"op": "kernels"})
        assert response["ok"] is True
        assert response["serving"] == "edit-distance"
        assert ([entry["name"] for entry in response["kernels"]]
                == list(kernel_names()))

    def test_matching_kernel_field_accepted(self):
        response = self.service.handle_request(
            {"op": "search", "query": "vldb", "tau": 1,
             "kernel": "edit-distance"})
        assert response["ok"] is True

    def test_mismatched_kernel_field_rejected(self):
        for op in ("search", "explain"):
            response = self.service.handle_request(
                {"op": op, "query": "vldb", "tau": 1,
                 "kernel": "token-jaccard"})
            assert response["ok"] is False
            assert "token-jaccard" in response["error"]

    def test_non_string_kernel_field_rejected(self):
        response = self.service.handle_request(
            {"op": "search", "query": "vldb", "kernel": 7})
        assert response["ok"] is False

    def test_batch_kernel_field(self):
        good = self.service.handle_request(
            {"op": "search-batch", "queries": ["vldb"],
             "kernel": "edit-distance"})
        assert good["ok"] is True
        bad = self.service.handle_request(
            {"op": "search-batch", "queries": ["vldb"],
             "kernel": "token-jaccard"})
        assert bad["ok"] is False

    def test_mixed_kernel_batch_over_the_wire(self):
        response = self.service.handle_request(
            {"op": "search-batch", "queries": ["vldb", "icde"],
             "kernels": ["edit-distance", "token-jaccard"]})
        assert response["ok"] is False
        assert "mixed-kernel batch" in response["error"]

    def test_kernels_list_length_must_match_queries(self):
        response = self.service.handle_request(
            {"op": "search-batch", "queries": ["vldb", "icde"],
             "kernels": ["edit-distance"]})
        assert response["ok"] is False

    def test_stats_report_the_kernel(self):
        assert (self.service.handle_request({"op": "stats"})["kernel"]
                == "edit-distance")

    def test_jaccard_service_end_to_end(self):
        service = SimilarityService(
            ["apple banana", "banana cherry", "apple"],
            ServiceConfig(max_tau=60, kernel="token-jaccard"))
        response = service.handle_request(
            {"op": "search", "query": "apple banana", "tau": 50,
             "kernel": "token-jaccard"})
        assert response["ok"] is True
        assert ({m["text"] for m in response["matches"]}
                == {"apple banana", "apple"})
        assert service.handle_request({"op": "stats"})["kernel"] == "token-jaccard"
        mismatch = service.handle_request(
            {"op": "search", "query": "x", "kernel": "edit-distance"})
        assert mismatch["ok"] is False
