"""Unit tests for the brute-force reference join."""

import itertools

from repro.baselines.naive import NaiveJoin, naive_join
from repro.distance import edit_distance

from helpers import random_strings


class TestNaiveSelfJoin:
    def test_paper_example(self, paper_strings):
        result = naive_join(paper_strings, 3)
        assert {(pair.left, pair.right) for pair in result} == {
            ("kaushik chakrab", "caushik chakrabar")}

    def test_empty_and_singleton(self):
        assert len(naive_join([], 2)) == 0
        assert len(naive_join(["abc"], 2)) == 0

    def test_matches_itertools_oracle(self):
        strings = random_strings(60, 2, 10, alphabet="abc", seed=3)
        tau = 2
        expected = set()
        for (i, a), (j, b) in itertools.combinations(enumerate(strings), 2):
            if edit_distance(a, b) <= tau:
                expected.add((min(i, j), max(i, j)))
        assert naive_join(strings, tau).pair_ids() == expected

    def test_candidate_count_respects_length_filter(self):
        strings = ["a", "ab", "abcdefghij"]
        result = naive_join(strings, 1)
        # (a, ab) is the only length-compatible pair at tau=1.
        assert result.statistics.num_candidates == 1

    def test_distances_are_exact(self):
        result = naive_join(["kitten", "sitting", "mitten"], 3)
        distances = {frozenset((pair.left, pair.right)): pair.distance
                     for pair in result}
        assert distances[frozenset(("kitten", "sitting"))] == 3
        assert distances[frozenset(("kitten", "mitten"))] == 1


class TestNaiveRSJoin:
    def test_basic(self):
        result = NaiveJoin(1).join(["vldb", "icde"], ["pvldb", "icdm"])
        assert result.pair_ids() == {(0, 0), (1, 1)}

    def test_orientation(self):
        pair = NaiveJoin(1).join(["abc"], ["abd"]).pairs[0]
        assert pair.left == "abc" and pair.right == "abd"

    def test_statistics(self):
        result = NaiveJoin(2).self_join(["aaa", "aab", "zzzz"])
        assert result.statistics.num_strings == 3
        assert result.statistics.num_results == len(result)
