"""Tests for the string-normalisation helpers."""

from hypothesis import given, settings, strategies as st

from repro.preprocessing import (DEFAULT_NORMALIZATION, NormalizationConfig,
                                 collapse_whitespace, normalization_map,
                                 normalize, normalize_all, remove_punctuation,
                                 strip_accents)


class TestIndividualSteps:
    def test_strip_accents(self):
        assert strip_accents("Crème Brûlée") == "Creme Brulee"
        assert strip_accents("naïve") == "naive"
        assert strip_accents("plain") == "plain"

    def test_collapse_whitespace(self):
        assert collapse_whitespace("  a \t b\n\nc ") == "a b c"
        assert collapse_whitespace("") == ""

    def test_remove_punctuation(self):
        assert remove_punctuation("li, g.; deng, d.") == "li g deng d"
        assert remove_punctuation("no-punct here!") == "nopunct here"


class TestNormalize:
    def test_default_configuration(self):
        assert normalize("  Guoliang   LI ") == "guoliang li"

    def test_full_configuration(self):
        config = NormalizationConfig(strip_accents=True, remove_punctuation=True)
        assert normalize("  Jérôme, K.  LE-Grand ", config) == "jerome k legrand"

    def test_disabled_steps_leave_text_unchanged(self):
        config = NormalizationConfig(lowercase=False, collapse_whitespace=False)
        assert normalize("  MiXeD  CaSe ", config) == "  MiXeD  CaSe "

    def test_idempotent(self):
        for text in ["  Foo  Bar ", "ALL CAPS", "already normal"]:
            once = normalize(text)
            assert normalize(once) == once

    @given(text=st.text(max_size=40))
    @settings(max_examples=200, deadline=None)
    def test_default_normalization_properties(self, text):
        result = normalize(text)
        assert result == result.casefold()
        assert "  " not in result
        assert result == result.strip()
        assert normalize(result) == result  # idempotence


class TestCollections:
    def test_normalize_all_preserves_order(self):
        assert normalize_all(["B ", " a"]) == ["b", "a"]

    def test_normalization_map_groups_duplicates(self):
        groups = normalization_map(["J Smith", "j  smith", "J. Smith", "K Jones"])
        assert groups["j smith"] == ["J Smith", "j  smith"]
        assert "j. smith" in groups  # punctuation kept by default config
        assert groups["k jones"] == ["K Jones"]

    def test_normalization_improves_join_recall(self):
        from repro import pass_join

        raw = ["Guoliang  Li", "guoliang li", "Dong Deng"]
        assert len(pass_join(raw, 1)) == 0  # case + spacing hide the duplicate
        assert len(pass_join(normalize_all(raw), 1)) == 1

    def test_default_config_is_shared_instance(self):
        assert DEFAULT_NORMALIZATION.lowercase
        assert DEFAULT_NORMALIZATION.collapse_whitespace
