"""Tests for the LRU query cache and its epoch-based invalidation."""

import pytest

from repro.search import SearchMatch
from repro.service import DynamicSearcher, QueryCache


def match(i):
    return SearchMatch(distance=0, id=i, text=f"text{i}")


class TestLruBehaviour:
    def test_put_get_round_trip(self):
        cache = QueryCache(capacity=4)
        cache.put(("search", "q", 1), epoch=0, matches=[match(1), match(2)])
        assert cache.get(("search", "q", 1), epoch=0) == [match(1), match(2)]

    def test_miss_on_unknown_key(self):
        cache = QueryCache(capacity=4)
        assert cache.get(("search", "q", 1), epoch=0) is None
        assert cache.stats.misses == 1

    def test_capacity_evicts_least_recently_used(self):
        cache = QueryCache(capacity=2)
        cache.put("a", epoch=0, matches=[match(1)])
        cache.put("b", epoch=0, matches=[match(2)])
        assert cache.get("a", epoch=0) is not None  # refresh "a"
        cache.put("c", epoch=0, matches=[match(3)])  # evicts "b"
        assert cache.get("b", epoch=0) is None
        assert cache.get("a", epoch=0) is not None
        assert cache.get("c", epoch=0) is not None
        assert cache.stats.evictions == 1

    def test_zero_capacity_disables_caching(self):
        cache = QueryCache(capacity=0)
        cache.put("a", epoch=0, matches=[match(1)])
        assert cache.get("a", epoch=0) is None
        assert len(cache) == 0

    def test_cached_lists_are_isolated_copies(self):
        cache = QueryCache(capacity=2)
        original = [match(1)]
        cache.put("a", epoch=0, matches=original)
        original.append(match(2))
        first = cache.get("a", epoch=0)
        first.append(match(3))
        assert cache.get("a", epoch=0) == [match(1)]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            QueryCache(capacity=-1)

    def test_hit_rate(self):
        cache = QueryCache(capacity=2)
        cache.put("a", epoch=0, matches=[])
        cache.get("a", epoch=0)
        cache.get("b", epoch=0)
        assert cache.stats.hit_rate == 0.5
        assert cache.stats.as_dict()["hits"] == 1


class TestEpochInvalidation:
    def test_new_epoch_invalidates_everything(self):
        cache = QueryCache(capacity=4)
        cache.put("a", epoch=0, matches=[match(1)])
        cache.put("b", epoch=0, matches=[match(2)])
        assert cache.get("a", epoch=1) is None
        assert cache.get("b", epoch=1) is None
        assert cache.stats.invalidations == 1

    def test_put_at_new_epoch_also_invalidates(self):
        cache = QueryCache(capacity=4)
        cache.put("a", epoch=0, matches=[match(1)])
        cache.put("b", epoch=1, matches=[match(2)])
        assert cache.get("a", epoch=1) is None
        assert cache.get("b", epoch=1) is not None

    def test_same_epoch_keeps_entries(self):
        cache = QueryCache(capacity=4)
        cache.put("a", epoch=5, matches=[match(1)])
        assert cache.get("a", epoch=5) is not None
        assert cache.stats.invalidations == 0

    def test_clear(self):
        cache = QueryCache(capacity=4)
        cache.put("a", epoch=0, matches=[match(1)])
        cache.clear()
        assert cache.get("a", epoch=0) is None
        assert cache.stats.invalidations == 1


class TestCacheAgainstDynamicSearcher:
    """Cache + dynamic index: mutations must invalidate stale answers."""

    def test_mutation_invalidates_cached_search(self):
        searcher = DynamicSearcher(["vldb", "sigmod"], max_tau=1)
        cache = QueryCache(capacity=8)
        key = ("search", "vldb", 1)

        first = searcher.search("vldb", tau=1)
        cache.put(key, searcher.epoch, first)
        assert cache.get(key, searcher.epoch) == first

        searcher.insert("pvldb")  # changes the answer to the same query
        assert cache.get(key, searcher.epoch) is None
        fresh = searcher.search("vldb", tau=1)
        assert [m.text for m in fresh] == ["vldb", "pvldb"]
        cache.put(key, searcher.epoch, fresh)
        assert cache.get(key, searcher.epoch) == fresh

    def test_delete_invalidates_cached_search(self):
        searcher = DynamicSearcher(["vldb", "pvldb"], max_tau=1)
        cache = QueryCache(capacity=8)
        key = ("search", "vldb", 1)
        cache.put(key, searcher.epoch, searcher.search("vldb", tau=1))
        searcher.delete(1)
        assert cache.get(key, searcher.epoch) is None
        assert [m.text for m in searcher.search("vldb", tau=1)] == ["vldb"]
