"""Unit and oracle tests for the Pass-Join self join."""

import pytest

from repro import (JoinConfig, PassJoin, SelectionMethod, VerificationMethod,
                   pass_join, pass_join_pairs)
from repro.exceptions import InvalidThresholdError

from helpers import brute_force_pairs, random_strings


class TestPaperExample:
    """Table 1 / Figure 1: six strings, tau = 3, exactly one answer pair."""

    def test_only_answer_is_s4_s6(self, paper_strings):
        result = pass_join(paper_strings, 3)
        assert {(pair.left, pair.right) for pair in result} == {
            ("kaushik chakrab", "caushik chakrabar")}
        assert result.pairs[0].distance == 3

    def test_candidates_include_the_figure1_pairs(self, paper_strings):
        # Figure 1 lists <1,2>, <3,4>, <3,5>, <4,5>, <3,6>, <4,6>, <5,6> as
        # the candidate pairs found through matching segments.  With the
        # multi-match selection the driver must generate at least the answer
        # candidate, and never more candidates than the 7 of the figure.
        config = JoinConfig(selection=SelectionMethod.MULTI_MATCH)
        result = PassJoin(3, config).self_join(paper_strings)
        assert 1 <= result.statistics.num_candidates <= 7

    def test_no_pairs_at_tau_1(self, paper_strings):
        assert len(pass_join(paper_strings, 1)) == 0


class TestBasicBehaviour:
    def test_empty_collection(self):
        result = pass_join([], 2)
        assert len(result) == 0
        assert result.statistics.num_strings == 0

    def test_single_string(self):
        assert len(pass_join(["only one"], 2)) == 0

    def test_exact_duplicates_found_at_tau_zero(self):
        result = pass_join(["alpha", "beta", "alpha", "gamma", "beta"], 0)
        assert result.pair_ids() == {(0, 2), (1, 4)}
        assert all(pair.distance == 0 for pair in result)

    def test_no_self_pairs(self):
        result = pass_join(["same", "same"], 2)
        assert result.pair_ids() == {(0, 1)}

    def test_pairs_are_reported_once(self):
        strings = ["abcde", "abcdf", "abcdg"]
        result = pass_join(strings, 2)
        ids = [pair.ids() for pair in result]
        assert len(ids) == len(set(ids)) == 3

    def test_pair_ids_are_normalised(self):
        result = pass_join(["zzzz", "zzzy"], 1)
        pair = result.pairs[0]
        assert pair.left_id < pair.right_id

    def test_result_contains_texts_and_distance(self):
        result = pass_join(["vldb", "pvldb"], 1)
        pair = result.pairs[0]
        assert {pair.left, pair.right} == {"vldb", "pvldb"}
        assert pair.distance == 1

    def test_invalid_threshold(self):
        with pytest.raises(InvalidThresholdError):
            PassJoin(-1)

    def test_strings_shorter_than_tau_plus_one_are_still_joined(self):
        # "ab" cannot be partitioned into 4 segments but must still be found.
        strings = ["ab", "abc", "abcd", "xyzuvw"]
        truth = brute_force_pairs(strings, 3)
        assert pass_join(strings, 3).pair_ids() == set(truth)

    def test_pass_join_pairs_helper(self):
        assert pass_join_pairs(["vldb", "pvldb", "icde"], 1) == [(0, 1)]


class TestAgainstBruteForce:
    @pytest.mark.parametrize("tau", [0, 1, 2, 3, 4])
    def test_random_small_alphabet(self, small_random_strings, tau):
        truth = brute_force_pairs(small_random_strings, tau)
        result = pass_join(small_random_strings, tau)
        assert result.pair_ids() == set(truth)
        for pair in result:
            assert pair.distance == truth[pair.ids()]

    @pytest.mark.parametrize("tau", [1, 2, 3])
    def test_name_like_dataset(self, name_like_strings, tau):
        truth = brute_force_pairs(name_like_strings, tau)
        result = pass_join(name_like_strings, tau)
        assert result.pair_ids() == set(truth)

    @pytest.mark.parametrize("selection", list(SelectionMethod))
    @pytest.mark.parametrize("verification", list(VerificationMethod))
    def test_every_configuration_agrees(self, selection, verification):
        strings = random_strings(80, 3, 12, alphabet="ab", seed=77)
        tau = 2
        truth = set(brute_force_pairs(strings, tau))
        config = JoinConfig(selection=selection, verification=verification)
        assert pass_join(strings, tau, config).pair_ids() == truth

    def test_long_strings_with_larger_threshold(self):
        strings = random_strings(40, 40, 70, alphabet="abcde", seed=5)
        tau = 8
        truth = set(brute_force_pairs(strings, tau))
        assert pass_join(strings, tau).pair_ids() == truth


class TestStatistics:
    def test_statistics_are_populated(self, name_like_strings):
        result = pass_join(name_like_strings, 2)
        stats = result.statistics
        assert stats.num_strings == len(name_like_strings)
        assert stats.num_results == len(result)
        assert stats.num_selected_substrings > 0
        assert stats.num_index_probes >= stats.num_selected_substrings
        assert stats.num_candidates >= stats.num_results
        assert stats.num_indexed_segments > 0
        assert stats.index_entries > 0
        assert stats.index_bytes > 0
        assert stats.total_seconds > 0

    def test_multi_match_selects_fewer_substrings_than_length(self, name_like_strings):
        tau = 2
        by_method = {}
        for method in (SelectionMethod.LENGTH, SelectionMethod.SHIFT,
                       SelectionMethod.POSITION, SelectionMethod.MULTI_MATCH):
            config = JoinConfig(selection=method)
            stats = PassJoin(tau, config).self_join(name_like_strings).statistics
            by_method[method] = stats.num_selected_substrings
        assert (by_method[SelectionMethod.MULTI_MATCH]
                <= by_method[SelectionMethod.POSITION]
                <= by_method[SelectionMethod.SHIFT]
                <= by_method[SelectionMethod.LENGTH])

    def test_collecting_duplicate_strings_does_not_inflate_results(self):
        strings = ["duplicate"] * 5
        result = pass_join(strings, 1)
        # C(5, 2) = 10 unordered pairs, each reported once.
        assert len(result) == 10
