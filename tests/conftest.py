"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.distance import edit_distance


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def brute_force_pairs(strings, tau):
    """Ground-truth similar pairs {(i, j): distance} with i < j."""
    truth = {}
    for (i, a), (j, b) in itertools.combinations(enumerate(strings), 2):
        if abs(len(a) - len(b)) > tau:
            continue
        distance = edit_distance(a, b)
        if distance <= tau:
            truth[(min(i, j), max(i, j))] = distance
    return truth


def random_strings(count, min_len, max_len, alphabet="abcd", seed=0):
    """Deterministic random strings over a small alphabet (collision-rich)."""
    rng = random.Random(seed)
    return ["".join(rng.choice(alphabet) for _ in range(rng.randint(min_len, max_len)))
            for _ in range(count)]


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def paper_strings():
    """The six strings of Table 1 of the paper."""
    return [
        "vankatesh",
        "avataresha",
        "kaushic chaduri",
        "kaushik chakrab",
        "kaushuk chadhui",
        "caushik chakrabar",
    ]


@pytest.fixture(scope="session")
def small_random_strings():
    """A small collision-rich random collection used by many oracle tests."""
    return random_strings(120, 2, 16, alphabet="abc", seed=11)


@pytest.fixture(scope="session")
def name_like_strings():
    """Name-shaped strings with planted near-duplicates."""
    from repro.datasets import generate_author_dataset

    return generate_author_dataset(300, seed=5)


@pytest.fixture
def rng():
    return random.Random(1234)
