"""Shared fixtures for the test suite (plain helpers live in helpers.py)."""

from __future__ import annotations

import random

import pytest

from helpers import random_strings


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def paper_strings():
    """The six strings of Table 1 of the paper."""
    return [
        "vankatesh",
        "avataresha",
        "kaushic chaduri",
        "kaushik chakrab",
        "kaushuk chadhui",
        "caushik chakrabar",
    ]


@pytest.fixture(scope="session")
def small_random_strings():
    """A small collision-rich random collection used by many oracle tests."""
    return random_strings(120, 2, 16, alphabet="abc", seed=11)


@pytest.fixture(scope="session")
def name_like_strings():
    """Name-shaped strings with planted near-duplicates."""
    from repro.datasets import generate_author_dataset

    return generate_author_dataset(300, seed=5)


@pytest.fixture
def rng():
    return random.Random(1234)
