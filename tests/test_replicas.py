"""Tests for read replicas and the multi-acceptor front end.

The load-bearing property (this PR's acceptance criterion): with
``replicas_per_shard`` configured, random interleavings of insert /
delete / compact / search / ``add_shard`` / ``remove_shard`` — now
including **replica lag injection** (replication paused so replicas fall
behind, then resumed) — keep a ``ShardRouter`` element-identical to an
unsharded ``DynamicSearcher``.  A stale replica must be bypassed, never
served.  On top of that: kill-a-replica fault handling on both backends,
the ``admin status`` degraded-replica rows, the acceptor pool sharing one
port via ``SO_REUSEPORT`` (and its fallback), and the batch-coalescing
cache accounting fix.
"""

import json
import multiprocessing
import socket as socket_module
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ServiceConfig
from repro.exceptions import ConfigurationError
from repro.service import (BackgroundServer, DynamicSearcher, ServiceClient,
                           ShardRouter, SimilarityService)

from helpers import random_strings

FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(not FORK_AVAILABLE,
                                reason="process backend requires fork")


def make_pair(strings, *, shards=2, replicas=2, max_tau=2, policy="hash",
              backend="thread", **kwargs):
    """A replicated router and its unsharded oracle over one collection."""
    router = ShardRouter(strings, shards=shards, max_tau=max_tau,
                         policy=policy, backend=backend,
                         replicas_per_shard=replicas, **kwargs)
    return router, DynamicSearcher(strings, max_tau=max_tau)


class TestReplicaBasics:
    def test_reads_served_by_replicas_and_exact(self):
        strings = random_strings(40, 3, 10, alphabet="abc", seed=51)
        queries = random_strings(10, 2, 11, alphabet="abc", seed=52)
        router, single = make_pair(strings)
        with router:
            for query in queries:
                assert router.search(query) == single.search(query)
            # One replica read per probed shard (hash placement probes
            # every shard), and never a fallback on an idle fleet.
            assert router.replica_reads >= len(queries)
            assert router.replica_fallbacks == 0

    def test_replica_reads_rotate_across_pool(self):
        router, _ = make_pair(["abcd", "bcde", "cdef"], shards=1, replicas=2)
        with router:
            schedule = router._read_schedule
            first = schedule.choose(0, [0, 1])
            second = schedule.choose(0, [0, 1])
            assert {first, second} == {0, 1}

    def test_mutations_resync_replicas(self):
        strings = random_strings(30, 3, 9, alphabet="ab", seed=53)
        router, single = make_pair(strings)
        with router:
            new_id = router.insert("abab")
            assert new_id == single.insert("abab")
            assert router.delete(3) == single.delete(3)
            router.compact()
            single.compact()
            for pool in router.replica_status():
                for row in pool:
                    assert row["alive"] and row["lag"] == 0
            assert router.search("abab") == single.search("abab")

    def test_stale_replicas_are_bypassed_never_served(self):
        strings = random_strings(30, 3, 9, alphabet="ab", seed=54)
        router, single = make_pair(strings)
        with router:
            router.pause_replication()
            assert router.insert("abba") == single.insert("abba")
            lags = [row["lag"] for pool in router.replica_status()
                    for row in pool]
            assert max(lags) >= 1
            before = router.replica_fallbacks
            # The new record's answers must be exact even though every
            # replica of its shard is stale.
            assert router.search("abba") == single.search("abba")
            assert router.replica_fallbacks > before
            router.resume_replication()
            assert all(row["lag"] == 0 for pool in router.replica_status()
                       for row in pool)
            reads = router.replica_reads
            assert router.search("abba") == single.search("abba")
            assert router.replica_reads > reads

    def test_stop_replica_decommissions_cleanly(self):
        strings = random_strings(20, 3, 8, alphabet="ab", seed=55)
        router, single = make_pair(strings, shards=1, replicas=2)
        with router:
            router.stop_replica(0, 0)
            status = router.replica_status()[0]
            assert [row["alive"] for row in status] == [False, True]
            for query in ("ab", "abab", "bb"):
                assert router.search(query) == single.search(query)
            # The dead replica is never synced again, the live one is.
            router.insert("babb")
            single.insert("babb")
            assert router.search("babb") == single.search("babb")
            assert router.replica_status()[0][1]["lag"] == 0

    def test_replicas_validated(self):
        with pytest.raises(ConfigurationError):
            ShardRouter(["ab"], shards=2, max_tau=2, replicas_per_shard=-1)
        with pytest.raises(ConfigurationError):
            ShardRouter(["ab"], shards=2, max_tau=2, replicas_per_shard=True)

    def test_metrics_snapshot_reports_replica_section(self):
        router, _ = make_pair(["abcd", "bcde"], shards=1, replicas=1)
        with router:
            router.search("abcd")
            snapshot = router.metrics_snapshot()["replicas"]
            assert snapshot["replicas_total"] == 1
            assert snapshot["replicas_alive"] == 1
            assert snapshot["replica_lag_max"] == 0
            assert snapshot["replica_reads"] >= 1


class TestKillAReplica:
    """Satellite: a dying replica degrades, answers stay exact."""

    def test_thread_backend_replica_crash(self):
        strings = random_strings(40, 3, 10, alphabet="abc", seed=61)
        queries = random_strings(12, 2, 11, alphabet="abc", seed=62)
        router, single = make_pair(strings, shards=2, replicas=1)
        with router:
            # Crash a replica worker behind the router's back (no
            # stop_replica bookkeeping): the next read routed to it fails
            # at send time and falls back to the primary.
            router._replicas[0][0].worker.close()
            for query in queries:
                assert router.search(query) == single.search(query)
            assert router.replica_status()[0][0]["alive"] is False
            # The other shard's replica keeps serving.
            assert router.replica_status()[1][0]["alive"] is True
            # Mutations keep flowing and the survivors keep in sync.
            assert router.insert("abcabc") == single.insert("abcabc")
            assert router.search("abcabc") == single.search("abcabc")
            assert router.replica_status()[1][0]["lag"] == 0

    @needs_fork
    def test_process_backend_replica_kill(self):
        strings = random_strings(40, 3, 10, alphabet="abc", seed=63)
        queries = random_strings(12, 2, 11, alphabet="abc", seed=64)
        router, single = make_pair(strings, shards=2, replicas=1,
                                   backend="process")
        with router:
            victim = router._replicas[0][0].worker
            victim._process.kill()
            victim._process.join(timeout=5)
            for query in queries:
                assert router.search(query) == single.search(query)
            assert router.replica_status()[0][0]["alive"] is False
        assert multiprocessing.active_children() == []

    def test_admin_status_reports_degraded_replica(self):
        strings = random_strings(20, 3, 8, alphabet="ab", seed=65)
        config = ServiceConfig(port=0, shards=2, replicas=1,
                               shard_backend="thread")
        service = SimilarityService(strings, config)
        try:
            service.searcher.stop_replica(0, 0)
            shards = service.stats()["shards"]
            assert shards["replicas_per_shard"] == 1
            flat = [row for pool in shards["replicas"] for row in pool]
            assert [row["alive"] for row in flat].count(False) == 1
            # The CLI's admin-status renderer consumes exactly this shape.
            from repro.cli import _print_admin_status
            _print_admin_status({"shards": shards})
        finally:
            service.close()


REPLICA_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.text(alphabet="ab", max_size=8)),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=40)),
        st.tuples(st.just("search"), st.text(alphabet="ab", max_size=8)),
        st.tuples(st.just("compact")),
        st.tuples(st.just("grow")),
        st.tuples(st.just("shrink")),
        st.tuples(st.just("step")),
        st.tuples(st.just("pause")),   # replica lag injection
        st.tuples(st.just("resume")),
    ), max_size=30)


def run_replica_ops(ops, *, policy, backend="thread", max_tau=2):
    """Drive a replicated router and its oracle through an interleaving."""
    router = ShardRouter(shards=2, max_tau=max_tau, policy=policy,
                         backend=backend, compact_interval=4,
                         migration_batch=2, replicas_per_shard=1)
    single = DynamicSearcher(max_tau=max_tau, compact_interval=4)
    inserted = 0
    try:
        for op in ops:
            kind = op[0]
            if kind == "insert":
                assert router.insert(op[1]) == single.insert(op[1])
                inserted += 1
            elif kind == "delete":
                target = op[1] % max(1, inserted)
                assert router.delete(target) == single.delete(target)
            elif kind == "search":
                assert router.search(op[1]) == single.search(op[1])
            elif kind == "compact":
                router.compact()
                single.compact()
            elif kind == "grow":
                if router._migration is None and router.num_shards < 4:
                    router.add_shard(drain=False)
            elif kind == "shrink":
                if router._migration is None and router.num_shards > 1:
                    router.remove_shard(drain=False)
            elif kind == "step":
                router.migration_step()
            elif kind == "pause":
                router.pause_replication()
            else:  # resume
                router.resume_replication()
            assert len(router) == len(single)
        router.drain_migration()
        router.resume_replication()
        return router, single
    except BaseException:
        router.close()
        raise


class TestReplicatedEquivalence:
    """The acceptance property: replication never changes any answer."""

    @pytest.mark.parametrize("policy", ["hash", "length"])
    @given(ops=REPLICA_OPS,
           queries=st.lists(st.text(alphabet="ab", max_size=8), min_size=1,
                            max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_interleavings_with_lag_match_unsharded(self, policy, ops,
                                                    queries):
        router, single = run_replica_ops(ops, policy=policy)
        with router:
            for query in queries:
                for tau in range(router.max_tau + 1):
                    assert router.search(query, tau) == single.search(query,
                                                                      tau)
                assert (router.search_top_k(query, 3)
                        == single.search_top_k(query, 3))
            # After the final resume every live replica has caught up.
            assert all(row["lag"] == 0
                       for pool in router.replica_status()
                       for row in pool if row["alive"])

    @needs_fork
    @given(ops=REPLICA_OPS)
    @settings(max_examples=6, deadline=None)
    def test_interleavings_process_backend(self, ops):
        router, single = run_replica_ops(ops, policy="hash",
                                         backend="process")
        with router:
            for query in ("", "ab", "abab", "bbbbbb"):
                assert router.search(query) == single.search(query)


class TestServiceIntegration:
    def test_replicas_route_single_shard_service_through_router(self):
        config = ServiceConfig(port=0, replicas=1, shard_backend="thread")
        service = SimilarityService(["vldb", "pvldb"], config)
        try:
            assert isinstance(service.searcher, ShardRouter)
            assert service.searcher.replicas_per_shard == 1
            (answer,) = service.execute_queries([("search", "vldb", 1)])
            single = DynamicSearcher(["vldb", "pvldb"], max_tau=2)
            assert answer[0] == single.search("vldb", 1)
        finally:
            service.close()

    def test_metrics_payload_exports_replica_gauges(self):
        config = ServiceConfig(port=0, shards=2, replicas=1,
                               shard_backend="thread")
        service = SimilarityService(["vldb", "pvldb", "icde"], config)
        try:
            service.execute_queries([("search", "vldb", 1)])
            payload = service.metrics_payload()
            merged = payload["merged"]
            assert merged["gauges"]["replicas_total"] == 2
            assert merged["gauges"]["replicas_alive"] == 2
            assert merged["gauges"]["replica_lag_max"] == 0
            assert merged["counters"]["replica_reads"] >= 1
            assert payload["shards"]["replicas"]["replicas_total"] == 2
        finally:
            service.close()

    def test_config_validates_replicas_and_acceptors(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(replicas=-1)
        with pytest.raises(ConfigurationError):
            ServiceConfig(replicas=True)
        with pytest.raises(ConfigurationError):
            ServiceConfig(acceptors=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(acceptors=True)


class TestCoalescedCacheAccounting:
    """Satellite bugfix: batch duplicates are coalesced, not misses."""

    def test_duplicates_counted_as_coalesced(self):
        service = SimilarityService(["vldb", "pvldb"], ServiceConfig(port=0))
        try:
            key = ("search", "vldb", 1)
            answers = service.execute_queries([key, key, key])
            assert answers[0] == answers[1] == answers[2]
            stats = service.cache.stats
            assert stats.misses == 1
            assert stats.coalesced == 2
            assert stats.hits == 0
            # A second batch hits once and coalesces the rest.
            service.execute_queries([key, key])
            assert stats.hits == 1
            assert stats.coalesced == 3
            assert stats.misses == 1
        finally:
            service.close()

    def test_coalesced_counted_even_with_cache_disabled(self):
        service = SimilarityService(
            ["vldb"], ServiceConfig(port=0, cache_capacity=0))
        try:
            key = ("search", "vldb", 1)
            service.execute_queries([key, key])
            assert service.cache.stats.coalesced == 1
            assert service.cache.stats.misses == 1
        finally:
            service.close()

    def test_coalesced_surfaces_in_stats_and_metrics(self):
        service = SimilarityService(["vldb"], ServiceConfig(port=0))
        try:
            key = ("search", "vldb", 1)
            service.execute_queries([key, key])
            assert service.stats()["cache"]["coalesced"] == 1
            merged = service.metrics_payload()["merged"]
            assert merged["counters"]["cache_coalesced"] == 1
            assert merged["counters"]["cache_misses"] == 1
        finally:
            service.close()


class TestAcceptorPool:
    def _talk(self, address, requests):
        responses = []
        with socket_module.create_connection(address) as sock:
            stream = sock.makefile("rwb")
            for request in requests:
                stream.write(json.dumps(request).encode("utf-8") + b"\n")
                stream.flush()
                responses.append(json.loads(stream.readline()))
        return responses

    def test_pool_shares_port_and_answers_exactly(self):
        strings = random_strings(30, 3, 9, alphabet="ab", seed=71)
        single = DynamicSearcher(strings, max_tau=2)
        config = ServiceConfig(port=0, acceptors=3)
        with BackgroundServer(strings, config) as address:
            expected = [match.to_dict() for match in single.search("abab", 2)]
            results = []
            errors = []

            def worker():
                try:
                    with ServiceClient(*address) as client:
                        results.append([match.to_dict() for match in
                                        client.search("abab", 2)])
                except Exception as error:  # pragma: no cover
                    errors.append(error)

            threads = [threading.Thread(target=worker) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10)
            assert not errors
            assert results == [expected] * 8
            (metrics,) = self._talk(address, [{"op": "metrics"}])
            acceptors = metrics["acceptors"]
            assert acceptors["count"] == 3
            connections = sum(
                snapshot["counters"].get("acceptor_connections", 0)
                for snapshot in acceptors["per_acceptor"])
            assert connections >= 9
            assert metrics["merged"]["counters"]["acceptor_requests"] >= 9

    def test_shutdown_on_any_acceptor_stops_the_pool(self):
        config = ServiceConfig(port=0, acceptors=2)
        server = BackgroundServer(["vldb"], config)
        with server as address:
            # Hammer until a connection lands on an extra acceptor, then
            # shut down through whichever acceptor answers.
            (response,) = self._talk(address, [{"op": "shutdown"}])
            assert response["ok"] and response["stopping"]
        # __exit__ returned: the primary loop finished; its daemon acceptor
        # threads were joined by SimilarityServer.stop().
        assert server._server is not None
        assert server._server._acceptor_threads == []

    def test_reuse_port_fallback_warns_and_serves(self, monkeypatch):
        monkeypatch.delattr(socket_module, "SO_REUSEPORT", raising=False)
        config = ServiceConfig(port=0, acceptors=2)
        with pytest.warns(RuntimeWarning, match="SO_REUSEPORT"):
            with BackgroundServer(["vldb"], config) as address:
                (response,) = self._talk(
                    address, [{"op": "search", "query": "vldb", "tau": 1}])
                assert response["ok"]
                (metrics,) = self._talk(address, [{"op": "metrics"}])
                assert metrics["acceptors"]["count"] == 1
