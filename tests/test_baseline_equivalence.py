"""Cross-algorithm integration tests.

Every join algorithm in the library must return exactly the same set of
similar pairs on the same input — this is the integration-level statement of
correctness/completeness that the paper's Figure 15 comparison silently
relies on (all compared systems compute the same answer, only at different
speeds).
"""

import pytest

from repro import PassJoin
from repro.baselines import (AllPairsEdJoin, EdJoin, NaiveJoin, PartEnumJoin,
                             TrieJoin)
from repro.datasets import (generate_author_dataset, generate_querylog_dataset,
                            generate_title_dataset)

ALGORITHMS = {
    "pass-join": lambda tau: PassJoin(tau),
    "naive": lambda tau: NaiveJoin(tau),
    "ed-join": lambda tau: EdJoin(tau, q=3),
    "all-pairs-ed": lambda tau: AllPairsEdJoin(tau, q=3),
    "trie-join": lambda tau: TrieJoin(tau),
    "part-enum": lambda tau: PartEnumJoin(tau, q=2),
}


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_all_algorithms_agree_on_author_data(name):
    strings = generate_author_dataset(200, seed=13)
    tau = 2
    expected = NaiveJoin(tau).self_join(strings).pair_ids()
    assert ALGORITHMS[name](tau).self_join(strings).pair_ids() == expected


@pytest.mark.parametrize("name", ["pass-join", "ed-join", "trie-join"])
def test_figure15_algorithms_agree_on_querylog_data(name):
    strings = generate_querylog_dataset(120, seed=14)
    tau = 4
    expected = NaiveJoin(tau).self_join(strings).pair_ids()
    assert ALGORITHMS[name](tau).self_join(strings).pair_ids() == expected


@pytest.mark.parametrize("name", ["pass-join", "ed-join"])
def test_long_string_agreement(name):
    strings = generate_title_dataset(80, seed=15)
    tau = 8
    expected = NaiveJoin(tau).self_join(strings).pair_ids()
    assert ALGORITHMS[name](tau).self_join(strings).pair_ids() == expected


def test_distances_agree_between_passjoin_and_naive():
    strings = generate_author_dataset(150, seed=16)
    tau = 3
    naive_pairs = {pair.ids(): pair.distance
                   for pair in NaiveJoin(tau).self_join(strings)}
    pass_pairs = {pair.ids(): pair.distance
                  for pair in PassJoin(tau).self_join(strings)}
    assert pass_pairs == naive_pairs
