"""Integration tests for the experiment functions (tables/figures).

These run every experiment at a very small scale and assert the qualitative
*shape* the paper reports — who wins, and in which direction the series
move — rather than absolute numbers.
"""

import pytest

from repro.bench import experiments
from repro.config import SelectionMethod


SMALL = 0.06  # ~ 120 author / 60 querylog / 50 title strings


@pytest.fixture(scope="module")
def selection_table():
    return experiments.selection_experiment(
        scale=SMALL, names=["author"], taus={"author": (2, 3)})


class TestDatasetExperiments:
    def test_table2_has_one_row_per_dataset(self):
        table = experiments.table2_dataset_statistics(scale=SMALL)
        assert sorted(table.column("dataset")) == ["author", "querylog", "title"]
        assert all(row["min_len"] <= row["avg_len"] <= row["max_len"]
                   for row in table.rows)

    def test_fig11_histogram_covers_all_strings(self):
        table = experiments.fig11_length_distribution(scale=SMALL, names=["author"])
        total = sum(table.column("num_strings"))
        sizes = experiments.scaled({"author": experiments.DEFAULT_SIZES["author"]},
                                   SMALL)
        assert total == sizes["author"]


class TestSelectionExperiments:
    def test_fig12_method_ordering(self, selection_table):
        for tau in (2, 3):
            counts = {row["method"]: row["selected_substrings"]
                      for row in selection_table.filter_rows(tau=tau)}
            assert counts["multi-match"] <= counts["position"]
            assert counts["position"] <= counts["shift"]
            assert counts["shift"] <= counts["length"]

    def test_fig12_results_identical_across_methods(self, selection_table):
        for tau in (2, 3):
            results = {row["results"] for row in selection_table.filter_rows(tau=tau)}
            assert len(results) == 1

    def test_fig12_counts_grow_with_tau(self, selection_table):
        for method in SelectionMethod:
            series = [row["selected_substrings"]
                      for row in selection_table.filter_rows(method=method.value)]
            assert series == sorted(series)


class TestVerificationExperiment:
    def test_fig14_all_strategies_agree_on_results(self):
        table = experiments.fig14_verification(scale=SMALL, names=["author"],
                                               taus={"author": (3,)})
        assert len({row["results"] for row in table.rows}) == 1

    def test_fig14_length_aware_computes_fewer_cells_than_banded(self):
        table = experiments.fig14_verification(scale=SMALL, names=["querylog"],
                                               taus={"querylog": (6,)})
        cells = {row["method"]: row["matrix_cells"] for row in table.rows}
        assert cells["length-aware"] <= cells["banded"]
        assert cells["share-prefix"] <= cells["extension"]


class TestComparisonExperiments:
    def test_fig15_all_algorithms_return_same_results(self):
        table = experiments.fig15_comparison(scale=SMALL, names=["author"],
                                             taus={"author": (2,)})
        assert len({row["results"] for row in table.rows}) == 1

    def test_fig16_time_and_results_grow_with_size(self):
        table = experiments.fig16_scalability(scale=SMALL, names=["author"],
                                              taus={"author": (2,)}, steps=3)
        results = table.column("results")
        sizes = table.column("num_strings")
        assert sizes == sorted(sizes)
        assert results == sorted(results)

    def test_table3_pass_join_index_is_smallest(self):
        table = experiments.table3_index_sizes(scale=SMALL, names=["author"],
                                               tau=3, q=3)
        row = table.rows[0]
        assert row["pass_join_bytes"] < row["ed_join_bytes"]
        assert row["pass_join_bytes"] < row["trie_join_bytes"]


class TestAblations:
    def test_partition_ablation_even_has_fewest_candidates(self):
        table = experiments.ablation_partition_strategies(scale=SMALL, tau=3)
        candidates = {row["strategy"]: row["candidates"] for row in table.rows}
        assert candidates["even"] <= candidates["left-heavy"]
        assert candidates["even"] <= candidates["right-heavy"]
        assert len({row["results"] for row in table.rows}) == 1

    def test_verifier_ablation_results_agree(self):
        table = experiments.ablation_verifier_kernels(scale=SMALL, tau=5)
        assert len({row["results"] for row in table.rows}) == 1
        assert "myers-batch" in {row["method"] for row in table.rows}

    def test_verification_kernels_rows_and_speedups(self):
        table = experiments.verification_kernels(scale=SMALL, tau=2, repeats=1)
        rows = {row["method"]: row for row in table.rows}
        assert set(rows) == {"length-aware", "myers", "myers-batch"}
        # The experiment raises internally if any kernel's triple set
        # diverges; the visible column must agree too.
        assert len({row["results"] for row in rows.values()}) == 1
        assert rows["myers"]["speedup_vs_myers"] == 1
        assert all(row["speedup_vs_myers"] > 0 for row in rows.values())

    def test_filter_quality_pass_join_beats_naive(self):
        table = experiments.ablation_filter_quality(scale=SMALL, tau=2)
        candidates = {row["algorithm"]: row["candidates"] for row in table.rows}
        results = {row["algorithm"]: row["results"] for row in table.rows}
        assert len(set(results.values())) == 1
        assert candidates["pass-join"] <= candidates["naive"]

    def test_kernel_comparison_covers_both_kernels(self):
        # The experiment itself asserts each kernel element-identical to a
        # brute-force scan with its own distance, so reaching the table at
        # all is the correctness check.
        table = experiments.kernel_comparison(scale=SMALL)
        assert ({row["kernel"] for row in table.rows}
                == {"edit-distance", "token-jaccard"})
        for row in table.rows:
            assert row["accepted"] <= row["verifications"]

    def test_experiment_registry_is_complete(self):
        assert {"table2", "table3", "figure11", "figure12", "figure13",
                "figure14", "figure15", "figure16", "verification-kernels",
                "resharding-throughput", "kernel-comparison"
                } <= set(experiments.EXPERIMENTS)


class TestReshardingThroughput:
    def test_runs_five_phases_with_two_migrations(self):
        table = experiments.resharding_throughput(scale=SMALL,
                                                  migration_batch=8)
        phases = table.column("phase")
        assert phases == ["steady-2", "during-add", "steady-3",
                          "during-remove", "steady-2-after"]
        moving = [row for row in table.rows if row["rows_moved"] > 0]
        assert len(moving) == 2
        assert all(row["qps"] > 0 for row in table.rows)

    def test_failed_resize_request_fails_loudly(self, monkeypatch):
        # A refused add-shard must abort the experiment, not silently
        # degrade the resize phase into a steady-state measurement.
        from repro.service.server import SimilarityService

        original = SimilarityService.handle_request

        def refuse_reshards(self, payload):
            if isinstance(payload, dict) and payload.get("op") == "add-shard":
                return {"ok": False, "error": "injected failure"}
            return original(self, payload)

        monkeypatch.setattr(SimilarityService, "handle_request",
                            refuse_reshards)
        with pytest.raises(AssertionError, match="injected failure"):
            experiments.resharding_throughput(scale=SMALL)
