"""Unit tests for the segment inverted indices (Section 3.2)."""

from repro.config import PartitionStrategy
from repro.core.index import SegmentIndex
from repro.types import StringRecord


def _record(identifier, text):
    return StringRecord(id=identifier, text=text)


class TestSegmentIndexBuilding:
    def test_add_returns_segment_count(self):
        index = SegmentIndex(tau=3)
        assert index.add(_record(1, "vankatesh")) == 4

    def test_short_string_is_not_indexed(self):
        index = SegmentIndex(tau=3)
        assert index.add(_record(1, "ab")) == 0
        assert not index.has_length(2)

    def test_add_all(self):
        index = SegmentIndex(tau=1)
        added = index.add_all([_record(0, "abcd"), _record(1, "wxyz"), _record(2, "a")])
        assert added == 4  # two strings x two segments; "a" skipped

    def test_lookup_finds_indexed_segment(self):
        index = SegmentIndex(tau=3)
        record = _record(1, "vankatesh")
        index.add(record)
        assert list(index.lookup(9, 1, "va")) == [record]
        assert list(index.lookup(9, 4, "esh")) == [record]

    def test_lookup_missing_returns_empty(self):
        index = SegmentIndex(tau=2)
        index.add(_record(1, "abcdef"))
        assert list(index.lookup(6, 1, "zz")) == []
        assert list(index.lookup(7, 1, "ab")) == []
        assert list(index.lookup(6, 9, "ab")) == []

    def test_inverted_list_preserves_insertion_order(self):
        index = SegmentIndex(tau=1)
        first = _record(1, "abcd")
        second = _record(2, "abzz")
        index.add(first)
        index.add(second)
        assert list(index.lookup(4, 1, "ab")) == [first, second]

    def test_layout_matches_partition_module(self):
        index = SegmentIndex(tau=3)
        assert index.layout(9) == ((0, 2), (2, 2), (4, 2), (6, 3))

    def test_partition_strategy_is_honoured(self):
        index = SegmentIndex(tau=2, strategy=PartitionStrategy.LEFT_HEAVY)
        index.add(_record(1, "abcdef"))
        assert list(index.lookup(6, 3, "cdef")) == [_record(1, "abcdef")]


class TestSegmentIndexLifecycle:
    def test_indexed_lengths_sorted(self):
        index = SegmentIndex(tau=1)
        index.add(_record(0, "abcdef"))
        index.add(_record(1, "ab"))
        index.add(_record(2, "abcd"))
        assert index.indexed_lengths() == [2, 4, 6]

    def test_evict_below_removes_stale_lengths(self):
        index = SegmentIndex(tau=1)
        index.add(_record(0, "ab"))
        index.add(_record(1, "abcd"))
        index.add(_record(2, "abcdef"))
        removed = index.evict_below(4)
        assert removed == 1
        assert not index.has_length(2)
        assert index.has_length(4) and index.has_length(6)

    def test_evict_updates_current_counters(self):
        index = SegmentIndex(tau=1)
        index.add(_record(0, "ab"))
        index.add(_record(1, "abcdef"))
        before = index.current_entry_count
        index.evict_below(6)
        assert index.current_entry_count < before
        assert index.current_entry_count == index.entry_count()

    def test_records_with_length(self):
        index = SegmentIndex(tau=1)
        index.add(_record(0, "abcd"))
        index.add(_record(1, "wxyz"))
        assert index.records_with_length(4) == 2
        assert index.records_with_length(9) == 0


class TestSegmentIndexAccounting:
    def test_entry_count_matches_incremental_counter(self):
        index = SegmentIndex(tau=2)
        for i, text in enumerate(["abcdef", "abcxyz", "qwerty", "qwertz"]):
            index.add(_record(i, text))
        assert index.entry_count() == index.current_entry_count == 4 * 3
        assert len(index) == 12

    def test_segment_count_counts_all_added_segments(self):
        index = SegmentIndex(tau=2)
        index.add(_record(0, "abcdef"))
        index.add(_record(1, "abcdefgh"))
        index.evict_below(100)
        assert index.segment_count == 6  # eviction does not reduce it

    def test_approximate_bytes_positive_and_consistent(self):
        index = SegmentIndex(tau=2)
        index.add(_record(0, "abcdef"))
        index.add(_record(1, "abcdeg"))
        assert index.approximate_bytes() > 0
        assert index.approximate_bytes() == index.current_approximate_bytes
        assert index.deep_bytes() >= index.approximate_bytes()

    def test_distinct_segment_count_deduplicates_shared_segments(self):
        index = SegmentIndex(tau=1)
        index.add(_record(0, "abcd"))
        index.add(_record(1, "abcd"))
        # Same segments twice: 2 distinct keys, 4 postings.
        assert index.distinct_segment_count() == 2
        assert index.entry_count() == 4
