"""Tests for the top-k similarity join extension."""

import pytest

from repro.distance import edit_distance
from repro.topk import closest_pair, top_k_join

from helpers import brute_force_pairs, random_strings


class TestTopKJoin:
    def test_returns_exactly_k_pairs(self):
        strings = ["vldb", "pvldb", "vldbj", "sigmod", "sigmmod"]
        result = top_k_join(strings, k=3)
        assert len(result) == 3

    def test_paper_strings_top_one(self, paper_strings):
        result = top_k_join(paper_strings, k=1)
        assert [(pair.left, pair.right) for pair in result] == [
            ("kaushik chakrab", "caushik chakrabar")]
        assert result.pairs[0].distance == 3

    def test_distances_are_nondecreasing(self):
        strings = random_strings(60, 3, 12, alphabet="abc", seed=61)
        result = top_k_join(strings, k=15)
        distances = [pair.distance for pair in result]
        assert distances == sorted(distances)

    def test_matches_brute_force_kth_distance(self):
        strings = random_strings(60, 3, 12, alphabet="abc", seed=62)
        k = 10
        result = top_k_join(strings, k=k)
        # Brute-force: the k smallest distances over all pairs.
        truth = sorted(brute_force_pairs(strings, tau=12).values())[:k]
        assert [pair.distance for pair in result] == truth

    def test_fewer_than_k_pairs_available(self):
        result = top_k_join(["aaa", "zzzzzzzzz"], k=5, max_tau=2)
        assert len(result) == 0

    def test_max_tau_caps_the_search(self):
        strings = ["aaaa", "bbbb", "cccc"]
        result = top_k_join(strings, k=2, max_tau=1)
        assert len(result) == 0  # every pair is at distance 4 > 1

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            top_k_join(["a", "b"], k=0)

    def test_tiny_collections(self):
        assert len(top_k_join([], k=3)) == 0
        assert len(top_k_join(["only"], k=3)) == 0

    def test_statistics_are_merged_across_rounds(self):
        strings = ["abcd", "abce", "wxyz"]
        result = top_k_join(strings, k=1)
        assert result.statistics.num_strings == 3
        assert result.statistics.num_results == 1
        assert result.statistics.total_seconds > 0


class TestClosestPair:
    def test_finds_the_closest(self):
        pair = closest_pair(["kitten", "mitten", "sitting"])
        assert {pair.left, pair.right} == {"kitten", "mitten"}
        assert pair.distance == edit_distance("kitten", "mitten")

    def test_none_for_singleton(self):
        assert closest_pair(["alone"]) is None

    def test_none_when_capped(self):
        assert closest_pair(["aaaa", "zzzz"], max_tau=1) is None
