"""Unit tests for the unbounded edit-distance kernels."""

import pytest

from repro.distance.levenshtein import (edit_distance,
                                        edit_distance_unit_cost_matrix,
                                        longest_common_prefix)


class TestEditDistance:
    def test_identical_strings(self):
        assert edit_distance("similarity", "similarity") == 0

    def test_empty_strings(self):
        assert edit_distance("", "") == 0

    def test_one_empty_string(self):
        assert edit_distance("", "abc") == 3
        assert edit_distance("abc", "") == 3

    def test_single_substitution(self):
        assert edit_distance("cat", "car") == 1

    def test_single_insertion(self):
        assert edit_distance("vldb", "pvldb") == 1

    def test_single_deletion(self):
        assert edit_distance("pvldb", "vldb") == 1

    def test_paper_running_example(self):
        # Section 2: ed("kaushic chaduri", "kaushuk chadhui") = 4
        assert edit_distance("kaushic chaduri", "kaushuk chadhui") == 4

    def test_paper_answer_pair(self):
        # <s4, s6> from Figure 1 is the only answer at tau = 3.
        assert edit_distance("kaushik chakrab", "caushik chakrabar") == 3

    def test_kitten_sitting(self):
        assert edit_distance("kitten", "sitting") == 3

    def test_symmetry(self):
        assert edit_distance("abcdef", "azced") == edit_distance("azced", "abcdef")

    def test_completely_different(self):
        assert edit_distance("aaaa", "bbbb") == 4

    def test_unicode(self):
        assert edit_distance("naïve", "naive") == 1

    def test_triangle_inequality_sample(self):
        a, b, c = "partition", "participation", "station"
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)


class TestEditDistanceMatrix:
    def test_matrix_dimensions(self):
        matrix = edit_distance_unit_cost_matrix("abc", "ab")
        assert len(matrix) == 4
        assert all(len(row) == 3 for row in matrix)

    def test_matrix_borders(self):
        matrix = edit_distance_unit_cost_matrix("abc", "xy")
        assert [row[0] for row in matrix] == [0, 1, 2, 3]
        assert matrix[0] == [0, 1, 2]

    def test_matrix_final_cell_equals_distance(self):
        a, b = "kaushik chakrab", "caushik chakrabar"
        matrix = edit_distance_unit_cost_matrix(a, b)
        assert matrix[len(a)][len(b)] == edit_distance(a, b)

    def test_matrix_prefix_property(self):
        a, b = "banana", "bandana"
        matrix = edit_distance_unit_cost_matrix(a, b)
        for i in range(len(a) + 1):
            for j in range(len(b) + 1):
                assert matrix[i][j] == edit_distance(a[:i], b[:j])


class TestLongestCommonPrefix:
    def test_no_common_prefix(self):
        assert longest_common_prefix("abc", "xyz") == 0

    def test_full_common_prefix(self):
        assert longest_common_prefix("abc", "abc") == 3

    def test_partial_prefix(self):
        assert longest_common_prefix("abcdef", "abcxyz") == 3

    def test_one_is_prefix_of_other(self):
        assert longest_common_prefix("abc", "abcdef") == 3

    def test_empty_string(self):
        assert longest_common_prefix("", "abc") == 0
