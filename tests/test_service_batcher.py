"""Tests for the request batcher (coalescing concurrent lookups)."""

import asyncio

import pytest

from repro.service import RequestBatcher


class Recorder:
    """An execute hook that records every batch it is handed."""

    def __init__(self, fail=False):
        self.batches = []
        self.fail = fail

    def __call__(self, keys):
        self.batches.append(list(keys))
        if self.fail:
            raise RuntimeError("index exploded")
        return [f"result:{key}" for key in keys]


def gather(batcher, keys):
    async def run():
        return await asyncio.gather(
            *(batcher.submit(key) for key in keys), return_exceptions=True)
    return asyncio.run(run())


class TestCoalescing:
    def test_concurrent_submits_share_one_batch(self):
        recorder = Recorder()
        batcher = RequestBatcher(recorder, max_batch=64, window=0.005)
        results = gather(batcher, ["a", "b", "a", "a", "b"])
        assert results == ["result:a", "result:b", "result:a", "result:a",
                           "result:b"]
        assert recorder.batches == [["a", "b"]]  # deduped, one execution
        assert batcher.stats.requests == 5
        assert batcher.stats.unique_executed == 2
        assert batcher.stats.coalesced == 3
        assert batcher.stats.batches == 1

    def test_zero_window_still_coalesces_same_tick_submits(self):
        recorder = Recorder()
        batcher = RequestBatcher(recorder, max_batch=64, window=0)
        results = gather(batcher, ["x", "x", "y"])
        assert results == ["result:x", "result:x", "result:y"]
        assert len(recorder.batches) == 1

    def test_max_batch_drains_immediately(self):
        recorder = Recorder()
        batcher = RequestBatcher(recorder, max_batch=2, window=10.0)

        async def run():
            # window is 10s: only the max_batch trigger can drain in time.
            return await asyncio.wait_for(
                asyncio.gather(batcher.submit("a"), batcher.submit("b")),
                timeout=5.0)

        assert asyncio.run(run()) == ["result:a", "result:b"]
        assert recorder.batches == [["a", "b"]]

    def test_sequential_submits_run_in_separate_batches(self):
        recorder = Recorder()
        batcher = RequestBatcher(recorder, window=0)

        async def run():
            first = await batcher.submit("a")
            second = await batcher.submit("b")
            return [first, second]

        assert asyncio.run(run()) == ["result:a", "result:b"]
        assert recorder.batches == [["a"], ["b"]]
        assert batcher.stats.batches == 2

    def test_list_results_are_copied_per_waiter(self):
        batcher = RequestBatcher(lambda keys: [[1, 2] for _ in keys],
                                 window=0.005)
        first, second = gather(batcher, ["k", "k"])
        first.append(3)
        assert second == [1, 2]


class TestFailure:
    def test_execute_error_reaches_every_waiter(self):
        recorder = Recorder(fail=True)
        batcher = RequestBatcher(recorder, window=0.005)
        results = gather(batcher, ["a", "b"])
        assert all(isinstance(result, RuntimeError) for result in results)
        assert batcher.stats.unique_executed == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RequestBatcher(lambda keys: [], max_batch=0)
        with pytest.raises(ValueError):
            RequestBatcher(lambda keys: [], window=-1)
