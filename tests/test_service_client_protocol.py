"""Wire-protocol violation handling in the service clients.

A server that dies mid-exchange must surface as
:class:`~repro.exceptions.ProtocolError` (a :class:`ServiceError`
subclass), never as a bare ``json.JSONDecodeError`` or
``ConnectionResetError``.  The fake server below accepts one connection,
reads one request line, answers with a configurable byte string (possibly
a half-written frame), and closes the socket.
"""

import asyncio
import socket
import struct
import threading

import pytest

from repro.exceptions import ProtocolError, ServiceError
from repro.service.client import AsyncServiceClient, ServiceClient


class HalfWritingServer:
    """Accept one client, read one line, reply with ``frame``, hang up."""

    def __init__(self, frame: bytes, *, reset: bool = False) -> None:
        self.frame = frame
        self.reset = reset
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.address = self._listener.getsockname()
        self._thread = threading.Thread(target=self._serve, daemon=True)

    def _serve(self) -> None:
        conn, _ = self._listener.accept()
        with conn:
            conn.makefile("rb").readline()  # wait for the request
            if self.frame:
                conn.sendall(self.frame)
            if self.reset:
                # An abortive close (SO_LINGER 0) sends RST instead of FIN,
                # which surfaces client-side as ConnectionResetError.
                conn.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                                struct.pack("ii", 1, 0))

    def __enter__(self) -> tuple[str, int]:
        self._thread.start()
        return self.address

    def __exit__(self, *exc_info: object) -> None:
        self._listener.close()
        self._thread.join(timeout=5)


class TestSyncClientProtocolErrors:
    def test_half_written_frame(self):
        with HalfWritingServer(b'{"ok": tru') as (host, port):
            client = ServiceClient(host, port)
            try:
                with pytest.raises(ProtocolError) as excinfo:
                    client.ping()
                assert "mid-response" in str(excinfo.value)
            finally:
                client.close()

    def test_connection_closed_before_any_byte(self):
        with HalfWritingServer(b"") as (host, port):
            client = ServiceClient(host, port)
            try:
                with pytest.raises(ProtocolError):
                    client.search("vldb", tau=1)
            finally:
                client.close()

    def test_complete_but_non_json_frame(self):
        with HalfWritingServer(b"not json at all\n") as (host, port):
            client = ServiceClient(host, port)
            try:
                with pytest.raises(ProtocolError):
                    client.ping()
            finally:
                client.close()

    def test_connection_reset_mid_exchange(self):
        with HalfWritingServer(b"", reset=True) as (host, port):
            client = ServiceClient(host, port)
            try:
                with pytest.raises(ServiceError):  # ProtocolError or closed
                    client.ping()
            finally:
                client.close()

    def test_protocol_error_is_a_service_error(self):
        assert issubclass(ProtocolError, ServiceError)


class TestAsyncClientProtocolErrors:
    def test_half_written_frame(self):
        async def scenario(host, port):
            client = await AsyncServiceClient.connect(host, port)
            try:
                with pytest.raises(ProtocolError):
                    await client.ping()
            finally:
                await client.close()

        with HalfWritingServer(b'{"matches": [') as (host, port):
            asyncio.run(scenario(host, port))
