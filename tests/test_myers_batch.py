"""Unit and property tests for the batched bit-parallel verification kernel."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import VerificationMethod
from repro.core.store import RecordStore
from repro.core.verify import (BatchMyersVerifier, LengthAwareVerifier,
                               MatchContext, MyersVerifier, make_verifier)
from repro.distance import length_aware_edit_distance
from repro.distance.myers_batch import BatchMyersKernel, build_pattern_masks
from repro.exceptions import InvalidThresholdError
from repro.types import JoinStatistics, StringRecord

#: Any MatchContext works for the whole-pair kernels under test here; the
#: batched verifier never reads the segment alignment.
CONTEXT = MatchContext(ordinal=1, probe_start=0, seg_start=0, seg_length=1)


class TestPatternMasks:
    def test_positions_become_bits(self):
        masks = build_pattern_masks("aba")
        assert masks == {"a": 0b101, "b": 0b010}

    def test_empty_pattern(self):
        assert build_pattern_masks("") == {}


class TestBatchMyersKernel:
    def test_classic_pair(self):
        assert BatchMyersKernel("kitten").distance_within("sitting", 3) == 3

    def test_batch_matches_per_pair_oracle(self):
        rng = random.Random(11)
        for _ in range(50):
            pattern = "".join(rng.choice("abcd")
                              for _ in range(rng.randint(0, 15)))
            texts = ["".join(rng.choice("abcd")
                             for _ in range(rng.randint(0, 15)))
                     for _ in range(10)]
            for tau in range(0, 4):
                expected = [length_aware_edit_distance(pattern, text, tau)
                            for text in texts]
                assert (BatchMyersKernel(pattern).distances_within(texts, tau)
                        == expected), (pattern, texts, tau)

    def test_empty_candidate_list(self):
        assert BatchMyersKernel("abc").distances_within([], 2) == []

    def test_empty_pattern_and_text(self):
        kernel = BatchMyersKernel("")
        assert kernel.distances_within(["", "a", "abc"], 2) == [0, 1, 3]

    def test_cap_convention(self):
        # Bounded kernels report min(ed, tau + 1), never the true distance
        # beyond the threshold.
        assert BatchMyersKernel("aaaa").distance_within("bbbb", 1) == 2

    def test_long_pattern_beyond_64_characters(self):
        base = "x" * 80 + "abcdefghij"
        kernel = BatchMyersKernel(base)
        assert kernel.distances_within([base, base[:-2], base + "zz"], 3) == [0, 2, 2]

    def test_invalid_threshold(self):
        with pytest.raises(InvalidThresholdError):
            BatchMyersKernel("a").distances_within(["b"], -1)

    def test_stats_counters_advance(self):
        stats = JoinStatistics()
        BatchMyersKernel("abcdef").distances_within(
            ["abcdef", "abcdeg", "zzzzzz"], 1, stats)
        assert stats.num_matrix_cells > 0
        assert stats.num_early_terminations >= 1  # zzzzzz cuts off early


class TestBatchMyersVerifier:
    def test_factory_and_flags(self):
        verifier = make_verifier("myers-batch", 2)
        assert isinstance(verifier, BatchMyersVerifier)
        assert verifier.method is VerificationMethod.MYERS_BATCH
        assert verifier.exact_per_pair

    def test_masks_built_once_per_probe(self):
        verifier = BatchMyersVerifier(2)
        records = [StringRecord(id=i, text=t)
                   for i, t in enumerate(["vldb", "pvldb", "sigmod"])]
        # Many calls with the same probe — one mask build.
        for _ in range(5):
            verifier.verify_candidates("vldbj", records, CONTEXT)
        assert verifier.masks_built == 1
        verifier.verify_candidates("icde", records, CONTEXT)
        assert verifier.masks_built == 2

    def test_verify_rows_materialises_only_accepted_records(self):
        store = RecordStore()
        rows = [store.intern(StringRecord(id=i, text=t))
                for i, t in enumerate(["vldb", "pvldb", "sigmod"])]
        verifier = BatchMyersVerifier(1)
        accepted = verifier.verify_rows("vldb", store, rows, CONTEXT)
        assert [(record.text, distance) for record, distance in accepted] == [
            ("vldb", 0), ("pvldb", 1)]

    def test_empty_rows_and_candidates(self):
        store = RecordStore()
        verifier = BatchMyersVerifier(1)
        assert verifier.verify_rows("abc", store, [], CONTEXT) == []
        assert verifier.verify_candidates("abc", [], CONTEXT) == []
        assert verifier.masks_built == 0  # nothing to verify, nothing built


# ----------------------------------------------------------------------
# Property: element-identical to the per-pair exact verifiers
# ----------------------------------------------------------------------
short_text = st.text(alphabet="abc", max_size=8)


@settings(max_examples=60, deadline=None)
@given(probe=short_text,
       texts=st.lists(short_text, max_size=12),
       tau=st.integers(min_value=1, max_value=4),
       duplicate=st.booleans())
def test_batched_verifier_is_element_identical(probe, texts, tau, duplicate):
    """BatchMyersVerifier == MyersVerifier == LengthAwareVerifier, elementwise.

    Random inverted lists (including empty lists and duplicated entries —
    the same record can appear under several segments) must produce the
    same accepted records with the same distances, in the same order, via
    both the record-list and the row-ordinal entry points.
    """
    if duplicate and texts:
        texts = texts + [texts[0]]
    records = [StringRecord(id=i, text=text) for i, text in enumerate(texts)]
    store = RecordStore()
    rows = [store.intern(record) for record in records]

    batched = BatchMyersVerifier(tau)
    expected_myers = MyersVerifier(tau).verify_candidates(
        probe, records, CONTEXT)
    expected_banded = LengthAwareVerifier(tau).verify_candidates(
        probe, records, CONTEXT)
    got_candidates = batched.verify_candidates(probe, records, CONTEXT)
    got_rows = batched.verify_rows(probe, store, rows, CONTEXT)

    assert got_candidates == expected_myers == expected_banded
    assert got_rows == expected_myers
