"""Unit tests for the columnar record store and the posting views."""

from array import array

import pytest

from repro.core.index import SegmentIndex
from repro.core.store import PostingList, RecordStore
from repro.types import StringRecord


def _record(identifier, text):
    return StringRecord(id=identifier, text=text)


class TestInterning:
    def test_intern_returns_columns(self):
        store = RecordStore()
        row = store.intern(_record(7, "vldb"))
        assert store.id_at(row) == 7
        assert store.text_at(row) == "vldb"
        assert store.length_at(row) == 4
        assert store.record_at(row) == _record(7, "vldb")
        assert store.sort_key(row) == ("vldb", 7)

    def test_same_record_interns_to_same_row(self):
        store = RecordStore()
        first = store.intern(_record(1, "abcd"))
        second = store.intern(_record(1, "abcd"))
        assert first == second
        assert store.live_count == 1

    def test_distinct_ids_get_distinct_rows(self):
        store = RecordStore()
        rows = {store.intern(_record(i, "abcd")) for i in range(3)}
        assert len(rows) == 3
        assert store.live_count == 3

    def test_same_id_different_text_gets_its_own_row(self):
        # The dynamic index re-uses tombstoned ids with new texts; the two
        # rows must coexist while the stale one is being purged.
        store = RecordStore()
        old = store.intern(_record(1, "abcd"))
        new = store.intern(_record(1, "wxyz"))
        assert old != new
        assert store.text_at(old) == "abcd"
        assert store.text_at(new) == "wxyz"

    def test_find(self):
        store = RecordStore()
        row = store.intern(_record(3, "abc"))
        assert store.find(3, "abc") == row
        assert store.find(3, "abd") is None
        assert store.find(4, "abc") is None


class TestRelease:
    def test_release_balances_intern(self):
        store = RecordStore()
        row = store.intern(_record(0, "abcd"))
        store.intern(_record(0, "abcd"))
        assert store.release(row) == 1
        assert store.is_live(row)
        assert store.release(row) == 0
        assert not store.is_live(row)
        assert store.find(0, "abcd") is None
        assert store.live_count == 0

    def test_over_release_raises(self):
        store = RecordStore()
        row = store.intern(_record(0, "abcd"))
        store.release(row)
        with pytest.raises(ValueError):
            store.release(row)

    def test_freed_rows_are_recycled(self):
        store = RecordStore()
        row = store.intern(_record(0, "abcd"))
        store.release(row)
        recycled = store.intern(_record(9, "wxyz"))
        assert recycled == row
        assert store.row_count == 1
        assert store.record_at(recycled) == _record(9, "wxyz")

    def test_accounting_shrinks_on_release(self):
        store = RecordStore()
        row = store.intern(_record(0, "abcdefgh"))
        full = store.approximate_bytes()
        store.release(row)
        assert store.approximate_bytes() < full
        assert store.deep_bytes() > 0


class TestPostingList:
    def test_lazy_record_view(self):
        store = RecordStore()
        rows = array("q", (store.intern(_record(0, "abcd")),
                           store.intern(_record(1, "abzz"))))
        view = PostingList(store, rows)
        assert len(view) == 2
        assert list(view) == [_record(0, "abcd"), _record(1, "abzz")]
        assert view[1] == _record(1, "abzz")
        assert view[0:2] == [_record(0, "abcd"), _record(1, "abzz")]
        assert view == [_record(0, "abcd"), _record(1, "abzz")]


class TestIndexStoreIntegration:
    def test_index_owns_a_store_by_default(self):
        index = SegmentIndex(tau=1)
        index.add(_record(0, "abcd"))
        assert index.store.live_count == 1

    def test_shared_store_across_indices(self):
        store = RecordStore()
        first = SegmentIndex(tau=1, store=store)
        second = SegmentIndex(tau=2, store=store)
        first.add(_record(0, "abcdef"))
        second.add(_record(0, "abcdef"))
        assert store.live_count == 1  # one interned row, two references

    def test_remove_releases_the_row(self):
        index = SegmentIndex(tau=1)
        record = _record(0, "abcd")
        index.add(record)
        index.remove(record)
        assert index.store.live_count == 0

    def test_evict_below_releases_rows(self):
        index = SegmentIndex(tau=1)
        index.add(_record(0, "abcd"))
        index.add(_record(1, "abcdef"))
        index.evict_below(6)
        assert index.store.live_count == 1
        assert index.records_with_length(4) == 0

    def test_memory_report_and_object_layout(self):
        index = SegmentIndex(tau=2)
        for i, text in enumerate(["abcdef", "abcxyz", "qwerty"]):
            index.add(_record(i, text))
        report = index.memory_report()
        assert report["records"] == 3
        assert report["postings"] == 9
        assert report["approximate_bytes"] == (report["postings_bytes"]
                                               + report["store_bytes"])
        # The columnar layout must undercut the object-list counterfactual.
        assert report["approximate_bytes"] < index.object_layout_bytes()
