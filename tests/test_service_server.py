"""End-to-end tests for the similarity service: dispatch, TCP, clients."""

import asyncio
import json

import pytest

from repro.config import ServiceConfig
from repro.exceptions import ServiceError
from repro.search import PassJoinSearcher, SearchMatch
from repro.service import (AsyncServiceClient, BackgroundServer, ServiceClient,
                           SimilarityServer, SimilarityService)

STRINGS = ["vldb", "pvldb", "sigmod", "sigmmod", "icde"]


@pytest.fixture(scope="module")
def server_address():
    with BackgroundServer(STRINGS, ServiceConfig(port=0, max_tau=2)) as address:
        yield address


@pytest.fixture
def client(server_address):
    with ServiceClient(*server_address) as client:
        yield client


class TestDispatch:
    """White-box tests of the transport-free service core."""

    def setup_method(self):
        self.service = SimilarityService(STRINGS, ServiceConfig(max_tau=2))

    def test_search_matches_local_searcher(self):
        response = self.service.handle_request(
            {"op": "search", "query": "vldb", "tau": 1})
        local = PassJoinSearcher(STRINGS, max_tau=2).search("vldb", tau=1)
        assert response["ok"] is True
        assert response["matches"] == [m.to_dict() for m in local]
        assert response["cached"] is False

    def test_second_identical_search_is_cached(self):
        request = {"op": "search", "query": "vldb", "tau": 1}
        first = self.service.handle_request(request)
        second = self.service.handle_request(request)
        assert second["cached"] is True
        assert second["matches"] == first["matches"]

    def test_mutations_update_epoch_and_invalidate(self):
        request = {"op": "search", "query": "icde", "tau": 1}
        self.service.handle_request(request)
        insert = self.service.handle_request({"op": "insert", "text": "icdm"})
        assert insert["ok"] is True
        after = self.service.handle_request(request)
        assert after["cached"] is False
        assert {m["text"] for m in after["matches"]} == {"icde", "icdm"}

    def test_unknown_op(self):
        response = self.service.handle_request({"op": "nonsense"})
        assert response["ok"] is False
        assert "unknown op" in response["error"]

    def test_shutdown_is_transport_level(self):
        response = self.service.handle_request({"op": "shutdown"})
        assert response["ok"] is False
        assert "transport" in response["error"]

    def test_non_object_request(self):
        assert self.service.handle_request([1, 2])["ok"] is False

    def test_invalid_field_types(self):
        assert self.service.handle_request(
            {"op": "search", "query": 42})["ok"] is False
        assert self.service.handle_request(
            {"op": "search", "query": "x", "tau": "high"})["ok"] is False
        assert self.service.handle_request(
            {"op": "top-k", "query": "x", "k": 0})["ok"] is False
        assert self.service.handle_request(
            {"op": "delete", "id": "zero"})["ok"] is False

    def test_tau_above_max_rejected(self):
        response = self.service.handle_request(
            {"op": "search", "query": "x", "tau": 9})
        assert response["ok"] is False

    def test_stats_and_ping(self):
        assert self.service.handle_request({"op": "ping"})["pong"] is True
        stats = self.service.handle_request({"op": "stats"})
        assert stats["size"] == len(STRINGS)
        assert "cache" in stats and "epoch" in stats
        assert "shards" not in stats  # unsharded service

    def test_compact_op_invalidates_cached_queries(self):
        # Regression for the epoch contract: a compaction that purges
        # tombstones is a physical index change and must bump the epoch,
        # so cached answers cannot outlive it.
        request = {"op": "search", "query": "vldb", "tau": 1}
        deleted = self.service.handle_request({"op": "delete", "id": 4})
        assert deleted["deleted"] is True
        first = self.service.handle_request(request)
        assert self.service.handle_request(request)["cached"] is True
        compacted = self.service.handle_request({"op": "compact"})
        assert compacted["purged"] == 1
        after = self.service.handle_request(request)
        assert after["cached"] is False
        assert after["matches"] == first["matches"]  # same answer, re-proved
        assert after["epoch"] > first["epoch"]


class TestSyncClientEndToEnd:
    def test_ping_and_stats(self, client):
        assert client.ping() is True
        assert client.stats()["size"] >= len(STRINGS)

    def test_search_round_trip_equals_local_search(self, client):
        matches = client.search("vldb", tau=1)
        local = PassJoinSearcher(STRINGS, max_tau=2).search("vldb", tau=1)
        assert matches == local  # SearchMatch round-trips exactly

    def test_top_k(self, client):
        matches = client.top_k("sigmod", 2)
        assert matches[0] == SearchMatch(0, 2, "sigmod")
        assert len(matches) == 2

    def test_insert_search_delete(self, client):
        new_id = client.insert("brandnew")
        assert client.search("brandnew", tau=0) == [
            SearchMatch(0, new_id, "brandnew")]
        assert client.delete(new_id) is True
        assert client.delete(new_id) is False
        assert client.search("brandnew", tau=0) == []

    def test_compact(self, client):
        new_id = client.insert("tocompact")
        client.delete(new_id)
        assert client.compact() >= 0
        assert client.stats()["tombstones"] == 0

    def test_server_error_raises_service_error(self, client):
        with pytest.raises(ServiceError):
            client.search("x", tau=99)

    def test_malformed_line_keeps_connection_alive(self, server_address):
        with ServiceClient(*server_address) as client:
            client._file.write(b"this is not json\n")
            client._file.flush()
            response = json.loads(client._file.readline())
            assert response["ok"] is False
            assert "invalid JSON" in response["error"]
            assert client.ping() is True  # same connection still works


class TestAsyncClientEndToEnd:
    def test_concurrent_queries_coalesce(self):
        async def scenario():
            config = ServiceConfig(port=0, max_tau=2, batch_window=0.01)
            service = SimilarityService(STRINGS, config)
            server = SimilarityServer(service)
            host, port = await server.start()
            clients = [await AsyncServiceClient.connect(host, port)
                       for _ in range(5)]
            try:
                results = await asyncio.gather(
                    *(client.search("vldb", tau=1) for client in clients))
            finally:
                for client_ in clients:
                    await client_.close()
                await server.stop()
            return results, server.batcher.stats

        results, stats = asyncio.run(scenario())
        assert all(result == results[0] for result in results)
        assert stats.requests == 5
        assert stats.unique_executed == 1  # one index pass for all five

    def test_full_vocabulary(self):
        async def scenario():
            service = SimilarityService(STRINGS, ServiceConfig(port=0, max_tau=2))
            server = SimilarityServer(service)
            host, port = await server.start()
            async with await AsyncServiceClient.connect(host, port) as client:
                assert await client.ping() is True
                new_id = await client.insert("asyncnew", id=777)
                assert new_id == 777
                assert (await client.search("asyncnew", tau=0)) == [
                    SearchMatch(0, 777, "asyncnew")]
                assert (await client.top_k("vldb", 1))[0].distance == 0
                assert await client.delete(777) is True
                assert await client.compact() >= 0
                assert (await client.stats())["size"] == len(STRINGS)
            await server.stop()

        asyncio.run(scenario())

    def test_shutdown_op_stops_the_server(self):
        async def scenario():
            service = SimilarityService(STRINGS, ServiceConfig(port=0))
            server = SimilarityServer(service)
            host, port = await server.start()
            async with await AsyncServiceClient.connect(host, port) as client:
                await client.shutdown()
            await asyncio.wait_for(server.serve_forever(), timeout=5)
            with pytest.raises(OSError):
                await asyncio.open_connection(host, port)

        asyncio.run(scenario())


class TestCacheInvalidationOverTheWire:
    def test_mutation_between_identical_queries(self, server_address):
        with ServiceClient(*server_address) as client:
            request = {"op": "search", "query": "uniquemut", "tau": 2}
            client.request(request)
            cached = client.request(request)
            assert cached["cached"] is True
            new_id = client.insert("uniquemut")
            fresh = client.request(request)
            assert fresh["cached"] is False
            assert new_id in {m["id"] for m in fresh["matches"]}
            client.delete(new_id)
