"""Unit tests for the verification strategies (Section 5)."""

import pytest

from repro.config import VerificationMethod
from repro.core.partition import partition, segment_layout
from repro.core.verify import (BandedVerifier, BatchMyersVerifier,
                               ExtensionVerifier, LengthAwareVerifier,
                               MatchContext, MyersVerifier,
                               SharePrefixExtensionVerifier, make_verifier)
from repro.distance import edit_distance
from repro.exceptions import UnknownMethodError
from repro.types import JoinStatistics, StringRecord

ALL_METHODS = list(VerificationMethod)


def _context_for(indexed_text, probe, tau, ordinal):
    """Build a MatchContext for a real matching segment of ``indexed_text``."""
    segment = partition(indexed_text, tau)[ordinal - 1]
    probe_start = probe.find(segment.text)
    assert probe_start >= 0, "test fixture must contain the segment"
    return segment, MatchContext(ordinal=ordinal, probe_start=probe_start,
                                 seg_start=segment.start,
                                 seg_length=segment.length)


class TestMakeVerifier:
    def test_factory_returns_expected_classes(self):
        assert isinstance(make_verifier("banded", 2), BandedVerifier)
        assert isinstance(make_verifier("length-aware", 2), LengthAwareVerifier)
        assert isinstance(make_verifier("extension", 2), ExtensionVerifier)
        assert isinstance(make_verifier("share-prefix", 2), SharePrefixExtensionVerifier)
        assert isinstance(make_verifier(VerificationMethod.MYERS, 2), MyersVerifier)
        assert isinstance(make_verifier("myers-batch", 2), BatchMyersVerifier)

    def test_factory_unknown_method(self):
        with pytest.raises(UnknownMethodError):
            make_verifier("quantum", 2)

    def test_exactness_flags(self):
        assert make_verifier("banded", 1).exact_per_pair
        assert make_verifier("length-aware", 1).exact_per_pair
        assert make_verifier("myers", 1).exact_per_pair
        assert make_verifier("myers-batch", 1).exact_per_pair
        assert not make_verifier("extension", 1).exact_per_pair
        assert not make_verifier("share-prefix", 1).exact_per_pair


@pytest.mark.parametrize("method", ALL_METHODS)
class TestWholePairAcceptance:
    """Whatever the strategy, accepted pairs must be truly similar with the
    exact distance, and exact strategies must accept every similar pair."""

    def test_accepts_paper_answer_pair(self, method):
        tau = 3
        indexed = "kaushik chakrab"        # s4 in the paper, length 15
        probe = "caushik chakrabar"        # s6, length 17
        # They share the segment "shik" (ordinal 2) at probe position 3; this
        # is the occurrence whose alignment certifies the pair (the " cha"
        # occurrence is rejected by the tightened extension bounds and the
        # pair is instead accepted here, as Theorem 6 guarantees).
        segment, context = _context_for(indexed, probe, tau, ordinal=2)
        assert segment.text == "shik"
        verifier = make_verifier(method, tau)
        accepted = verifier.verify_candidates(
            probe, [StringRecord(id=4, text=indexed)], context)
        assert len(accepted) == 1
        record, distance = accepted[0]
        assert record.id == 4
        assert distance == edit_distance(indexed, probe) == 3

    def test_rejects_dissimilar_pair(self, method):
        tau = 3
        indexed = "kaushuk chadhui"        # s5
        probe = "caushik chakrabar"        # s6; ed(s5, s6) = 6 > 3
        segment, context = _context_for(indexed, probe, tau, ordinal=3)
        assert segment.text == " cha"
        verifier = make_verifier(method, tau)
        accepted = verifier.verify_candidates(
            probe, [StringRecord(id=5, text=indexed)], context)
        assert accepted == []

    def test_reported_distances_are_exact(self, method):
        tau = 2
        indexed = "partition based"
        probe = "partition bases"
        segment, context = _context_for(indexed, probe, tau, ordinal=1)
        verifier = make_verifier(method, tau)
        accepted = verifier.verify_candidates(
            probe, [StringRecord(id=0, text=indexed)], context)
        assert accepted and accepted[0][1] == 1

    def test_statistics_count_verifications(self, method):
        tau = 1
        stats = JoinStatistics()
        verifier = make_verifier(method, tau, stats)
        indexed = "abcdef"
        probe = "abcdeg"
        segment, context = _context_for(indexed, probe, tau, ordinal=1)
        verifier.verify_candidates(probe, [StringRecord(id=0, text=indexed)], context)
        assert stats.num_verifications == 1


class TestExtensionSpecifics:
    def test_tightened_thresholds_reject_via_left_part(self):
        """With ordinal i the left parts must match within i-1 edits."""
        tau = 3
        # indexed "abcXdef" / probe "zbcXdef": segment ordinal 1 of the
        # indexed string is "ab" (for tau=3, length 7 -> 1,2,2,2) ... use a
        # crafted pair instead: left parts differ although the whole pair is
        # similar; the extension verifier at ordinal 1 must reject, because a
        # later segment will accept it.
        indexed = "xbcdefgh"
        probe = "ybcdefgh"   # ed = 1 <= tau
        layout = segment_layout(len(indexed), tau)
        # ordinal 2 segment of indexed is at layout[1]; it matches probe at the
        # same offset, but the left parts ("xb.." vs "yb..") differ by 1 > i-1?
        # For ordinal 1 (segment "xb"), there is no matching substring at all,
        # so craft the check at ordinal 2 where left parts differ by exactly 1
        # = i - 1 and the pair is accepted.
        seg_start, seg_len = layout[1]
        segment_text = indexed[seg_start:seg_start + seg_len]
        probe_start = probe.find(segment_text)
        context = MatchContext(ordinal=2, probe_start=probe_start,
                               seg_start=seg_start, seg_length=seg_len)
        verifier = ExtensionVerifier(tau)
        accepted = verifier.verify_candidates(
            probe, [StringRecord(id=1, text=indexed)], context)
        assert [record.id for record, _ in accepted] == [1]

    def test_rejection_at_one_segment_is_not_a_false_negative_overall(self):
        """A pair rejected at an early segment is accepted at a later one."""
        tau = 2
        indexed = "aXcdYf"   # differs from probe in positions 1 and 4
        probe = "aZcdWf"
        assert edit_distance(indexed, probe) == 2
        layout = segment_layout(len(indexed), tau)
        verifier = ExtensionVerifier(tau)
        accepted_any = False
        for ordinal, (seg_start, seg_len) in enumerate(layout, start=1):
            segment_text = indexed[seg_start:seg_start + seg_len]
            start = probe.find(segment_text)
            if start < 0:
                continue
            context = MatchContext(ordinal=ordinal, probe_start=start,
                                   seg_start=seg_start, seg_length=seg_len)
            if verifier.verify_candidates(
                    probe, [StringRecord(id=9, text=indexed)], context):
                accepted_any = True
        assert accepted_any


class TestSharePrefixSpecifics:
    def test_list_verification_matches_extension_results(self):
        tau = 3
        probe = "caushik chakrabar"
        candidates = [
            StringRecord(id=3, text="kaushic chaduri"),
            StringRecord(id=4, text="kaushik chakrab"),
            StringRecord(id=5, text="kaushuk chadhui"),
        ]
        segment, context = _context_for(candidates[1].text, probe, tau, ordinal=2)
        extension = ExtensionVerifier(tau)
        sharing = SharePrefixExtensionVerifier(tau)
        expected = {record.id: distance for record, distance in
                    extension.verify_candidates(probe, candidates, context)}
        got = {record.id: distance for record, distance in
               sharing.verify_candidates(probe, candidates, context)}
        assert got == expected == {4: 3}

    def test_sharing_reduces_matrix_cells_on_long_sorted_lists(self):
        tau = 2
        prefix = "a shared and rather long common prefix "
        candidates = [StringRecord(id=i, text=prefix + suffix)
                      for i, suffix in enumerate(sorted(
                          ["alpha", "alphb", "alphc", "alphd", "alphe"]))]
        probe = prefix + "alpha"
        # All strings share segment ordinal 1 (their first segment) with the
        # probe at position 0.
        layout = segment_layout(len(candidates[0].text), tau)
        seg_start, seg_len = layout[0]
        context = MatchContext(ordinal=1, probe_start=0, seg_start=seg_start,
                               seg_length=seg_len)
        shared_stats = JoinStatistics()
        plain_stats = JoinStatistics()
        SharePrefixExtensionVerifier(tau, shared_stats).verify_candidates(
            probe, candidates, context)
        ExtensionVerifier(tau, plain_stats).verify_candidates(
            probe, candidates, context)
        assert shared_stats.num_matrix_cells < plain_stats.num_matrix_cells

    def test_empty_candidate_list_builds_no_prefix_verifiers(self, monkeypatch):
        """Regression: the left/right SharedPrefixVerifier pair used to be
        constructed before the empty-list check, charging every empty
        inverted list the setup cost for zero verifications."""
        import repro.core.verify as verify_module

        constructed = []
        original = verify_module.SharedPrefixVerifier

        def counting(*args, **kwargs):
            constructed.append(args)
            return original(*args, **kwargs)

        monkeypatch.setattr(verify_module, "SharedPrefixVerifier", counting)
        tau = 2
        context = MatchContext(ordinal=1, probe_start=0, seg_start=0,
                               seg_length=2)
        stats = JoinStatistics()
        verifier = SharePrefixExtensionVerifier(tau, stats)
        assert verifier.verify_candidates("abcdef", [], context) == []
        # Out-of-range ordinal (tau_right < 0) with a non-empty list must
        # bail out just as cheaply.
        far_context = MatchContext(ordinal=tau + 2, probe_start=0,
                                   seg_start=0, seg_length=2)
        assert verifier.verify_candidates(
            "abcdef", [StringRecord(id=0, text="abcdef")], far_context) == []
        assert constructed == []
        assert stats.num_matrix_cells == 0
        assert stats.num_verifications == 0
