"""Property-based tests (hypothesis) for the edit-distance kernels."""

from hypothesis import given, settings, strategies as st

from repro.distance.banded import banded_edit_distance, length_aware_edit_distance
from repro.distance.levenshtein import edit_distance
from repro.distance.myers import myers_edit_distance
from repro.distance.shared_prefix import SharedPrefixVerifier

short_text = st.text(alphabet="abcXYZ ", max_size=18)
taus = st.integers(min_value=0, max_value=5)


@given(a=short_text, b=short_text)
@settings(max_examples=200, deadline=None)
def test_edit_distance_is_a_metric(a, b):
    distance = edit_distance(a, b)
    assert distance >= 0
    assert (distance == 0) == (a == b)
    assert distance == edit_distance(b, a)
    # Upper and lower bounds of the metric.
    assert distance <= max(len(a), len(b))
    assert distance >= abs(len(a) - len(b))


@given(a=short_text, b=short_text, c=short_text)
@settings(max_examples=100, deadline=None)
def test_edit_distance_triangle_inequality(a, b, c):
    assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)


@given(a=short_text, b=short_text, tau=taus)
@settings(max_examples=300, deadline=None)
def test_banded_kernel_matches_exact(a, b, tau):
    exact = edit_distance(a, b)
    expected = exact if exact <= tau else tau + 1
    assert banded_edit_distance(a, b, tau) == expected


@given(a=short_text, b=short_text, tau=taus)
@settings(max_examples=300, deadline=None)
def test_length_aware_kernel_matches_exact(a, b, tau):
    exact = edit_distance(a, b)
    expected = exact if exact <= tau else tau + 1
    assert length_aware_edit_distance(a, b, tau) == expected


@given(a=short_text, b=short_text)
@settings(max_examples=200, deadline=None)
def test_myers_matches_exact(a, b):
    assert myers_edit_distance(a, b) == edit_distance(a, b)


@given(probe=short_text, texts=st.lists(short_text, min_size=1, max_size=15),
       tau=taus)
@settings(max_examples=150, deadline=None)
def test_shared_prefix_verifier_matches_exact_in_any_order(probe, texts, tau):
    verifier = SharedPrefixVerifier(probe, tau)
    for text in sorted(texts):
        exact = edit_distance(text, probe)
        expected = exact if exact <= tau else tau + 1
        assert verifier.distance(text) == expected


@given(a=short_text, b=short_text, tau=taus)
@settings(max_examples=150, deadline=None)
def test_concatenation_is_additive_upper_bound(a, b, tau):
    """ed(a+x, b+y) <= ed(a, b) + ed(x, y) — the extension-verification bound."""
    x, y = "suffix", "suffxi"
    assert edit_distance(a + x, b + y) <= edit_distance(a, b) + edit_distance(x, y)
