"""Property-based tests (hypothesis) for the Pass-Join framework.

The headline property is completeness + correctness (Theorem 6): for any
collection of strings and any threshold, Pass-Join returns exactly the
brute-force result, whatever selection/verification strategy is configured.
"""

from hypothesis import given, settings, strategies as st

from repro import JoinConfig, SelectionMethod, VerificationMethod, pass_join
from repro.core.partition import partition, segment_layout
from repro.core.selection import make_selector
from repro.distance import edit_distance

from helpers import brute_force_pairs

# Small alphabets maximise collisions, which is what stresses the filters.
texts = st.text(alphabet="abC ", min_size=0, max_size=14)
collections = st.lists(texts, min_size=0, max_size=25)
taus = st.integers(min_value=0, max_value=4)


@given(strings=collections, tau=taus)
@settings(max_examples=120, deadline=None)
def test_pass_join_equals_brute_force(strings, tau):
    truth = brute_force_pairs(strings, tau)
    result = pass_join(strings, tau)
    assert result.pair_ids() == set(truth)
    for pair in result:
        assert pair.distance == truth[pair.ids()]


@given(strings=collections, tau=st.integers(min_value=0, max_value=3),
       selection=st.sampled_from(list(SelectionMethod)),
       verification=st.sampled_from(list(VerificationMethod)))
@settings(max_examples=120, deadline=None)
def test_all_configurations_equal_brute_force(strings, tau, selection, verification):
    truth = set(brute_force_pairs(strings, tau))
    config = JoinConfig(selection=selection, verification=verification)
    assert pass_join(strings, tau, config).pair_ids() == truth


@given(strings=st.lists(texts, min_size=0, max_size=20), tau=taus)
@settings(max_examples=80, deadline=None)
def test_join_results_do_not_depend_on_input_order(strings, tau):
    forward = pass_join(strings, tau).pair_ids()
    reordered = list(reversed(strings))
    # Map ids of the reversed run back to the original positions.
    remap = {i: len(strings) - 1 - i for i in range(len(strings))}
    backward = {tuple(sorted((remap[a], remap[b])))
                for a, b in pass_join(reordered, tau).pair_ids()}
    assert forward == backward


@given(strings=collections, tau=st.integers(min_value=0, max_value=3))
@settings(max_examples=60, deadline=None)
def test_results_grow_monotonically_with_tau(strings, tau):
    smaller = pass_join(strings, tau).pair_ids()
    larger = pass_join(strings, tau + 1).pair_ids()
    assert smaller <= larger


# ----------------------------------------------------------------------
# Selection completeness (Definition 2 / Theorems 1-2) as a direct property:
# whenever ed(r, s) <= tau, some selected substring of s equals a segment of
# r at the segment's ordinal.
# ----------------------------------------------------------------------
@given(r=st.text(alphabet="abC", min_size=1, max_size=14),
       s=st.text(alphabet="abC", min_size=1, max_size=14),
       tau=st.integers(min_value=0, max_value=4),
       method=st.sampled_from([SelectionMethod.POSITION, SelectionMethod.MULTI_MATCH,
                               SelectionMethod.SHIFT, SelectionMethod.LENGTH]))
@settings(max_examples=400, deadline=None)
def test_selection_completeness(r, s, tau, method):
    if len(r) < tau + 1 or len(r) > len(s) or len(s) - len(r) > tau:
        return  # outside the framework's indexed/probe length relationship
    if edit_distance(r, s) > tau:
        return
    segments = partition(r, tau)
    layout = segment_layout(len(r), tau)
    selector = make_selector(method, tau)
    selected = selector.select(s, len(r), layout)
    hit = any(selection.text == segments[selection.ordinal - 1].text
              for selection in selected)
    assert hit, (r, s, tau, method)


@given(s=st.text(alphabet="ab", min_size=2, max_size=16),
       length=st.integers(min_value=2, max_value=16),
       tau=st.integers(min_value=0, max_value=4))
@settings(max_examples=300, deadline=None)
def test_multi_match_selects_fewest_substrings(s, length, tau):
    if length < tau + 1 or length > len(s) or len(s) - length > tau:
        return
    layout = segment_layout(length, tau)
    counts = {method: make_selector(method, tau).count(len(s), length, layout)
              for method in SelectionMethod}
    assert counts[SelectionMethod.MULTI_MATCH] <= counts[SelectionMethod.POSITION]
    assert counts[SelectionMethod.POSITION] <= counts[SelectionMethod.SHIFT]
    assert counts[SelectionMethod.SHIFT] <= counts[SelectionMethod.LENGTH]
