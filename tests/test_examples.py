"""Smoke tests: every example script runs end-to-end on a small input."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True, text=True, timeout=300, check=False)


def test_examples_directory_is_complete():
    names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert {"quickstart.py", "author_deduplication.py", "query_log_analysis.py",
            "long_title_join.py", "entity_lookup_service.py"} <= names


def test_quickstart_runs_and_prints_paper_answer():
    completed = _run("quickstart.py")
    assert completed.returncode == 0, completed.stderr
    assert "kaushik chakrab" in completed.stdout
    assert "vldb" in completed.stdout


def test_author_deduplication_runs():
    completed = _run("author_deduplication.py", "400")
    assert completed.returncode == 0, completed.stderr
    assert "duplicate clusters" in completed.stdout


def test_query_log_analysis_runs():
    completed = _run("query_log_analysis.py", "200")
    assert completed.returncode == 0, completed.stderr
    assert "multi-match" in completed.stdout


def test_long_title_join_runs():
    completed = _run("long_title_join.py", "120")
    assert completed.returncode == 0, completed.stderr
    assert "planted matches recovered" in completed.stdout


def test_entity_lookup_service_runs():
    completed = _run("entity_lookup_service.py", "600", "40")
    assert completed.returncode == 0, completed.stderr
    assert "speed-up" in completed.stdout


@pytest.mark.parametrize("script", sorted(
    path.name for path in EXAMPLES_DIR.glob("*.py")))
def test_examples_have_module_docstrings(script):
    source = (EXAMPLES_DIR / script).read_text(encoding="utf-8")
    assert '"""' in source.split("\n", 3)[1] or source.lstrip().startswith('#!'), script
