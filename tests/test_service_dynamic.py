"""Tests for the dynamic (mutable) search index of the serving layer.

The load-bearing property: after ANY interleaving of insert/delete/search,
results are identical — element for element — to a fresh
``PassJoinSearcher`` built over the surviving records, which is itself
oracle-checked against brute-force edit distance.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.engine import probe_record
from repro.core.index import SegmentIndex
from repro.core.verify import make_verifier
from repro.distance import edit_distance
from repro.exceptions import InvalidThresholdError
from repro.search import PassJoinSearcher, SearchMatch
from repro.service import DynamicSearcher
from repro.types import JoinStatistics, StringRecord

from helpers import random_strings


def fresh_equivalent(searcher: DynamicSearcher) -> PassJoinSearcher:
    """Re-build a static searcher over the surviving records."""
    return PassJoinSearcher(searcher.records, max_tau=searcher.max_tau)


class TestBasics:
    def test_insert_search_delete_cycle(self):
        searcher = DynamicSearcher(["vldb", "sigmod"], max_tau=1)
        new_id = searcher.insert("pvldb")
        assert new_id == 2
        assert [m.text for m in searcher.search("vldb", tau=1)] == ["vldb", "pvldb"]
        assert searcher.delete(0) is True
        assert [m.text for m in searcher.search("vldb", tau=1)] == ["pvldb"]

    def test_delete_missing_returns_false(self):
        searcher = DynamicSearcher(["abc"], max_tau=1)
        assert searcher.delete(99) is False
        assert searcher.delete(0) is True
        assert searcher.delete(0) is False

    def test_epoch_moves_on_every_mutation(self):
        searcher = DynamicSearcher(["abc"], max_tau=1)
        epochs = [searcher.epoch]
        searcher.insert("abd")
        epochs.append(searcher.epoch)
        searcher.delete(0)
        epochs.append(searcher.epoch)
        assert epochs == sorted(set(epochs))  # strictly increasing

    def test_searches_do_not_move_the_epoch(self):
        searcher = DynamicSearcher(["abc", "abd"], max_tau=1)
        before = searcher.epoch
        searcher.search("abc", tau=1)
        searcher.search_top_k("abc", k=1)
        assert searcher.epoch == before

    def test_caller_chosen_ids(self):
        searcher = DynamicSearcher(max_tau=1)
        assert searcher.insert("alpha", id=500) == 500
        assert searcher.insert("alphb") == 501  # auto ids continue above
        with pytest.raises(ValueError):
            searcher.insert("clash", id=500)

    def test_string_records_keep_their_ids(self):
        searcher = DynamicSearcher([StringRecord(7, "alpha")], max_tau=1)
        assert searcher.insert(StringRecord(3, "alphb")) == 3
        assert {m.id for m in searcher.search("alpha", tau=1)} == {7, 3}

    def test_duplicate_initial_ids_rejected(self):
        # The loser of a duplicate would linger as a searchable ghost in
        # the index/short pool; reject it up front, like the shard router.
        with pytest.raises(ValueError):
            DynamicSearcher([StringRecord(0, "ab"), StringRecord(0, "abcdef")],
                            max_tau=1)

    def test_short_strings_are_dynamic_too(self):
        searcher = DynamicSearcher(["a", "ab", "abcdef"], max_tau=3)
        assert searcher.delete(0) is True
        assert {m.text for m in searcher.search("ab", tau=1)} == {"ab"}
        searcher.insert("b")
        assert {m.text for m in searcher.search("b", tau=1)} == {"ab", "b"}

    def test_tau_above_max_rejected(self):
        searcher = DynamicSearcher(["abc"], max_tau=1)
        with pytest.raises(InvalidThresholdError):
            searcher.search("abc", tau=2)

    def test_invalid_k(self):
        searcher = DynamicSearcher(["abc"], max_tau=1)
        with pytest.raises(ValueError):
            searcher.search_top_k("abc", k=0)

    def test_len_and_records(self):
        searcher = DynamicSearcher(["aa", "bb"], max_tau=1)
        searcher.delete(0)
        searcher.insert("cc")
        assert len(searcher) == 2
        assert [record.text for record in searcher.records] == ["bb", "cc"]

    def test_num_strings_tracks_the_live_collection(self):
        searcher = DynamicSearcher(["aa", "bb", "cc"], max_tau=1)
        searcher.delete(0)
        searcher.delete(99)  # miss: must not change the count
        searcher.insert("dd")
        assert searcher.statistics.num_strings == len(searcher) == 3


class TestTombstonesAndCompaction:
    def test_deleted_record_stays_in_index_until_compaction(self):
        searcher = DynamicSearcher(["abcdef", "abcdeg"], max_tau=1,
                                   compact_interval=100)
        searcher.delete(0)
        assert searcher.tombstone_count == 1
        assert [m.id for m in searcher.search("abcdef", tau=1)] == [1]

    def test_manual_compaction_purges_postings(self):
        searcher = DynamicSearcher(["abcdef", "abcdeg", "xyzxyz"], max_tau=1,
                                   compact_interval=100)
        searcher.delete(0)
        searcher.delete(2)
        assert searcher.compact() == 2
        assert searcher.tombstone_count == 0
        fresh = fresh_equivalent(searcher)
        assert (searcher.statistics.index_entries
                == fresh.statistics.index_entries)
        assert [m.id for m in searcher.search("abcdef", tau=1)] == [1]

    def test_auto_compaction_triggers_at_interval(self):
        strings = [f"string{i:04d}" for i in range(10)]
        searcher = DynamicSearcher(strings, max_tau=1, compact_interval=3)
        for record_id in range(4):
            searcher.delete(record_id)
        assert searcher.tombstone_count <= 3

    def test_compact_interval_zero_compacts_every_delete(self):
        searcher = DynamicSearcher(["abcdef", "abcdeg"], max_tau=1,
                                   compact_interval=0)
        searcher.delete(0)
        assert searcher.tombstone_count == 0

    def test_reusing_a_tombstoned_id_purges_the_old_record(self):
        searcher = DynamicSearcher(["abcdef"], max_tau=1, compact_interval=100)
        searcher.delete(0)
        searcher.insert("qrstuv", id=0)
        assert [m.text for m in searcher.search("abcdef", tau=1)] == []
        assert [m.text for m in searcher.search("qrstuv", tau=0)] == ["qrstuv"]

    def test_negative_compact_interval_rejected(self):
        with pytest.raises(ValueError):
            DynamicSearcher(max_tau=1, compact_interval=-1)

    def test_compact_that_purges_bumps_the_epoch(self):
        # Regression: compact() used to leave the epoch untouched, letting
        # the query cache outlive a physical index change.
        searcher = DynamicSearcher(["abcdef", "abcdeg"], max_tau=1,
                                   compact_interval=100)
        searcher.delete(0)
        before = searcher.epoch
        assert searcher.compact() == 1
        assert searcher.epoch == before + 1

    def test_noop_compact_leaves_the_epoch(self):
        searcher = DynamicSearcher(["abcdef"], max_tau=1)
        before = searcher.epoch
        assert searcher.compact() == 0
        assert searcher.epoch == before


def _probe_with_verifier(searcher: DynamicSearcher, query: str, tau: int,
                         method: str) -> list[tuple[int, int]]:
    """Run the search pipeline over the dynamic index with a chosen verifier."""
    stats = JoinStatistics()
    verifier = make_verifier(method, tau, stats)
    tombstones = searcher._tombstones
    matches = probe_record(
        StringRecord(id=-1, text=query), tau=tau, index=searcher._index,
        short_pool=list(searcher._short_pool.values()),
        selector=searcher._selector, verifier=verifier, stats=stats,
        max_length=len(query) + tau, allow_same_id=True,
        accept=(None if not tombstones
                else lambda record_id: record_id not in tombstones))
    return sorted((record.id, distance) for record, distance in matches)


class TestSortedPostingInvariant:
    def _mutated_searcher(self) -> DynamicSearcher:
        strings = random_strings(80, 4, 12, alphabet="abc", seed=13)
        rng = random.Random(13)
        rng.shuffle(strings)
        searcher = DynamicSearcher(max_tau=2, compact_interval=100)
        for text in strings:
            searcher.insert(text)
        for record_id in (3, 11, 42, 60):
            searcher.delete(record_id)
        return searcher

    def test_inverted_lists_stay_sorted_under_out_of_order_inserts(self):
        # Regression: insert() used to append, breaking the alphabetical
        # posting order the share-prefix verifier exploits.
        searcher = self._mutated_searcher()
        searcher.compact()
        store = searcher._index.store
        lists_checked = 0
        for per_length in searcher._index._indices.values():
            for per_ordinal in per_length.values():
                for postings in per_ordinal.values():
                    keys = [store.sort_key(row) for row in postings]
                    assert keys == sorted(keys)
                    lists_checked += 1
        assert lists_checked > 0

    @pytest.mark.parametrize("tau", [0, 1, 2])
    def test_share_prefix_matches_extension_on_mutated_index(self, tau):
        searcher = self._mutated_searcher()
        for query in random_strings(10, 4, 12, alphabet="abc", seed=14):
            share = _probe_with_verifier(searcher, query, tau, "share-prefix")
            extension = _probe_with_verifier(searcher, query, tau, "extension")
            assert share == extension


class TestTopKWidening:
    def test_num_results_counted_once(self):
        # Regression: every widening round used to re-count its matches.
        searcher = DynamicSearcher(["abcd", "abce"], max_tau=2)
        before = searcher.statistics.num_results
        result = searcher.search_top_k("abcd", k=5)
        assert [m.text for m in result] == ["abcd", "abce"]
        assert searcher.statistics.num_results == before + 2

    def test_skips_taus_outside_every_live_length(self):
        searcher = DynamicSearcher(["abcdefgh"], max_tau=2)
        probes_before = searcher.statistics.num_index_probes
        assert searcher.search_top_k("x", k=1) == []
        assert searcher.statistics.num_index_probes == probes_before
        assert searcher.statistics.num_verifications == 0

    def test_stops_widening_once_every_live_record_matched(self):
        searcher = DynamicSearcher(["aaaa"], max_tau=2)
        fresh = DynamicSearcher(["aaaa"], max_tau=2)
        result = searcher.search_top_k("aaaa", k=3)
        assert result == fresh.search("aaaa", tau=0)
        # Only the tau=0 round ran: identical selection work to one search.
        assert (searcher.statistics.num_selected_substrings
                == fresh.statistics.num_selected_substrings)

    def test_widening_does_not_reverify_earlier_hits(self):
        strings = ["abcd", "abce", "abff", "azzz"]
        searcher = DynamicSearcher(strings, max_tau=2)
        searcher.search_top_k("abcd", k=len(strings))
        widened = searcher.statistics.num_verifications
        # An upper bound witness: one full search at the final threshold
        # verifies every candidate once; incremental widening may verify a
        # record at most once across all rounds, so it can at worst match
        # the per-round sum of candidates *excluding* earlier hits.
        oracle = DynamicSearcher(strings, max_tau=2)
        oracle.search("abcd", 0)
        oracle.search("abcd", 1)
        oracle.search("abcd", 2)
        assert widened <= oracle.statistics.num_verifications


class TestSegmentIndexRemove:
    def test_remove_reverses_add(self):
        index = SegmentIndex(tau=1)
        records = [StringRecord(0, "abcdef"), StringRecord(1, "abcdeg")]
        for record in records:
            index.add(record)
        entries_with_both = index.entry_count()
        assert index.remove(records[0]) == 2  # tau + 1 segments
        assert index.entry_count() == entries_with_both - 2
        assert index.current_entry_count == index.entry_count()
        assert index.current_approximate_bytes == index.approximate_bytes()
        assert index.records_with_length(6) == 1

    def test_remove_last_record_of_a_length_drops_the_group(self):
        index = SegmentIndex(tau=1)
        record = StringRecord(0, "abcdef")
        index.add(record)
        index.remove(record)
        assert not index.has_length(6)
        assert index.entry_count() == 0
        assert index.current_entry_count == 0
        assert index.current_approximate_bytes == 0

    def test_remove_unindexed_record_is_a_noop(self):
        index = SegmentIndex(tau=2)
        index.add(StringRecord(0, "abcdef"))
        before = index.entry_count()
        assert index.remove(StringRecord(9, "zzzzzz")) == 0
        assert index.remove(StringRecord(9, "zz")) == 0  # too short
        assert index.entry_count() == before

    def test_no_empty_buckets_survive_removal(self):
        # Regression: remove() used to leave empty per-ordinal dicts (and
        # could leave empty segment buckets) behind after their last key
        # was deleted, leaking dict shells in long-lived dynamic indices.
        index = SegmentIndex(tau=2)
        records = [StringRecord(i, text) for i, text in enumerate(
            ["abcdef", "abcxyz", "qwerty", "qwertz", "zzzzzz"])]
        for record in records:
            index.add(record)
        for record in records[:-1]:
            index.remove(record)
            for per_length in index._indices.values():
                assert per_length, "empty length group left behind"
                for per_ordinal in per_length.values():
                    assert per_ordinal, "empty per-ordinal dict left behind"
                    for postings in per_ordinal.values():
                        assert len(postings) > 0, "empty posting list"
        index.remove(records[-1])
        assert index._indices == {}

    def test_no_empty_buckets_after_full_compaction(self):
        searcher = DynamicSearcher(max_tau=2, compact_interval=1000)
        for text in random_strings(40, 3, 12, alphabet="ab", seed=21):
            searcher.insert(text)
        for record_id in range(0, 40, 2):
            searcher.delete(record_id)
        searcher.compact()
        for per_length in searcher._index._indices.values():
            assert per_length
            for per_ordinal in per_length.values():
                assert per_ordinal
                for postings in per_ordinal.values():
                    assert len(postings) > 0
        # The store shrank with the purge: only live records hold rows.
        assert searcher._index.store.live_count == len(searcher)


def apply_ops(ops, max_tau, compact_interval=4):
    """Drive a DynamicSearcher and a plain dict of survivors in lockstep."""
    searcher = DynamicSearcher(max_tau=max_tau,
                               compact_interval=compact_interval)
    surviving: dict[int, str] = {}
    for op in ops:
        if op[0] == "insert":
            new_id = searcher.insert(op[1])
            surviving[new_id] = op[1]
        elif op[0] == "delete":
            target = op[1] % (max(surviving) + 1) if surviving else 0
            assert searcher.delete(target) == (target in surviving)
            surviving.pop(target, None)
    return searcher, surviving


class TestOracle:
    def test_scripted_interleaving_matches_fresh_rebuild(self):
        strings = random_strings(60, 2, 12, alphabet="abc", seed=3)
        searcher = DynamicSearcher(strings[:40], max_tau=2)
        for record_id in (0, 7, 13, 39):
            searcher.delete(record_id)
        for text in strings[40:]:
            searcher.insert(text)
        searcher.delete(45)
        fresh = fresh_equivalent(searcher)
        for query in random_strings(15, 2, 12, alphabet="abc", seed=4):
            assert searcher.search(query, tau=2) == fresh.search(query, tau=2)
            assert (searcher.search_top_k(query, k=3)
                    == fresh.search_top_k(query, k=3))

    @given(ops=st.lists(
        st.one_of(
            st.tuples(st.just("insert"), st.text(alphabet="ab", max_size=8)),
            st.tuples(st.just("delete"), st.integers(min_value=0, max_value=30)),
        ), max_size=25),
        queries=st.lists(st.text(alphabet="ab", max_size=8), min_size=1,
                         max_size=5),
        max_tau=st.integers(min_value=0, max_value=3))
    @settings(max_examples=120, deadline=None)
    def test_interleaved_ops_match_brute_force(self, ops, queries, max_tau):
        searcher, surviving = apply_ops(ops, max_tau)
        for query in queries:
            expected = sorted(
                (SearchMatch(edit_distance(text, query), record_id, text)
                 for record_id, text in surviving.items()
                 if edit_distance(text, query) <= max_tau),
                key=SearchMatch.sort_key)
            assert searcher.search(query) == expected

    @given(ops=st.lists(
        st.one_of(
            st.tuples(st.just("insert"), st.text(alphabet="abc", max_size=7)),
            st.tuples(st.just("delete"), st.integers(min_value=0, max_value=20)),
        ), max_size=20),
        query=st.text(alphabet="abc", max_size=7),
        k=st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_interleaved_top_k_matches_fresh_rebuild(self, ops, query, k):
        searcher, _ = apply_ops(ops, max_tau=2)
        fresh = fresh_equivalent(searcher)
        assert searcher.search_top_k(query, k) == fresh.search_top_k(query, k)
