"""Tests for the dynamic (mutable) search index of the serving layer.

The load-bearing property: after ANY interleaving of insert/delete/search,
results are identical — element for element — to a fresh
``PassJoinSearcher`` built over the surviving records, which is itself
oracle-checked against brute-force edit distance.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.index import SegmentIndex
from repro.distance import edit_distance
from repro.exceptions import InvalidThresholdError
from repro.search import PassJoinSearcher, SearchMatch
from repro.service import DynamicSearcher
from repro.types import StringRecord

from helpers import random_strings


def fresh_equivalent(searcher: DynamicSearcher) -> PassJoinSearcher:
    """Re-build a static searcher over the surviving records."""
    return PassJoinSearcher(searcher.records, max_tau=searcher.max_tau)


class TestBasics:
    def test_insert_search_delete_cycle(self):
        searcher = DynamicSearcher(["vldb", "sigmod"], max_tau=1)
        new_id = searcher.insert("pvldb")
        assert new_id == 2
        assert [m.text for m in searcher.search("vldb", tau=1)] == ["vldb", "pvldb"]
        assert searcher.delete(0) is True
        assert [m.text for m in searcher.search("vldb", tau=1)] == ["pvldb"]

    def test_delete_missing_returns_false(self):
        searcher = DynamicSearcher(["abc"], max_tau=1)
        assert searcher.delete(99) is False
        assert searcher.delete(0) is True
        assert searcher.delete(0) is False

    def test_epoch_moves_on_every_mutation(self):
        searcher = DynamicSearcher(["abc"], max_tau=1)
        epochs = [searcher.epoch]
        searcher.insert("abd")
        epochs.append(searcher.epoch)
        searcher.delete(0)
        epochs.append(searcher.epoch)
        assert epochs == sorted(set(epochs))  # strictly increasing

    def test_searches_do_not_move_the_epoch(self):
        searcher = DynamicSearcher(["abc", "abd"], max_tau=1)
        before = searcher.epoch
        searcher.search("abc", tau=1)
        searcher.search_top_k("abc", k=1)
        assert searcher.epoch == before

    def test_caller_chosen_ids(self):
        searcher = DynamicSearcher(max_tau=1)
        assert searcher.insert("alpha", id=500) == 500
        assert searcher.insert("alphb") == 501  # auto ids continue above
        with pytest.raises(ValueError):
            searcher.insert("clash", id=500)

    def test_string_records_keep_their_ids(self):
        searcher = DynamicSearcher([StringRecord(7, "alpha")], max_tau=1)
        assert searcher.insert(StringRecord(3, "alphb")) == 3
        assert {m.id for m in searcher.search("alpha", tau=1)} == {7, 3}

    def test_short_strings_are_dynamic_too(self):
        searcher = DynamicSearcher(["a", "ab", "abcdef"], max_tau=3)
        assert searcher.delete(0) is True
        assert {m.text for m in searcher.search("ab", tau=1)} == {"ab"}
        searcher.insert("b")
        assert {m.text for m in searcher.search("b", tau=1)} == {"ab", "b"}

    def test_tau_above_max_rejected(self):
        searcher = DynamicSearcher(["abc"], max_tau=1)
        with pytest.raises(InvalidThresholdError):
            searcher.search("abc", tau=2)

    def test_invalid_k(self):
        searcher = DynamicSearcher(["abc"], max_tau=1)
        with pytest.raises(ValueError):
            searcher.search_top_k("abc", k=0)

    def test_len_and_records(self):
        searcher = DynamicSearcher(["aa", "bb"], max_tau=1)
        searcher.delete(0)
        searcher.insert("cc")
        assert len(searcher) == 2
        assert [record.text for record in searcher.records] == ["bb", "cc"]

    def test_num_strings_tracks_the_live_collection(self):
        searcher = DynamicSearcher(["aa", "bb", "cc"], max_tau=1)
        searcher.delete(0)
        searcher.delete(99)  # miss: must not change the count
        searcher.insert("dd")
        assert searcher.statistics.num_strings == len(searcher) == 3


class TestTombstonesAndCompaction:
    def test_deleted_record_stays_in_index_until_compaction(self):
        searcher = DynamicSearcher(["abcdef", "abcdeg"], max_tau=1,
                                   compact_interval=100)
        searcher.delete(0)
        assert searcher.tombstone_count == 1
        assert [m.id for m in searcher.search("abcdef", tau=1)] == [1]

    def test_manual_compaction_purges_postings(self):
        searcher = DynamicSearcher(["abcdef", "abcdeg", "xyzxyz"], max_tau=1,
                                   compact_interval=100)
        searcher.delete(0)
        searcher.delete(2)
        assert searcher.compact() == 2
        assert searcher.tombstone_count == 0
        fresh = fresh_equivalent(searcher)
        assert (searcher.statistics.index_entries
                == fresh.statistics.index_entries)
        assert [m.id for m in searcher.search("abcdef", tau=1)] == [1]

    def test_auto_compaction_triggers_at_interval(self):
        strings = [f"string{i:04d}" for i in range(10)]
        searcher = DynamicSearcher(strings, max_tau=1, compact_interval=3)
        for record_id in range(4):
            searcher.delete(record_id)
        assert searcher.tombstone_count <= 3

    def test_compact_interval_zero_compacts_every_delete(self):
        searcher = DynamicSearcher(["abcdef", "abcdeg"], max_tau=1,
                                   compact_interval=0)
        searcher.delete(0)
        assert searcher.tombstone_count == 0

    def test_reusing_a_tombstoned_id_purges_the_old_record(self):
        searcher = DynamicSearcher(["abcdef"], max_tau=1, compact_interval=100)
        searcher.delete(0)
        searcher.insert("qrstuv", id=0)
        assert [m.text for m in searcher.search("abcdef", tau=1)] == []
        assert [m.text for m in searcher.search("qrstuv", tau=0)] == ["qrstuv"]

    def test_negative_compact_interval_rejected(self):
        with pytest.raises(ValueError):
            DynamicSearcher(max_tau=1, compact_interval=-1)


class TestSegmentIndexRemove:
    def test_remove_reverses_add(self):
        index = SegmentIndex(tau=1)
        records = [StringRecord(0, "abcdef"), StringRecord(1, "abcdeg")]
        for record in records:
            index.add(record)
        entries_with_both = index.entry_count()
        assert index.remove(records[0]) == 2  # tau + 1 segments
        assert index.entry_count() == entries_with_both - 2
        assert index.current_entry_count == index.entry_count()
        assert index.current_approximate_bytes == index.approximate_bytes()
        assert index.records_with_length(6) == 1

    def test_remove_last_record_of_a_length_drops_the_group(self):
        index = SegmentIndex(tau=1)
        record = StringRecord(0, "abcdef")
        index.add(record)
        index.remove(record)
        assert not index.has_length(6)
        assert index.entry_count() == 0
        assert index.current_entry_count == 0
        assert index.current_approximate_bytes == 0

    def test_remove_unindexed_record_is_a_noop(self):
        index = SegmentIndex(tau=2)
        index.add(StringRecord(0, "abcdef"))
        before = index.entry_count()
        assert index.remove(StringRecord(9, "zzzzzz")) == 0
        assert index.remove(StringRecord(9, "zz")) == 0  # too short
        assert index.entry_count() == before


def apply_ops(ops, max_tau, compact_interval=4):
    """Drive a DynamicSearcher and a plain dict of survivors in lockstep."""
    searcher = DynamicSearcher(max_tau=max_tau,
                               compact_interval=compact_interval)
    surviving: dict[int, str] = {}
    for op in ops:
        if op[0] == "insert":
            new_id = searcher.insert(op[1])
            surviving[new_id] = op[1]
        elif op[0] == "delete":
            target = op[1] % (max(surviving) + 1) if surviving else 0
            assert searcher.delete(target) == (target in surviving)
            surviving.pop(target, None)
    return searcher, surviving


class TestOracle:
    def test_scripted_interleaving_matches_fresh_rebuild(self):
        strings = random_strings(60, 2, 12, alphabet="abc", seed=3)
        searcher = DynamicSearcher(strings[:40], max_tau=2)
        for record_id in (0, 7, 13, 39):
            searcher.delete(record_id)
        for text in strings[40:]:
            searcher.insert(text)
        searcher.delete(45)
        fresh = fresh_equivalent(searcher)
        for query in random_strings(15, 2, 12, alphabet="abc", seed=4):
            assert searcher.search(query, tau=2) == fresh.search(query, tau=2)
            assert (searcher.search_top_k(query, k=3)
                    == fresh.search_top_k(query, k=3))

    @given(ops=st.lists(
        st.one_of(
            st.tuples(st.just("insert"), st.text(alphabet="ab", max_size=8)),
            st.tuples(st.just("delete"), st.integers(min_value=0, max_value=30)),
        ), max_size=25),
        queries=st.lists(st.text(alphabet="ab", max_size=8), min_size=1,
                         max_size=5),
        max_tau=st.integers(min_value=0, max_value=3))
    @settings(max_examples=120, deadline=None)
    def test_interleaved_ops_match_brute_force(self, ops, queries, max_tau):
        searcher, surviving = apply_ops(ops, max_tau)
        for query in queries:
            expected = sorted(
                (SearchMatch(edit_distance(text, query), record_id, text)
                 for record_id, text in surviving.items()
                 if edit_distance(text, query) <= max_tau),
                key=SearchMatch.sort_key)
            assert searcher.search(query) == expected

    @given(ops=st.lists(
        st.one_of(
            st.tuples(st.just("insert"), st.text(alphabet="abc", max_size=7)),
            st.tuples(st.just("delete"), st.integers(min_value=0, max_value=20)),
        ), max_size=20),
        query=st.text(alphabet="abc", max_size=7),
        k=st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_interleaved_top_k_matches_fresh_rebuild(self, ops, query, k):
        searcher, _ = apply_ops(ops, max_tau=2)
        fresh = fresh_equivalent(searcher)
        assert searcher.search_top_k(query, k) == fresh.search_top_k(query, k)
