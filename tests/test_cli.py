"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.datasets import save_strings


@pytest.fixture
def strings_file(tmp_path):
    path = tmp_path / "strings.txt"
    save_strings(path, ["vldb", "pvldb", "sigmod", "sigmmod", "icde"])
    return path


@pytest.fixture
def right_file(tmp_path):
    path = tmp_path / "right.txt"
    save_strings(path, ["vldb journal", "pvldb", "edbt"])
    return path


class TestJoinCommand:
    def test_self_join_prints_pairs_and_summary(self, strings_file, capsys):
        assert main(["join", str(strings_file), "--tau", "1"]) == 0
        captured = capsys.readouterr()
        assert "vldb\tpvldb" in captured.out
        assert "sigmod\tsigmmod" in captured.out
        assert "pairs=2" in captured.err

    def test_quiet_suppresses_pairs(self, strings_file, capsys):
        assert main(["join", str(strings_file), "--tau", "1", "--quiet"]) == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "pairs=2" in captured.err

    def test_rs_join(self, strings_file, right_file, capsys):
        assert main(["join", str(strings_file), "--right", str(right_file),
                     "--tau", "1"]) == 0
        captured = capsys.readouterr()
        assert "vldb\tpvldb" in captured.out

    @pytest.mark.parametrize("algorithm", ["pass-join", "ed-join", "trie-join", "naive"])
    def test_every_algorithm_gives_same_answer(self, strings_file, capsys, algorithm):
        assert main(["join", str(strings_file), "--tau", "1",
                     "--algorithm", algorithm]) == 0
        captured = capsys.readouterr()
        assert "pairs=2" in captured.err

    def test_missing_file_reports_error(self, tmp_path, capsys):
        code = main(["join", str(tmp_path / "nope.txt"), "--tau", "1"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_rs_join_unsupported_algorithm(self, strings_file, right_file, capsys):
        code = main(["join", str(strings_file), "--right", str(right_file),
                     "--tau", "1", "--algorithm", "trie-join"])
        assert code == 2

    def test_selection_and_verification_flags(self, strings_file, capsys):
        assert main(["join", str(strings_file), "--tau", "2",
                     "--selection", "position", "--verification", "extension",
                     "--quiet"]) == 0


class TestWorkersFlag:
    """Golden regression tests for the parallel engine's CLI surface."""

    def test_workers_round_trip_identical_output(self, strings_file, capsys):
        assert main(["join", str(strings_file), "--tau", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(["join", str(strings_file), "--tau", "1",
                     "--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_workers_output_is_deterministic_and_sorted(self, strings_file,
                                                        capsys):
        outputs = []
        for _ in range(2):
            assert main(["join", str(strings_file), "--tau", "1",
                         "--workers", "2", "--chunk-size", "1"]) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
        ids = [tuple(map(int, line.split("\t")[:2]))
               for line in outputs[0].splitlines()]
        assert ids == sorted(ids)
        assert ids == [(0, 1), (2, 3)]

    def test_workers_zero_means_all_cpus(self, strings_file, capsys):
        assert main(["join", str(strings_file), "--tau", "1",
                     "--workers", "0"]) == 0
        assert "pairs=2" in capsys.readouterr().err

    def test_workers_rs_join(self, strings_file, right_file, capsys):
        assert main(["join", str(strings_file), "--right", str(right_file),
                     "--tau", "1", "--workers", "2"]) == 0
        assert "vldb\tpvldb" in capsys.readouterr().out

    def test_workers_rejected_for_other_algorithms(self, strings_file, capsys):
        code = main(["join", str(strings_file), "--tau", "1",
                     "--workers", "2", "--algorithm", "naive"])
        assert code == 2
        assert "pass-join" in capsys.readouterr().err

    def test_chunk_size_rejected_for_other_algorithms(self, strings_file,
                                                      capsys):
        code = main(["join", str(strings_file), "--tau", "1",
                     "--chunk-size", "100", "--algorithm", "naive"])
        assert code == 2
        assert "pass-join" in capsys.readouterr().err

    def test_negative_workers_reports_error(self, strings_file, capsys):
        code = main(["join", str(strings_file), "--tau", "1",
                     "--workers", "-2"])
        assert code == 1
        assert "workers" in capsys.readouterr().err


class TestGenerateAndStats:
    def test_generate_then_stats(self, tmp_path, capsys):
        output = tmp_path / "authors.txt"
        assert main(["generate", "author", str(output), "--size", "150"]) == 0
        assert output.exists()
        assert "wrote 150 strings" in capsys.readouterr().out

        assert main(["stats", str(output)]) == 0
        captured = capsys.readouterr()
        assert "cardinality: 150" in captured.out

    def test_stats_with_limit(self, strings_file, capsys):
        assert main(["stats", str(strings_file), "--limit", "2"]) == 0
        assert "cardinality: 2" in capsys.readouterr().out


class TestExperimentCommand:
    def test_table2_experiment(self, capsys):
        assert main(["experiment", "table2", "--scale", "0.05"]) == 0
        captured = capsys.readouterr()
        assert "author" in captured.out and "title" in captured.out

    def test_markdown_output(self, capsys):
        assert main(["experiment", "table2", "--scale", "0.05", "--markdown"]) == 0
        assert captured_markdown_header(capsys.readouterr().out)

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["experiment", "figure99"])


def captured_markdown_header(output: str) -> bool:
    return output.lstrip().startswith("| dataset")


class TestServeAndQuery:
    def test_query_against_running_server(self, capsys):
        from repro.config import ServiceConfig
        from repro.service import BackgroundServer

        with BackgroundServer(["vldb", "pvldb", "sigmod"],
                              ServiceConfig(port=0, max_tau=2)) as (host, port):
            assert main(["query", "vldb", "--tau", "1",
                         "--host", host, "--port", str(port)]) == 0
            captured = capsys.readouterr()
            assert "0\t0\tvldb" in captured.out
            assert "1\t1\tpvldb" in captured.out
            assert "matches=2" in captured.err

            assert main(["query", "sigmod", "--top-k", "1",
                         "--host", host, "--port", str(port)]) == 0
            assert capsys.readouterr().out.strip() == "2\t0\tsigmod"

    def test_query_unreachable_server_reports_error(self, capsys):
        # Port 1 is never listening on a test box.
        code = main(["query", "vldb", "--host", "127.0.0.1", "--port", "1"])
        assert code == 1
        assert "cannot reach server" in capsys.readouterr().err

    def test_query_file_batches_against_running_server(self, tmp_path, capsys):
        from repro.config import ServiceConfig
        from repro.service import BackgroundServer

        queries_file = tmp_path / "queries.txt"
        queries_file.write_text("vldb\nsigmod\nzzz\n", encoding="utf-8")
        with BackgroundServer(["vldb", "pvldb", "sigmod"],
                              ServiceConfig(port=0, max_tau=2)) as (host, port):
            assert main(["query", "--file", str(queries_file), "--tau", "1",
                         "--host", host, "--port", str(port)]) == 0
            captured = capsys.readouterr()
            assert "vldb\t0\t0\tvldb" in captured.out
            assert "vldb\t1\t1\tpvldb" in captured.out
            assert "sigmod\t2\t0\tsigmod" in captured.out
            assert "zzz" not in captured.out  # no matches, no lines
            assert "queries=3 matches=3" in captured.err

    def test_query_requires_text_or_file(self, tmp_path, capsys):
        assert main(["query"]) == 2
        assert "exactly one" in capsys.readouterr().err
        queries_file = tmp_path / "queries.txt"
        queries_file.write_text("vldb\n", encoding="utf-8")
        assert main(["query", "vldb", "--file", str(queries_file)]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_query_file_with_top_k_batches(self, tmp_path, capsys):
        from repro.config import ServiceConfig
        from repro.service import BackgroundServer

        queries_file = tmp_path / "queries.txt"
        queries_file.write_text("vldb\nsigmod\n", encoding="utf-8")
        with BackgroundServer(["vldb", "pvldb", "sigmod"],
                              ServiceConfig(port=0, max_tau=2)) as (host, port):
            assert main(["query", "--file", str(queries_file),
                         "--top-k", "2",
                         "--host", host, "--port", str(port)]) == 0
            captured = capsys.readouterr()
            assert "vldb\t0\t0\tvldb" in captured.out
            assert "vldb\t1\t1\tpvldb" in captured.out
            assert "sigmod\t2\t0\tsigmod" in captured.out
            assert "queries=2" in captured.err

    def test_serve_wires_flags_into_config(self, strings_file, monkeypatch,
                                           capsys):
        import repro.cli as cli

        captured_args = {}

        async def fake_run_service(strings, config, *, on_ready=None):
            captured_args["strings"] = list(strings)
            captured_args["config"] = config
            if on_ready is not None:
                on_ready((config.host, 54321))

        monkeypatch.setattr("repro.service.server.run_service",
                            fake_run_service)
        assert cli.main(["serve", str(strings_file), "--tau", "1",
                         "--port", "0", "--cache-capacity", "16",
                         "--compact-interval", "8", "--limit", "3",
                         "--shards", "2", "--shard-policy", "length",
                         "--shard-backend", "thread",
                         "--migration-batch", "32"]) == 0
        config = captured_args["config"]
        assert config.max_tau == 1
        assert config.port == 0
        assert config.cache_capacity == 16
        assert config.compact_interval == 8
        assert config.shards == 2
        assert config.shard_policy == "length"
        assert config.shard_backend == "thread"
        assert config.migration_batch == 32
        assert len(captured_args["strings"]) == 3
        err = capsys.readouterr().err
        assert "serving 3 strings" in err
        assert "2 length shards" in err

    def test_serve_missing_file_reports_error(self, tmp_path, capsys):
        code = main(["serve", str(tmp_path / "nope.txt")])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestAdmin:
    def sharded_server(self):
        from repro.config import ServiceConfig
        from repro.service import BackgroundServer

        strings = [f"string{i:02d}" for i in range(30)]
        return BackgroundServer(strings, ServiceConfig(
            port=0, max_tau=2, shards=2, shard_backend="thread",
            migration_batch=4))

    def test_reshard_grows_and_shrinks_to_target(self, capsys):
        with self.sharded_server() as (host, port):
            assert main(["admin", "reshard", "--shards", "4",
                         "--host", host, "--port", str(port)]) == 0
            captured = capsys.readouterr()
            assert "now 4 shard(s)" in captured.err
            assert "shards: 4" in captured.out
            assert main(["admin", "reshard", "--shards", "2",
                         "--host", host, "--port", str(port)]) == 0
            captured = capsys.readouterr()
            assert "now 2 shard(s)" in captured.err
            assert "shards: 2" in captured.out

    def test_reshard_to_current_size_is_a_noop(self, capsys):
        with self.sharded_server() as (host, port):
            assert main(["admin", "reshard", "--shards", "2",
                         "--host", host, "--port", str(port)]) == 0
            assert "rebalance: idle" in capsys.readouterr().out

    def test_status_prints_balance(self, capsys):
        with self.sharded_server() as (host, port):
            assert main(["admin", "status",
                         "--host", host, "--port", str(port)]) == 0
            out = capsys.readouterr().out
            assert "shards: 2" in out
            assert "rows per shard:" in out
            assert "rows migrated (lifetime): 0" in out

    def test_admin_on_unsharded_server_reports_error(self, capsys):
        from repro.config import ServiceConfig
        from repro.service import BackgroundServer

        with BackgroundServer(["vldb"], ServiceConfig(
                port=0, max_tau=1)) as (host, port):
            assert main(["admin", "reshard", "--shards", "2",
                         "--host", host, "--port", str(port)]) == 1
            assert "unsharded" in capsys.readouterr().err

    def test_admin_unreachable_server_reports_error(self, capsys):
        assert main(["admin", "status", "--host", "127.0.0.1",
                     "--port", "1"]) == 1
        assert "cannot reach server" in capsys.readouterr().err

    def test_admin_server_dying_mid_request_reports_error(self, capsys):
        # A server that accepts the connection but drops it mid-request
        # surfaces as ProtocolError, not OSError; admin must still exit 1
        # with the friendly message instead of a traceback.
        import socket
        import threading

        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def accept_and_hang_up():
            conn, _ = listener.accept()
            conn.close()

        worker = threading.Thread(target=accept_and_hang_up, daemon=True)
        worker.start()
        try:
            assert main(["admin", "status", "--host", "127.0.0.1",
                         "--port", str(port)]) == 1
            assert "cannot reach server" in capsys.readouterr().err
        finally:
            worker.join(timeout=5)
            listener.close()


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "passjoin" in capsys.readouterr().out

    def test_no_command_errors(self):
        with pytest.raises(SystemExit):
            main([])
