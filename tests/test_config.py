"""Unit tests for configuration objects and validation helpers."""

import pytest

from repro.config import (DEFAULT_CONFIG, DEFAULT_SERVICE_CONFIG, JoinConfig,
                          PartitionStrategy, SelectionMethod, ServiceConfig,
                          VerificationMethod, validate_threshold)
from repro.exceptions import ConfigurationError, InvalidThresholdError


class TestValidateThreshold:
    def test_accepts_zero_and_positive(self):
        assert validate_threshold(0) == 0
        assert validate_threshold(7) == 7

    @pytest.mark.parametrize("bad", [-1, 1.5, "2", None, True])
    def test_rejects_invalid(self, bad):
        with pytest.raises(InvalidThresholdError):
            validate_threshold(bad)


class TestJoinConfig:
    def test_defaults_are_the_papers_best_methods(self):
        assert DEFAULT_CONFIG.selection is SelectionMethod.MULTI_MATCH
        assert DEFAULT_CONFIG.verification is VerificationMethod.SHARE_PREFIX
        assert DEFAULT_CONFIG.partition is PartitionStrategy.EVEN

    def test_string_values_are_coerced_to_enums(self):
        config = JoinConfig(selection="position", verification="banded",
                            partition="even")
        assert config.selection is SelectionMethod.POSITION
        assert config.verification is VerificationMethod.BANDED

    def test_from_names(self):
        config = JoinConfig.from_names(selection="length",
                                       verification="extension")
        assert config.selection is SelectionMethod.LENGTH
        assert config.verification is VerificationMethod.EXTENSION

    def test_from_names_unknown_raises_configuration_error(self):
        with pytest.raises(ConfigurationError):
            JoinConfig.from_names(selection="does-not-exist")

    def test_invalid_enum_value_raises(self):
        with pytest.raises(ValueError):
            JoinConfig(selection="nonsense")

    def test_config_is_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_CONFIG.selection = SelectionMethod.LENGTH

    def test_parallel_defaults_are_serial(self):
        assert DEFAULT_CONFIG.workers == 1
        assert DEFAULT_CONFIG.chunk_size is None

    def test_workers_zero_means_all_cpus_is_accepted(self):
        assert JoinConfig(workers=0).workers == 0

    @pytest.mark.parametrize("bad", [-1, 1.5, "2", None, True])
    def test_invalid_workers_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            JoinConfig(workers=bad)

    @pytest.mark.parametrize("bad", [0, -4, 2.5, "10", True])
    def test_invalid_chunk_size_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            JoinConfig(chunk_size=bad)

    def test_from_names_forwards_parallel_knobs(self):
        config = JoinConfig.from_names(workers=4, chunk_size=128)
        assert config.workers == 4
        assert config.chunk_size == 128


class TestServiceConfig:
    def test_defaults(self):
        config = ServiceConfig()
        assert config.host == "127.0.0.1"
        assert config.port == 8765
        assert config.max_tau == 2
        assert config.cache_capacity == 1024
        assert DEFAULT_SERVICE_CONFIG == config

    def test_partition_coerced_from_string(self):
        assert (ServiceConfig(partition="even").partition
                is PartitionStrategy.EVEN)

    @pytest.mark.parametrize("field,bad", [
        ("host", ""), ("host", 80),
        ("port", -1), ("port", 70000), ("port", True),
        ("max_tau", -1), ("max_tau", "2"),
        ("cache_capacity", -5), ("cache_capacity", 1.5),
        ("max_batch", 0), ("max_batch", True),
        ("batch_window", -0.1), ("batch_window", "fast"),
        ("compact_interval", -1),
        ("shards", 0), ("shards", True), ("shards", 1.5),
        ("shard_policy", "round-robin"), ("shard_policy", 3),
        ("shard_backend", "forkserver"),
        ("migration_batch", 0), ("migration_batch", -3),
        ("migration_batch", True), ("migration_batch", 2.5),
    ])
    def test_invalid_values_rejected(self, field, bad):
        with pytest.raises((ConfigurationError, InvalidThresholdError)):
            ServiceConfig(**{field: bad})

    def test_bad_shards_rejected_at_construction(self):
        # The full sharded stack must never see shards < 1: the config
        # object is the validation boundary, with a clear ConfigError.
        with pytest.raises(ConfigurationError, match="shards"):
            ServiceConfig(shards=0)
        with pytest.raises(ConfigurationError, match="shards"):
            ServiceConfig(shards=-2)

    def test_bad_migration_batch_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="migration_batch"):
            ServiceConfig(migration_batch=0)

    def test_unknown_shard_policy_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="shard_policy"):
            ServiceConfig(shard_policy="zipcode")

    def test_config_error_alias_catches_configuration_errors(self):
        from repro.exceptions import ConfigError

        with pytest.raises(ConfigError):
            ServiceConfig(shards=0)

    def test_sharding_defaults_are_unsharded(self):
        config = ServiceConfig()
        assert config.shards == 1
        assert config.shard_policy == "hash"
        assert config.shard_backend == "auto"
        assert config.migration_batch == 256

    def test_sharding_fields_accepted(self):
        config = ServiceConfig(shards=4, shard_policy="length",
                               shard_backend="thread", migration_batch=32)
        assert (config.shards, config.shard_policy, config.shard_backend,
                config.migration_batch) == (4, "length", "thread", 32)

    def test_modulo_policy_accepted(self):
        assert ServiceConfig(shard_policy="modulo").shard_policy == "modulo"

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ServiceConfig().port = 1


class TestEnums:
    def test_selection_method_values(self):
        assert {m.value for m in SelectionMethod} == {
            "length", "shift", "position", "multi-match"}

    def test_verification_method_values(self):
        assert {m.value for m in VerificationMethod} == {
            "banded", "length-aware", "extension", "share-prefix", "myers",
            "myers-batch"}

    def test_partition_strategy_values(self):
        assert {m.value for m in PartitionStrategy} == {
            "even", "left-heavy", "right-heavy"}
