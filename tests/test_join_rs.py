"""Tests for the R-S (two-collection) join."""

import itertools

import pytest

from repro import JoinConfig, PassJoin, SelectionMethod, pass_join_rs
from repro.baselines.naive import NaiveJoin
from repro.distance import edit_distance

from helpers import random_strings


def brute_force_rs(left, right, tau):
    truth = {}
    for (i, a), (j, b) in itertools.product(enumerate(left), enumerate(right)):
        if abs(len(a) - len(b)) > tau:
            continue
        distance = edit_distance(a, b)
        if distance <= tau:
            truth[(i, j)] = distance
    return truth


class TestRSJoinBasics:
    def test_simple_pairs(self):
        left = ["vldb", "sigmod", "icde"]
        right = ["pvldb", "sigmmod", "kdd"]
        result = pass_join_rs(left, right, 1)
        assert result.pair_ids() == {(0, 0), (1, 1)}

    def test_orientation_is_left_right(self):
        result = pass_join_rs(["abc"], ["abd"], 1)
        pair = result.pairs[0]
        assert pair.left == "abc" and pair.right == "abd"

    def test_identical_ids_in_both_sets_are_distinct_strings(self):
        # id 0 exists on both sides; an R-S join must not confuse them.
        result = pass_join_rs(["aaaa"], ["aaaa"], 0)
        assert result.pair_ids() == {(0, 0)}

    def test_empty_sides(self):
        assert len(pass_join_rs([], ["abc"], 2)) == 0
        assert len(pass_join_rs(["abc"], [], 2)) == 0

    def test_probe_shorter_than_indexed_length(self):
        # |r| < |s| exercises negative delta in the selection windows.
        result = pass_join_rs(["vldb"], ["pvvldb"], 2)
        assert result.pair_ids() == {(0, 0)}

    def test_short_strings_on_either_side(self):
        left = ["ab", "abcdef"]
        right = ["abc", "a", "abcde"]
        truth = brute_force_rs(left, right, 3)
        assert pass_join_rs(left, right, 3).pair_ids() == set(truth)


class TestRSJoinOracle:
    @pytest.mark.parametrize("tau", [0, 1, 2, 3])
    def test_random_collections(self, tau):
        left = random_strings(60, 3, 14, alphabet="abc", seed=21)
        right = random_strings(70, 3, 14, alphabet="abc", seed=22)
        truth = brute_force_rs(left, right, tau)
        result = pass_join_rs(left, right, tau)
        assert result.pair_ids() == set(truth)
        for pair in result:
            assert pair.distance == truth[pair.ids()]

    @pytest.mark.parametrize("selection", list(SelectionMethod))
    def test_all_selection_methods(self, selection):
        left = random_strings(40, 4, 12, alphabet="ab", seed=31)
        right = random_strings(40, 4, 12, alphabet="ab", seed=32)
        truth = set(brute_force_rs(left, right, 2))
        config = JoinConfig(selection=selection)
        assert PassJoin(2, config).join(left, right).pair_ids() == truth

    def test_matches_naive_rs_join(self):
        left = random_strings(50, 5, 20, alphabet="abcd", seed=41)
        right = random_strings(50, 5, 20, alphabet="abcd", seed=42)
        tau = 3
        naive = NaiveJoin(tau).join(left, right)
        ours = pass_join_rs(left, right, tau)
        assert ours.pair_ids() == naive.pair_ids()

    def test_rs_join_of_a_set_with_itself_contains_self_pairs(self):
        strings = ["alpha", "alphb", "beta"]
        result = pass_join_rs(strings, strings, 1)
        # Unlike the self join, the R-S join reports (i, i) pairs and both
        # orientations are collapsed to (left index, right index).
        assert (0, 0) in result.pair_ids()
        assert (0, 1) in result.pair_ids() and (1, 0) in result.pair_ids()
