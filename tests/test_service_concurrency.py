"""Concurrent mutation-vs-query tests against a live BackgroundServer.

Multiple client threads interleave inserts, deletes, and searches over real
TCP connections.  The asyncio server serializes every request on its event
loop, so each client must observe **epoch-consistent** results:

* the ``epoch`` reported by responses never decreases on any connection
  (mutations only move it forward, and responses on one connection are
  ordered);
* a search issued after a client's own mutation was acknowledged reflects
  that mutation (its inserted string is found at tau=0; its deleted string
  is gone);
* reader threads querying the immutable base collection always get exactly
  the base answer — concurrent writers touch disjoint strings and may move
  the epoch, but can never change those results.

Run both unsharded and against a 2-shard router, which exercises the
composite-epoch cache keys under concurrent load.
"""

import threading

import pytest

from repro.config import ServiceConfig
from repro.service import BackgroundServer, ServiceClient

BASE = ["vldb", "pvldb", "sigmod", "sigmmod", "icde", "edbt", "kdd"]

WRITERS = 3
READERS = 2
ROUNDS = 25


class _Worker(threading.Thread):
    """A client thread that records the epochs it saw and any failure."""

    def __init__(self, host, port):
        super().__init__(daemon=True)
        self.host, self.port = host, port
        self.error: BaseException | None = None
        self.epochs: list[int] = []

    def run(self):
        try:
            with ServiceClient(self.host, self.port) as client:
                self.work(client)
        except BaseException as error:  # noqa: BLE001 - reported by the test
            self.error = error

    def observe(self, response: dict) -> dict:
        epoch = response.get("epoch")
        if isinstance(epoch, int):
            self.epochs.append(epoch)
        return response

    def work(self, client: ServiceClient) -> None:
        raise NotImplementedError


class _Writer(_Worker):
    """Insert/search/delete a private namespace of strings."""

    def __init__(self, host, port, name):
        super().__init__(host, port)
        self.namespace = name

    def work(self, client):
        for round_ in range(ROUNDS):
            text = f"{self.namespace}word{round_:03d}"
            inserted = self.observe(
                client.request({"op": "insert", "text": text}))
            new_id = inserted["id"]
            found = self.observe(client.request(
                {"op": "search", "query": text, "tau": 0}))
            assert [m["id"] for m in found["matches"]] == [new_id], (
                f"insert of {text!r} not visible to its own client")
            if round_ % 2:
                deleted = self.observe(
                    client.request({"op": "delete", "id": new_id}))
                assert deleted["deleted"] is True
                gone = self.observe(client.request(
                    {"op": "search", "query": text, "tau": 0}))
                assert gone["matches"] == [], (
                    f"delete of {text!r} not visible to its own client")


class _Reader(_Worker):
    """Query the immutable base collection; answers must never change."""

    def work(self, client):
        for round_ in range(ROUNDS * 2):
            query = BASE[round_ % len(BASE)]
            response = self.observe(client.request(
                {"op": "search", "query": query, "tau": 0}))
            texts = [m["text"] for m in response["matches"]]
            assert texts == [query], (
                f"base query {query!r} returned {texts}")


def run_concurrent_load(config: ServiceConfig) -> None:
    with BackgroundServer(BASE, config) as (host, port):
        workers = [_Writer(host, port, f"w{i}") for i in range(WRITERS)]
        workers += [_Reader(host, port) for _ in range(READERS)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
            assert not worker.is_alive(), "worker thread hung"
        failures = [worker.error for worker in workers if worker.error]
        assert not failures, failures
        for worker in workers:
            # Epoch consistency: on one connection the epoch never rewinds.
            assert worker.epochs == sorted(worker.epochs), worker.epochs


@pytest.mark.parametrize("shards", [1, 2])
def test_interleaved_clients_observe_consistent_results(shards):
    run_concurrent_load(ServiceConfig(
        port=0, max_tau=2, shards=shards, shard_backend="thread",
        compact_interval=8))


def test_interleaved_clients_with_tiny_batch_window():
    # A wider batch window forces queries from different connections into
    # shared batcher executions while mutations land between batches.
    run_concurrent_load(ServiceConfig(
        port=0, max_tau=2, batch_window=0.005, shards=2,
        shard_backend="thread"))
