"""Tests for the benchmark harness primitives and reporting."""

import pytest

from repro.bench.harness import ExperimentTable, Timer, geometric_speedup, scaled
from repro.bench.reporting import format_table, tables_to_markdown
from repro.exceptions import ExperimentError


class TestExperimentTable:
    def _table(self):
        return ExperimentTable(key="demo", title="Demo", columns=["x", "y"])

    def test_add_row_and_column(self):
        table = self._table()
        table.add_row(x=1, y=2)
        table.add_row(x=3, y=4)
        assert table.column("y") == [2, 4]

    def test_add_row_missing_column(self):
        with pytest.raises(ExperimentError):
            self._table().add_row(x=1)

    def test_unknown_column(self):
        with pytest.raises(ExperimentError):
            self._table().column("z")

    def test_filter_rows(self):
        table = self._table()
        table.add_row(x=1, y="a")
        table.add_row(x=2, y="a")
        table.add_row(x=1, y="b")
        assert len(table.filter_rows(x=1)) == 2
        assert table.filter_rows(x=1, y="b")[0]["y"] == "b"


class TestTimerAndScaling:
    def test_timer_measures_nonnegative_time(self):
        with Timer() as timer:
            sum(range(10000))
        assert timer.seconds >= 0

    def test_scaled_sizes(self):
        assert scaled({"a": 1000, "b": 400}, 0.5) == {"a": 500, "b": 200}

    def test_scaled_floor(self):
        assert scaled({"a": 100}, 0.001) == {"a": 50}

    def test_scaled_invalid(self):
        with pytest.raises(ExperimentError):
            scaled({"a": 100}, 0)

    def test_geometric_speedup(self):
        assert geometric_speedup([1.0, 1.0], [2.0, 8.0]) == pytest.approx(4.0)

    def test_geometric_speedup_validation(self):
        with pytest.raises(ExperimentError):
            geometric_speedup([1.0], [1.0, 2.0])
        with pytest.raises(ExperimentError):
            geometric_speedup([0.0], [1.0])


class TestReporting:
    def _table(self):
        table = ExperimentTable(key="t", title="Numbers", columns=["name", "value"],
                                notes="a note")
        table.add_row(name="pi", value=3.14159)
        table.add_row(name="big", value=1234567)
        return table

    def test_plain_text_rendering(self):
        text = format_table(self._table())
        assert "Numbers" in text
        assert "pi" in text and "3.142" in text
        assert "1,234,567" in text
        assert "a note" in text

    def test_markdown_rendering(self):
        markdown = format_table(self._table(), markdown=True)
        assert markdown.startswith("| name")
        assert "|---" in markdown.replace(" ", "")

    def test_tables_to_markdown(self):
        document = tables_to_markdown([self._table()])
        assert "### Numbers" in document
        assert "*a note*" in document

    def test_empty_table_renders(self):
        table = ExperimentTable(key="empty", title="Empty", columns=["a"])
        assert "Empty" in format_table(table)
