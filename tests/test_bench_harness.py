"""Tests for the benchmark harness primitives and reporting."""

import json

import pytest

from repro.bench.harness import ExperimentTable, Timer, geometric_speedup, scaled
from repro.bench.reporting import (BENCH_SCHEMA, append_bench_run,
                                   bench_run_payload, bench_trajectory_path,
                                   format_table, table_to_dict,
                                   tables_to_markdown)
from repro.exceptions import ExperimentError


class TestExperimentTable:
    def _table(self):
        return ExperimentTable(key="demo", title="Demo", columns=["x", "y"])

    def test_add_row_and_column(self):
        table = self._table()
        table.add_row(x=1, y=2)
        table.add_row(x=3, y=4)
        assert table.column("y") == [2, 4]

    def test_add_row_missing_column(self):
        with pytest.raises(ExperimentError):
            self._table().add_row(x=1)

    def test_add_row_rejects_undeclared_columns(self):
        # Regression: a typo'd column name used to be stored silently and
        # only surface as a hole in the rendered report.
        with pytest.raises(ExperimentError, match="undeclared"):
            self._table().add_row(x=1, y=2, z=3)

    def test_add_row_rejects_typo_even_with_all_columns_present(self):
        table = self._table()
        with pytest.raises(ExperimentError, match="undeclared"):
            table.add_row(x=1, y=2, Y=4)
        assert table.rows == []

    def test_unknown_column(self):
        with pytest.raises(ExperimentError):
            self._table().column("z")

    def test_filter_rows(self):
        table = self._table()
        table.add_row(x=1, y="a")
        table.add_row(x=2, y="a")
        table.add_row(x=1, y="b")
        assert len(table.filter_rows(x=1)) == 2
        assert table.filter_rows(x=1, y="b")[0]["y"] == "b"


class TestTimerAndScaling:
    def test_timer_measures_nonnegative_time(self):
        with Timer() as timer:
            sum(range(10000))
        assert timer.seconds >= 0

    def test_scaled_sizes(self):
        assert scaled({"a": 1000, "b": 400}, 0.5) == {"a": 500, "b": 200}

    def test_scaled_floor(self):
        assert scaled({"a": 100}, 0.001) == {"a": 50}

    def test_scaled_invalid(self):
        with pytest.raises(ExperimentError):
            scaled({"a": 100}, 0)

    def test_geometric_speedup(self):
        assert geometric_speedup([1.0, 1.0], [2.0, 8.0]) == pytest.approx(4.0)

    def test_geometric_speedup_validation(self):
        with pytest.raises(ExperimentError):
            geometric_speedup([1.0], [1.0, 2.0])
        with pytest.raises(ExperimentError):
            geometric_speedup([0.0], [1.0])


class TestReporting:
    def _table(self):
        table = ExperimentTable(key="t", title="Numbers", columns=["name", "value"],
                                notes="a note")
        table.add_row(name="pi", value=3.14159)
        table.add_row(name="big", value=1234567)
        return table

    def test_plain_text_rendering(self):
        text = format_table(self._table())
        assert "Numbers" in text
        assert "pi" in text and "3.142" in text
        assert "1,234,567" in text
        assert "a note" in text

    def test_markdown_rendering(self):
        markdown = format_table(self._table(), markdown=True)
        assert markdown.startswith("| name")
        assert "|---" in markdown.replace(" ", "")

    def test_tables_to_markdown(self):
        document = tables_to_markdown([self._table()])
        assert "### Numbers" in document
        assert "*a note*" in document

    def test_empty_table_renders(self):
        table = ExperimentTable(key="empty", title="Empty", columns=["a"])
        assert "Empty" in format_table(table)


class TestBenchTrajectories:
    def _table(self):
        table = ExperimentTable(key="k", title="Kernels", columns=["m", "s"])
        table.add_row(m="a", s=1.0)
        return table

    def test_table_to_dict_round_trips_through_json(self):
        document = json.loads(json.dumps(table_to_dict(self._table())))
        assert document["key"] == "k"
        assert document["columns"] == ["m", "s"]
        assert document["rows"] == [{"m": "a", "s": 1.0}]

    def test_bench_run_payload_carries_environment_and_metrics(self):
        run = bench_run_payload({"speedup": 1.8}, tables=[self._table()],
                                notes="n")
        assert run["metrics"] == {"speedup": 1.8}
        assert run["cpus"] >= 1
        assert run["python"] and run["platform"]
        assert run["notes"] == "n"
        assert run["tables"][0]["key"] == "k"

    def test_append_creates_and_extends_trajectory(self, tmp_path):
        path = bench_trajectory_path(tmp_path, "verification")
        assert path.name == "BENCH_verification.json"
        first = append_bench_run(path, "verification", {"metrics": {"x": 1}})
        second = append_bench_run(path, "verification", {"metrics": {"x": 2}})
        assert len(first["runs"]) == 1 and len(second["runs"]) == 2
        on_disk = json.loads(path.read_text())
        assert on_disk["schema"] == BENCH_SCHEMA
        assert on_disk["bench"] == "verification"
        assert [run["metrics"]["x"] for run in on_disk["runs"]] == [1, 2]

    def test_append_rotates_out_old_runs(self, tmp_path):
        path = tmp_path / "BENCH_t.json"
        for i in range(6):
            document = append_bench_run(path, "t", {"i": i}, keep=4)
        assert [run["i"] for run in document["runs"]] == [2, 3, 4, 5]

    def test_append_refuses_foreign_or_corrupt_files(self, tmp_path):
        corrupt = tmp_path / "BENCH_a.json"
        corrupt.write_text("{not json")
        with pytest.raises(ExperimentError):
            append_bench_run(corrupt, "a", {})
        foreign = tmp_path / "BENCH_b.json"
        foreign.write_text(json.dumps({"schema": BENCH_SCHEMA,
                                       "bench": "other", "runs": []}))
        with pytest.raises(ExperimentError):
            append_bench_run(foreign, "b", {})

    def test_append_creates_missing_parent_directory(self, tmp_path):
        path = tmp_path / "artifacts" / "BENCH_c.json"
        append_bench_run(path, "c", {"ok": True})
        assert path.exists()
