"""Plain-importable test helpers.

These used to live in ``conftest.py`` and were pulled in with relative
imports (``from .conftest import …``), which only works when ``tests`` is a
package — it is not, so the suite failed at collection.  Keeping the helpers
in a regular module lets test files do ``from helpers import …`` (pytest
puts each test file's directory on ``sys.path``) while ``conftest.py``
re-uses them for its fixtures.
"""

from __future__ import annotations

import itertools
import random

from repro.distance import edit_distance


def brute_force_pairs(strings, tau):
    """Ground-truth similar pairs {(i, j): distance} with i < j."""
    truth = {}
    for (i, a), (j, b) in itertools.combinations(enumerate(strings), 2):
        if abs(len(a) - len(b)) > tau:
            continue
        distance = edit_distance(a, b)
        if distance <= tau:
            truth[(min(i, j), max(i, j))] = distance
    return truth


def brute_force_rs_pairs(left, right, tau):
    """Ground-truth R-S pairs {(i, j): distance} for i in R, j in S."""
    truth = {}
    for i, a in enumerate(left):
        for j, b in enumerate(right):
            if abs(len(a) - len(b)) > tau:
                continue
            distance = edit_distance(a, b)
            if distance <= tau:
                truth[(i, j)] = distance
    return truth


def random_strings(count, min_len, max_len, alphabet="abcd", seed=0):
    """Deterministic random strings over a small alphabet (collision-rich)."""
    rng = random.Random(seed)
    return ["".join(rng.choice(alphabet) for _ in range(rng.randint(min_len, max_len)))
            for _ in range(count)]
