"""Tests for the approximate-string-search extension."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.distance import edit_distance
from repro.exceptions import InvalidThresholdError
from repro.search import PassJoinSearcher, SearchMatch, search_all
from repro.search.searcher import iter_matches
from repro.types import StringRecord

from helpers import random_strings


class TestBasicSearch:
    def test_exact_and_near_matches(self):
        searcher = PassJoinSearcher(["vldb", "pvldb", "sigmod", "icde"], max_tau=2)
        matches = searcher.search("vldb", tau=1)
        assert [(m.text, m.distance) for m in matches] == [("vldb", 0), ("pvldb", 1)]

    def test_no_match(self):
        searcher = PassJoinSearcher(["alpha", "beta"], max_tau=1)
        assert searcher.search("gamma", tau=1) == []

    def test_default_tau_is_index_maximum(self):
        searcher = PassJoinSearcher(["abcdef"], max_tau=3)
        assert searcher.search("abc") == [SearchMatch(3, 0, "abcdef")]

    def test_query_tau_above_index_tau_rejected(self):
        searcher = PassJoinSearcher(["abc"], max_tau=1)
        with pytest.raises(InvalidThresholdError):
            searcher.search("abc", tau=2)

    def test_short_indexed_strings_are_found(self):
        searcher = PassJoinSearcher(["a", "ab", "abcdef"], max_tau=3)
        assert {m.text for m in searcher.search("ab", tau=1)} == {"a", "ab"}

    def test_empty_collection_and_empty_query(self):
        assert PassJoinSearcher([], max_tau=2).search("anything") == []
        searcher = PassJoinSearcher(["ab", "cd"], max_tau=2)
        assert {m.text for m in searcher.search("", tau=2)} == {"ab", "cd"}

    def test_results_sorted_by_distance_then_id(self):
        searcher = PassJoinSearcher(["abcd", "abce", "abcf", "abcd"], max_tau=2)
        matches = searcher.search("abcd", tau=1)
        assert [m.distance for m in matches] == sorted(m.distance for m in matches)
        assert matches[0].id < matches[1].id or matches[0].distance < matches[1].distance

    def test_caller_supplied_record_ids_are_preserved(self):
        records = [StringRecord(id=101, text="alpha"), StringRecord(id=202, text="alphb")]
        searcher = PassJoinSearcher(records, max_tau=1)
        assert {m.id for m in searcher.search("alpha", tau=1)} == {101, 202}

    def test_len_and_records(self):
        searcher = PassJoinSearcher(["a", "b", "c"], max_tau=1)
        assert len(searcher) == 3
        assert [record.text for record in searcher.records] == ["a", "b", "c"]

    def test_contains_within(self):
        searcher = PassJoinSearcher(["partition"], max_tau=2)
        assert searcher.contains_within("partitions", tau=1)
        assert not searcher.contains_within("verification", tau=2)

    def test_statistics_accumulate_over_queries(self):
        searcher = PassJoinSearcher(random_strings(100, 5, 15, seed=1), max_tau=2)
        before = searcher.statistics.num_index_probes
        searcher.search("abcdefgh", tau=2)
        assert searcher.statistics.num_index_probes > before

    def test_verification_kernel_is_pluggable(self):
        """Every verification kernel must answer searches identically."""
        strings = random_strings(120, 4, 14, alphabet="abc", seed=9)
        queries = random_strings(15, 4, 14, alphabet="abc", seed=10)
        baseline = PassJoinSearcher(strings, max_tau=2)
        expected_each = [baseline.search(query, tau=2) for query in queries]
        expected_batch = baseline.search_many(queries, tau=2)
        for kernel in ("length-aware", "myers", "myers-batch"):
            searcher = PassJoinSearcher(strings, max_tau=2,
                                        verification=kernel)
            assert [searcher.search(q, tau=2) for q in queries] == expected_each
            assert searcher.search_many(queries, tau=2) == expected_batch


class TestTopKSearch:
    def test_returns_k_closest(self):
        searcher = PassJoinSearcher(["vldb", "vldbj", "pvldb", "sigmod"], max_tau=3)
        matches = searcher.search_top_k("vldb", k=2)
        assert [m.text for m in matches] == ["vldb", "pvldb"] or \
            [m.text for m in matches] == ["vldb", "vldbj"]
        assert matches[0].distance == 0

    def test_fewer_matches_than_k(self):
        searcher = PassJoinSearcher(["aaa", "zzzzzzzz"], max_tau=1)
        assert len(searcher.search_top_k("aaa", k=5)) == 1

    def test_invalid_k(self):
        searcher = PassJoinSearcher(["abc"], max_tau=1)
        with pytest.raises(ValueError):
            searcher.search_top_k("abc", k=0)


class TestSearchMatchWireFormat:
    def test_round_trip(self):
        match = SearchMatch(distance=2, id=17, text="päss-jöin")
        assert SearchMatch.from_dict(match.to_dict()) == match

    def test_round_trip_through_json(self):
        import json

        match = SearchMatch(distance=0, id=0, text="vldb")
        payload = json.loads(json.dumps(match.to_dict()))
        assert SearchMatch.from_dict(payload) == match

    @pytest.mark.parametrize("payload", [
        None, [], "match", {}, {"id": 1}, {"distance": 1},
        {"id": "1", "distance": 0}, {"id": 1, "distance": "0"},
        {"id": 1, "distance": True}, {"id": 1, "distance": 0, "text": 7},
    ])
    def test_malformed_payload_rejected(self, payload):
        with pytest.raises(ValueError):
            SearchMatch.from_dict(payload)

    def test_sort_key_is_distance_then_id(self):
        matches = [SearchMatch(1, 9), SearchMatch(0, 5), SearchMatch(1, 2)]
        assert sorted(matches, key=SearchMatch.sort_key) == [
            SearchMatch(0, 5), SearchMatch(1, 2), SearchMatch(1, 9)]


class TestDeterministicTieBreaking:
    def test_top_k_ties_broken_by_id(self):
        # Four strings all at distance 1 from the query; k=2 must take the
        # two smallest ids, independent of build order.
        strings = ["abcx", "abcy", "abcz", "abcw"]
        searcher = PassJoinSearcher(strings, max_tau=2)
        matches = searcher.search_top_k("abc", k=2)
        assert [(m.distance, m.id) for m in matches] == [(1, 0), (1, 1)]

    def test_top_k_is_stable_across_permuted_builds(self):
        from repro.types import StringRecord

        records = [StringRecord(i, text) for i, text in
                   enumerate(["abcx", "abcy", "abcz", "abcw", "abc"])]
        forward = PassJoinSearcher(records, max_tau=2)
        backward = PassJoinSearcher(list(reversed(records)), max_tau=2)
        for k in (1, 2, 3, 5):
            assert (forward.search_top_k("abc", k)
                    == backward.search_top_k("abc", k))


class TestBatchHelpers:
    def test_search_all(self):
        results = search_all(["vldb", "icde", "edbt"], ["vldbj", "icdm"], tau=1)
        assert {m.text for m in results["vldbj"]} == {"vldb"}
        assert {m.text for m in results["icdm"]} == {"icde"}

    def test_iter_matches(self):
        searcher = PassJoinSearcher(["aaa", "aab", "zzz"], max_tau=1)
        pairs = list(iter_matches(searcher, ["aaa", "zzz"], tau=1))
        assert ("aaa", SearchMatch(0, 0, "aaa")) in pairs
        assert ("aaa", SearchMatch(1, 1, "aab")) in pairs
        assert ("zzz", SearchMatch(0, 2, "zzz")) in pairs


class TestSearchOracle:
    @pytest.mark.parametrize("max_tau,query_tau", [(2, 2), (3, 1), (4, 2), (4, 4)])
    def test_matches_brute_force(self, max_tau, query_tau):
        strings = random_strings(150, 2, 16, alphabet="abc", seed=51)
        queries = random_strings(25, 2, 16, alphabet="abc", seed=52)
        searcher = PassJoinSearcher(strings, max_tau=max_tau)
        for query in queries:
            expected = {(i, edit_distance(text, query))
                        for i, text in enumerate(strings)
                        if edit_distance(text, query) <= query_tau}
            got = {(m.id, m.distance) for m in searcher.search(query, query_tau)}
            assert got == expected

    @given(strings=st.lists(st.text(alphabet="ab", max_size=10), max_size=20),
           query=st.text(alphabet="ab", max_size=10),
           max_tau=st.integers(min_value=0, max_value=4),
           query_tau=st.integers(min_value=0, max_value=4))
    @settings(max_examples=150, deadline=None)
    def test_search_property(self, strings, query, max_tau, query_tau):
        if query_tau > max_tau:
            return
        searcher = PassJoinSearcher(strings, max_tau=max_tau)
        expected = {(i, edit_distance(text, query))
                    for i, text in enumerate(strings)
                    if edit_distance(text, query) <= query_tau}
        got = {(m.id, m.distance) for m in searcher.search(query, query_tau)}
        assert got == expected
