"""Unit tests for the exception hierarchy."""

import pytest

from repro.exceptions import (ConfigurationError, DatasetError, ExperimentError,
                              InvalidPartitionError, InvalidThresholdError,
                              PassJoinError, UnknownMethodError)


def test_all_errors_derive_from_passjoinerror():
    for error_type in (InvalidThresholdError, InvalidPartitionError,
                       ConfigurationError, UnknownMethodError, DatasetError,
                       ExperimentError):
        assert issubclass(error_type, PassJoinError)


def test_value_errors_are_also_value_errors():
    assert issubclass(InvalidThresholdError, ValueError)
    assert issubclass(InvalidPartitionError, ValueError)
    assert issubclass(ConfigurationError, ValueError)


def test_invalid_threshold_message_contains_value():
    error = InvalidThresholdError(-3)
    assert "-3" in str(error)
    assert error.tau == -3


def test_unknown_method_error_lists_known_methods():
    error = UnknownMethodError("selection method", "bogus", ("length", "shift"))
    message = str(error)
    assert "bogus" in message
    assert "length" in message and "shift" in message
    assert error.kind == "selection method"


def test_catching_base_class_catches_everything():
    with pytest.raises(PassJoinError):
        raise DatasetError("missing file")
