"""Tests for the observability layer: registry, merging, Prometheus, slowlog."""

import json
import logging

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.metrics import (DEFAULT_LATENCY_BUCKETS, MetricsRegistry,
                               empty_snapshot, funnel_snapshot,
                               merge_snapshots, parse_prometheus,
                               render_prometheus)
from repro.obs.slowlog import (SLOW_QUERY_LOGGER_NAME, JsonLogFormatter,
                               configure_slow_query_logging, log_slow_query)
from repro.types import JoinStatistics


class TestRegistry:
    def test_counter_inc_and_default_amount(self):
        registry = MetricsRegistry()
        registry.inc("requests.search")
        registry.inc("requests.search", 3)
        assert registry.counter_value("requests.search") == 4
        assert registry.counter_value("never.touched") == 0

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("uptime_seconds", 1.5)
        registry.set_gauge("uptime_seconds", 9.0)
        assert registry.snapshot()["gauges"]["uptime_seconds"] == 9.0

    def test_histogram_buckets_and_overflow(self):
        registry = MetricsRegistry()
        registry.observe("lat", 0.05, buckets=(0.1, 1.0))
        registry.observe("lat", 0.5, buckets=(0.1, 1.0))
        registry.observe("lat", 100.0, buckets=(0.1, 1.0))
        histogram = registry.snapshot()["histograms"]["lat"]
        assert histogram["buckets"] == [0.1, 1.0]
        assert histogram["counts"] == [1, 1, 1]  # last slot is +Inf
        assert histogram["count"] == 3
        assert histogram["sum"] == pytest.approx(100.55)

    def test_histogram_bounds_fixed_at_creation(self):
        registry = MetricsRegistry()
        registry.observe("lat", 0.05, buckets=(0.1,))
        registry.observe("lat", 0.05, buckets=(9.9, 10.0))  # ignored
        assert registry.snapshot()["histograms"]["lat"]["buckets"] == [0.1]

    def test_default_buckets_are_ascending(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)

    def test_counters_with_prefix_strips_prefix(self):
        registry = MetricsRegistry()
        registry.inc("requests.search", 2)
        registry.inc("requests.top-k")
        registry.inc("errors.search")
        assert registry.counters_with_prefix("requests.") == {
            "search": 2, "top-k": 1}

    def test_snapshot_is_json_ready(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.set_gauge("b", 2)
        registry.observe("c", 0.01)
        assert json.loads(json.dumps(registry.snapshot())) == registry.snapshot()


class TestMergeSnapshots:
    def test_empty_and_identity(self):
        assert merge_snapshots([]) == empty_snapshot()
        registry = MetricsRegistry()
        registry.inc("x", 2)
        registry.observe("h", 0.3)
        assert merge_snapshots([registry.snapshot()]) == registry.snapshot()

    def test_differing_bucket_bounds_rejected(self):
        left = MetricsRegistry()
        left.observe("h", 0.5, buckets=(1.0,))
        right = MetricsRegistry()
        right.observe("h", 0.5, buckets=(2.0,))
        with pytest.raises(ValueError, match="bucket bounds differ"):
            merge_snapshots([left.snapshot(), right.snapshot()])

    @given(st.lists(
        st.tuples(
            st.dictionaries(st.sampled_from(["a", "b", "c"]),
                            st.integers(0, 100), max_size=3),
            st.lists(st.floats(0.0, 10.0, allow_nan=False), max_size=5)),
        max_size=5))
    @settings(max_examples=50, deadline=None)
    def test_merged_equals_sum_of_per_shard_snapshots(self, shards):
        """The router's aggregate is exactly the sum of the fleet's parts."""
        snapshots = []
        for counters, observations in shards:
            registry = MetricsRegistry()
            for name, value in counters.items():
                registry.inc(name, value)
                registry.set_gauge(f"g_{name}", value)
            for value in observations:
                registry.observe("latency", value, buckets=(1.0, 5.0))
            snapshots.append(registry.snapshot())

        merged = merge_snapshots(snapshots)
        for name in ("a", "b", "c"):
            expected = sum(counters.get(name, 0)
                           for counters, _ in shards if name in counters)
            assert merged["counters"].get(name, 0) == expected
            assert merged["gauges"].get(f"g_{name}", 0) == expected
        total_observations = sum(len(obs) for _, obs in shards)
        if total_observations:
            histogram = merged["histograms"]["latency"]
            assert histogram["count"] == total_observations
            assert sum(histogram["counts"]) == total_observations
            assert histogram["sum"] == pytest.approx(
                sum(sum(obs) for _, obs in shards))
        # Associativity: merging pairwise gives the same aggregate
        # (histogram sums compared approximately — float addition is
        # only associative up to the last ulp).
        if len(snapshots) >= 2:
            pairwise = merge_snapshots(
                [merge_snapshots(snapshots[:1]),
                 merge_snapshots(snapshots[1:])])
            assert pairwise["counters"] == merged["counters"]
            assert pairwise["gauges"] == merged["gauges"]
            assert pairwise["histograms"].keys() == merged["histograms"].keys()
            for name, histogram in merged["histograms"].items():
                other = pairwise["histograms"][name]
                assert other["buckets"] == histogram["buckets"]
                assert other["counts"] == histogram["counts"]
                assert other["count"] == histogram["count"]
                assert other["sum"] == pytest.approx(histogram["sum"])


class TestFunnelSnapshot:
    def test_counters_and_gauges(self):
        stats = JoinStatistics(num_selected_substrings=10, num_index_probes=8,
                               num_postings_scanned=6, num_candidates=4,
                               num_verifications=3, num_accepted=2,
                               index_entries=7, index_bytes=99)
        snapshot = funnel_snapshot(stats, memory={"records": 5})
        counters = snapshot["counters"]
        assert counters["engine_selected_substrings"] == 10
        assert counters["engine_postings_scanned"] == 6
        assert counters["engine_accepted"] == 2
        assert "engine_results" not in counters  # zero counters are skipped
        assert snapshot["gauges"]["engine_index_entries"] == 7
        assert snapshot["gauges"]["engine_index_bytes"] == 99
        assert snapshot["gauges"]["index_records"] == 5

    def test_merges_with_service_registry(self):
        registry = MetricsRegistry()
        registry.inc("requests.search", 2)
        merged = merge_snapshots([
            registry.snapshot(),
            funnel_snapshot(JoinStatistics(num_candidates=3))])
        assert merged["counters"] == {"requests.search": 2,
                                      "engine_candidates": 3}


class TestPrometheus:
    def make_snapshot(self):
        registry = MetricsRegistry()
        registry.inc("requests.search-batch", 4)
        registry.inc("errors.top-k")
        registry.set_gauge("uptime_seconds", 12.5)
        for value in (0.0002, 0.004, 7.0):
            registry.observe("latency_seconds.search", value)
        return registry.snapshot()

    def test_render_parses_and_round_trips(self):
        text = render_prometheus(self.make_snapshot())
        families = parse_prometheus(text)
        assert families["passjoin_requests_search_batch"]["type"] == "counter"
        assert families["passjoin_requests_search_batch"]["samples"] == [
            ("passjoin_requests_search_batch", {}, 4.0)]
        assert families["passjoin_uptime_seconds"]["type"] == "gauge"
        histogram = families["passjoin_latency_seconds_search"]
        assert histogram["type"] == "histogram"
        buckets = [(labels["le"], value) for name, labels, value
                   in histogram["samples"] if name.endswith("_bucket")]
        assert buckets[-1] == ("+Inf", 3.0)
        counts = [value for _, value in buckets]
        assert counts == sorted(counts)  # cumulative

    def test_names_are_sanitised(self):
        text = render_prometheus(self.make_snapshot())
        for line in text.splitlines():
            name = line.split()[2] if line.startswith("# TYPE") else \
                line.split("{")[0].split()[0]
            assert " " not in name and "-" not in name and "." not in name

    def test_deterministic_output(self):
        snapshot = self.make_snapshot()
        assert render_prometheus(snapshot) == render_prometheus(snapshot)

    def test_parse_rejects_sample_without_type(self):
        with pytest.raises(ValueError, match="no preceding TYPE"):
            parse_prometheus("orphan_metric 1\n")

    def test_parse_rejects_malformed_type(self):
        with pytest.raises(ValueError, match="malformed TYPE"):
            parse_prometheus("# TYPE broken nonsense\nbroken 1\n")

    def test_parse_rejects_non_monotone_histogram(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="0.1"} 5\n'
                'h_bucket{le="+Inf"} 3\n'
                "h_sum 1.0\n"
                "h_count 3\n")
        with pytest.raises(ValueError, match="non-monotone"):
            parse_prometheus(text)

    def test_parse_rejects_inf_count_mismatch(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="0.1"} 1\n'
                'h_bucket{le="+Inf"} 2\n'
                "h_sum 1.0\n"
                "h_count 3\n")
        with pytest.raises(ValueError, match="!= count"):
            parse_prometheus(text)


class TestSlowQueryLog:
    def make_logger(self):
        logger = logging.getLogger(f"{SLOW_QUERY_LOGGER_NAME}.test")
        logger.setLevel(logging.WARNING)
        logger.propagate = False
        records = []

        class _Capture(logging.Handler):
            def emit(self, record):
                records.append(record)

        logger.handlers = [_Capture()]
        return logger, records

    def test_event_payload_and_truncation(self):
        logger, records = self.make_logger()
        log_slow_query(op="search", seconds=0.25, threshold_ms=100.0,
                       ok=True, query="q" * 500, logger=logger)
        assert len(records) == 1
        event = records[0].slow_query
        assert event["op"] == "search"
        assert event["latency_ms"] == 250.0
        assert event["threshold_ms"] == 100.0
        assert event["ok"] is True
        assert event["query"] == "q" * 200

    def test_json_formatter_renders_one_object_per_line(self):
        logger, records = self.make_logger()
        log_slow_query(op="top-k", seconds=0.002, threshold_ms=1.0,
                       ok=False, logger=logger)
        line = JsonLogFormatter().format(records[0])
        payload = json.loads(line)
        assert payload["event"] == "slow_query"
        assert payload["op"] == "top-k"
        assert payload["ok"] is False
        assert "query" not in payload
        assert payload["level"] == "WARNING"

    def test_formatter_handles_plain_records(self):
        record = logging.LogRecord("x", logging.WARNING, __file__, 1,
                                   "plain %s", ("message",), None)
        payload = json.loads(JsonLogFormatter().format(record))
        assert payload["message"] == "plain message"

    def test_configure_is_idempotent(self):
        logger = configure_slow_query_logging()
        before = list(logger.handlers)
        assert configure_slow_query_logging() is logger
        assert logger.handlers == before
        marked = [h for h in logger.handlers
                  if getattr(h, "_repro_slow_query", False)]
        assert len(marked) == 1
        logger.handlers = [h for h in logger.handlers if h not in marked]
