"""Tests for the ``explain`` trace: searcher, dynamic index, shard router."""

import pytest

from helpers import random_strings
from repro.exceptions import InvalidThresholdError
from repro.obs.trace import FUNNEL_FIELDS, empty_explain_report
from repro.search import PassJoinSearcher
from repro.service.dynamic import DynamicSearcher
from repro.service.sharding import ShardRouter

STRINGS = ["vldb", "pvldb", "sigmod", "sigmmod", "icde", "edbt"]


def assert_funnel_shrinks(report):
    funnel = report["funnel"]
    assert (funnel["accepted"] <= funnel["verifications"]
            <= funnel["candidates"] <= funnel["postings_scanned"]), funnel
    assert funnel["index_probes"] <= funnel["selected_substrings"], funnel


class TestSearcherExplain:
    def test_accepted_equals_search_result_count(self):
        searcher = PassJoinSearcher(STRINGS, max_tau=2)
        for query in STRINGS + ["vldbx", "nosuchstring"]:
            for tau in (0, 1, 2):
                report = searcher.explain(query, tau)
                matches = searcher.search(query, tau)
                assert report["num_matches"] == len(matches), (query, tau)
                assert report["funnel"]["accepted"] == len(matches)
                assert report["matches"] == [m.to_dict() for m in matches]
                assert_funnel_shrinks(report)

    def test_report_shape(self):
        report = PassJoinSearcher(STRINGS, max_tau=1).explain("vldb", 1)
        assert report["query"] == "vldb"
        assert report["tau"] == 1
        assert set(report["funnel"]) == set(FUNNEL_FIELDS)
        assert report["verifier"]["kernel"] == "extension"
        assert report["verifier"]["verifications"] >= report["num_matches"]
        assert report["stages"]["total_seconds"] >= 0
        for entry in report["lengths"]:
            assert entry["selection_windows"] >= entry["index_probes"] >= 0
            layout = entry["partition_layout"]
            assert sum(seg_len for _, seg_len in layout) == \
                entry["indexed_length"]

    def test_explain_leaves_search_statistics_untouched(self):
        searcher = PassJoinSearcher(STRINGS, max_tau=1)
        searcher.search("vldb", 1)
        before = searcher.statistics.as_dict()
        searcher.explain("sigmod", 1)
        assert searcher.statistics.as_dict() == before

    def test_explain_does_not_perturb_later_searches(self):
        plain = PassJoinSearcher(STRINGS, max_tau=1)
        traced = PassJoinSearcher(STRINGS, max_tau=1)
        traced.explain("vldb", 1)
        assert traced.search("vldb", 1) == plain.search("vldb", 1)

    def test_tau_above_max_rejected(self):
        with pytest.raises(InvalidThresholdError):
            PassJoinSearcher(STRINGS, max_tau=1).explain("vldb", 2)

    def test_default_tau_is_max_tau(self):
        searcher = PassJoinSearcher(STRINGS, max_tau=2)
        assert searcher.explain("vldb")["tau"] == 2

    def test_randomised_equivalence(self):
        strings = random_strings(60, 3, 12, seed=3)
        searcher = PassJoinSearcher(strings, max_tau=2)
        for query in random_strings(15, 3, 12, seed=4):
            report = searcher.explain(query, 2)
            assert report["num_matches"] == len(searcher.search(query, 2))
            assert_funnel_shrinks(report)


class TestDynamicExplain:
    def test_tombstones_surface_as_filtered_excluded(self):
        searcher = DynamicSearcher(STRINGS, max_tau=1)
        searcher.delete(1)  # tombstone "pvldb" without compacting
        report = searcher.explain("vldb", 1)
        matches = searcher.search("vldb", 1)
        assert [m["text"] for m in report["matches"]] == ["vldb"]
        assert report["num_matches"] == len(matches) == 1
        assert sum(entry["filtered_excluded"]
                   for entry in report["lengths"]) >= 1

    def test_explain_tracks_mutations(self):
        searcher = DynamicSearcher(STRINGS, max_tau=1)
        new_id = searcher.insert("vldbx")
        report = searcher.explain("vldb", 1)
        assert any(m["id"] == new_id for m in report["matches"]), report


class TestRouterExplain:
    @pytest.mark.parametrize("policy", ["hash", "length"])
    def test_merged_report_matches_unsharded(self, policy):
        strings = random_strings(40, 3, 12, seed=5)
        oracle = DynamicSearcher(strings, max_tau=2)
        with ShardRouter(strings, shards=3, max_tau=2, policy=policy,
                         backend="thread") as router:
            for query in random_strings(10, 3, 12, seed=6):
                report = router.explain(query, 2)
                matches = router.search(query, 2)
                assert report["num_matches"] == len(matches)
                assert report["matches"] == [m.to_dict() for m in matches]
                assert matches == oracle.search(query, 2)
                assert_funnel_shrinks(report)
                assert len(report["shards"]) >= 1

    def test_per_shard_reports_sum_into_merged_funnel(self):
        with ShardRouter(STRINGS, shards=2, max_tau=1, policy="modulo",
                         backend="thread") as router:
            report = router.explain("vldb", 1)
            for field in FUNNEL_FIELDS:
                assert report["funnel"][field] == sum(
                    shard["funnel"][field] for shard in report["shards"])

    def test_empty_probe_window_returns_zeroed_report(self):
        # Length-band placement: a query far outside every indexed length
        # touches no shard at all.
        with ShardRouter(["ab", "abc"], shards=2, max_tau=1,
                         policy="length", backend="thread") as router:
            report = router.explain("x" * 50, 1)
            assert report == empty_explain_report("x" * 50, 1)

    def test_tau_above_max_rejected(self):
        with ShardRouter(STRINGS, shards=2, max_tau=1,
                         backend="thread") as router:
            with pytest.raises(InvalidThresholdError):
                router.explain("vldb", 2)

    def test_process_backend_reports_cross_the_pipe(self):
        with ShardRouter(STRINGS, shards=2, max_tau=1, policy="modulo",
                         backend="process") as router:
            report = router.explain("vldb", 1)
            matches = router.search("vldb", 1)
            assert report["num_matches"] == len(matches) == 2
            assert report["funnel"]["accepted"] == 2
