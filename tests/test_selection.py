"""Unit tests for the four substring-selection methods (Section 4)."""

import pytest

from repro.config import SelectionMethod
from repro.core.partition import segment_layout
from repro.core.selection import (LengthBasedSelector, MultiMatchAwareSelector,
                                  PositionAwareSelector, ShiftBasedSelector,
                                  make_selector, theoretical_selection_count)
from repro.exceptions import UnknownMethodError

# The paper's running example: r = "vankatesh" (indexed, length 9, tau = 3),
# probed with s = "avataresha" (length 10).
PROBE = "avataresha"
INDEXED_LENGTH = 9
TAU = 3
LAYOUT = segment_layout(INDEXED_LENGTH, TAU)


def selected_texts(selector, ordinal):
    return [s.text for s in selector.select(PROBE, INDEXED_LENGTH, LAYOUT)
            if s.ordinal == ordinal]


class TestMakeSelector:
    def test_factory_accepts_enum_and_string(self):
        assert isinstance(make_selector(SelectionMethod.LENGTH, 2), LengthBasedSelector)
        assert isinstance(make_selector("shift", 2), ShiftBasedSelector)
        assert isinstance(make_selector("position", 2), PositionAwareSelector)
        assert isinstance(make_selector("multi-match", 2), MultiMatchAwareSelector)

    def test_factory_unknown_method(self):
        with pytest.raises(UnknownMethodError):
            make_selector("bogus", 2)


class TestLengthBasedSelector:
    def test_selects_every_substring_of_segment_length(self):
        selector = make_selector("length", TAU)
        # First three segments have length 2 -> 9 substrings each; the last
        # has length 3 -> 8 substrings.
        counts = [len(selected_texts(selector, ordinal)) for ordinal in (1, 2, 3, 4)]
        assert counts == [9, 9, 9, 8]

    def test_total_matches_formula(self):
        selector = make_selector("length", TAU)
        total = selector.count(len(PROBE), INDEXED_LENGTH, LAYOUT)
        assert total == theoretical_selection_count(
            SelectionMethod.LENGTH, len(PROBE), INDEXED_LENGTH, TAU)
        assert total == (TAU + 1) * (len(PROBE) + 1) - INDEXED_LENGTH


class TestShiftBasedSelector:
    def test_paper_shift_count(self):
        # Section 4 quotes (tau+1)(2tau+1) = 28 for this example; that formula
        # ignores string boundaries.  After clamping windows to valid start
        # positions the implementation selects 22 substrings — never more
        # than the formula.
        selector = make_selector("shift", TAU)
        count = selector.count(len(PROBE), INDEXED_LENGTH, LAYOUT)
        assert count == 22
        assert count <= theoretical_selection_count(
            SelectionMethod.SHIFT, len(PROBE), INDEXED_LENGTH, TAU) == 28

    def test_windows_are_centered_on_segment_start(self):
        selector = make_selector("shift", TAU)
        windows = selector.windows(len(PROBE), INDEXED_LENGTH, LAYOUT)
        second = windows[1]  # segment "nk" starts at offset 2
        assert (second.lo, second.hi) == (0, 5)


class TestPositionAwareSelector:
    def test_paper_position_count_is_14(self):
        # Section 4.1: position-aware selection reduces 28 to 14 substrings.
        selector = make_selector("position", TAU)
        assert selector.count(len(PROBE), INDEXED_LENGTH, LAYOUT) == 14

    def test_paper_position_substrings_per_segment(self):
        selector = make_selector("position", TAU)
        assert selected_texts(selector, 1) == ["av", "va", "at"]
        assert selected_texts(selector, 2) == ["va", "at", "ta", "ar"]
        assert selected_texts(selector, 3) == ["ta", "ar", "re", "es"]
        assert selected_texts(selector, 4) == ["res", "esh", "sha"]


class TestMultiMatchAwareSelector:
    def test_paper_multi_match_count_is_8(self):
        # Section 4.2: the multi-match-aware method selects only 8 substrings.
        selector = make_selector("multi-match", TAU)
        assert selector.count(len(PROBE), INDEXED_LENGTH, LAYOUT) == 8

    def test_paper_multi_match_substrings_per_segment(self):
        selector = make_selector("multi-match", TAU)
        assert selected_texts(selector, 1) == ["av"]
        assert selected_texts(selector, 2) == ["va", "at", "ta"]
        assert selected_texts(selector, 3) == ["ar", "re", "es"]
        assert selected_texts(selector, 4) == ["sha"]

    def test_count_matches_lemma_2(self):
        # |W_m(s, l)| = floor((tau^2 - delta^2) / 2) + tau + 1
        selector = make_selector("multi-match", TAU)
        delta = len(PROBE) - INDEXED_LENGTH
        expected = (TAU * TAU - delta * delta) // 2 + TAU + 1
        assert selector.count(len(PROBE), INDEXED_LENGTH, LAYOUT) == expected == 8

    def test_equal_lengths_counts(self):
        # delta = 0: tau^2 // 2 + tau + 1 substrings.
        for tau in range(0, 6):
            probe = "x" * (4 * (tau + 1))
            layout = segment_layout(len(probe), tau)
            selector = make_selector("multi-match", tau)
            assert selector.count(len(probe), len(probe), layout) == \
                tau * tau // 2 + tau + 1


class TestSelectionHierarchy:
    """Lemma 3: W_m ⊆ W_p ⊆ W_f ⊆ W_ℓ, hence the sizes are ordered."""

    @pytest.mark.parametrize("probe,indexed_length,tau", [
        (PROBE, INDEXED_LENGTH, TAU),
        ("kaushik chakrabar", 15, 3),
        ("abcdefghijklmnop", 14, 2),
        ("abcdefghijklmnop", 16, 4),
        ("short", 5, 1),
    ])
    def test_subset_chain(self, probe, indexed_length, tau):
        layout = segment_layout(indexed_length, tau)
        selections = {}
        for method in SelectionMethod:
            selector = make_selector(method, tau)
            selections[method] = {
                (s.ordinal, s.start)
                for s in selector.select(probe, indexed_length, layout)}
        assert selections[SelectionMethod.MULTI_MATCH] <= \
            selections[SelectionMethod.POSITION]
        assert selections[SelectionMethod.POSITION] <= \
            selections[SelectionMethod.SHIFT]
        assert selections[SelectionMethod.SHIFT] <= \
            selections[SelectionMethod.LENGTH]

    def test_counts_are_ordered(self):
        layout = segment_layout(INDEXED_LENGTH, TAU)
        counts = [make_selector(method, TAU).count(len(PROBE), INDEXED_LENGTH, layout)
                  for method in (SelectionMethod.MULTI_MATCH, SelectionMethod.POSITION,
                                 SelectionMethod.SHIFT, SelectionMethod.LENGTH)]
        assert counts == sorted(counts)


class TestEdgeCases:
    def test_probe_shorter_than_segment_yields_empty_windows(self):
        selector = make_selector("multi-match", 2)
        layout = segment_layout(12, 2)  # segments of length 4
        assert selector.select("abc", 12, layout) == []

    def test_count_never_negative(self):
        selector = make_selector("multi-match", 3)
        layout = segment_layout(20, 3)
        assert selector.count(5, 20, layout) >= 0

    def test_selected_substrings_have_segment_length(self):
        for method in SelectionMethod:
            selector = make_selector(method, TAU)
            for selected in selector.select(PROBE, INDEXED_LENGTH, LAYOUT):
                assert len(selected.text) == selected.seg_length

    def test_selected_substrings_match_probe_slices(self):
        selector = make_selector("multi-match", TAU)
        for selected in selector.select(PROBE, INDEXED_LENGTH, LAYOUT):
            assert PROBE[selected.start:selected.start + selected.seg_length] == \
                selected.text

    def test_theoretical_count_unknown_method(self):
        with pytest.raises(UnknownMethodError):
            theoretical_selection_count("bogus", 10, 9, 2)
