"""Property tests: the parallel chunked engine is exact.

Every configuration of the parallel driver — worker counts, chunk sizes,
process and thread backends, self and R-S joins, with and without strings
too short to partition — must return the *exact* pair set (ids, distances,
and texts) of the serial ``PassJoin``, which in turn is checked against the
brute-force oracle.
"""

import pytest

import repro
from repro import JoinConfig, ParallelPassJoin, PassJoin
from repro.core.parallel import (chunk_spans, default_chunk_size,
                                 resolve_backend, resolve_workers)
from repro.exceptions import ConfigurationError

from helpers import brute_force_pairs, brute_force_rs_pairs, random_strings


@pytest.fixture(scope="module")
def mixed_strings():
    """Collision-rich strings including ones shorter than tau + 1."""
    return ["", "a", "b", "ab", "ba"] + random_strings(
        110, 1, 14, alphabet="abc", seed=23)


@pytest.fixture(scope="module")
def serial_result(mixed_strings):
    return PassJoin(2).self_join(mixed_strings)


class TestSelfJoinEquality:
    TAU = 2

    def test_serial_matches_brute_force(self, mixed_strings, serial_result):
        truth = brute_force_pairs(mixed_strings, self.TAU)
        assert serial_result.pair_ids() == set(truth)
        for pair in serial_result:
            assert pair.distance == truth[pair.ids()]

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("chunk_size", [None, 7])
    def test_parallel_matches_serial(self, mixed_strings, serial_result,
                                     workers, chunk_size):
        engine = ParallelPassJoin(self.TAU, workers=workers,
                                  chunk_size=chunk_size)
        result = engine.self_join(mixed_strings)
        assert result.sorted_pairs() == serial_result.sorted_pairs()

    def test_single_string_chunks(self, mixed_strings, serial_result):
        engine = ParallelPassJoin(self.TAU, workers=2, chunk_size=1)
        result = engine.self_join(mixed_strings)
        assert result.sorted_pairs() == serial_result.sorted_pairs()

    def test_thread_backend(self, mixed_strings, serial_result):
        engine = ParallelPassJoin(self.TAU, workers=3, chunk_size=11,
                                  backend="thread")
        result = engine.self_join(mixed_strings)
        assert result.sorted_pairs() == serial_result.sorted_pairs()

    def test_pair_order_matches_serial(self, mixed_strings, serial_result):
        # Stronger than set equality: chunks concatenate back into the
        # serial driver's emission order, so output is deterministic.
        result = ParallelPassJoin(self.TAU, workers=2,
                                  chunk_size=13).self_join(mixed_strings)
        assert result.pairs == serial_result.pairs

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_randomized_collections(self, seed):
        strings = random_strings(90, 1, 12, alphabet="ab", seed=seed)
        truth = brute_force_pairs(strings, 1)
        result = ParallelPassJoin(1, workers=4, chunk_size=9,
                                  backend="thread").self_join(strings)
        assert result.pair_ids() == set(truth)
        for pair in result:
            assert pair.distance == truth[pair.ids()]

    def test_all_selection_methods(self, mixed_strings, serial_result):
        for selection in repro.SelectionMethod:
            config = JoinConfig(selection=selection, workers=2, chunk_size=17)
            result = ParallelPassJoin(self.TAU, config).self_join(mixed_strings)
            assert result.pair_ids() == serial_result.pair_ids(), selection

    def test_all_verification_methods(self, mixed_strings, serial_result):
        for verification in repro.VerificationMethod:
            config = JoinConfig(verification=verification, workers=2,
                                chunk_size=17)
            result = ParallelPassJoin(self.TAU, config).self_join(mixed_strings)
            assert result.pair_ids() == serial_result.pair_ids(), verification

    def test_workers_one_is_exactly_serial(self, mixed_strings, serial_result):
        result = ParallelPassJoin(self.TAU, workers=1).self_join(mixed_strings)
        assert result.pairs == serial_result.pairs
        assert (result.statistics.num_candidates
                == serial_result.statistics.num_candidates)
        assert (result.statistics.num_verifications
                == serial_result.statistics.num_verifications)

    def test_empty_and_tiny_collections(self):
        assert ParallelPassJoin(2, workers=4).self_join([]).pairs == []
        assert ParallelPassJoin(2, workers=4).self_join(["abc"]).pairs == []


class TestRSJoinEquality:
    TAU = 2

    @pytest.fixture(scope="class")
    def left(self):
        return ["", "x"] + random_strings(70, 1, 12, alphabet="abx", seed=31)

    @pytest.fixture(scope="class")
    def right(self):
        return ["y", "xy"] + random_strings(80, 1, 12, alphabet="abx", seed=32)

    @pytest.fixture(scope="class")
    def serial_rs(self, left, right):
        return PassJoin(self.TAU).join(left, right)

    def test_serial_matches_brute_force(self, left, right, serial_rs):
        truth = brute_force_rs_pairs(left, right, self.TAU)
        assert serial_rs.pair_ids() == set(truth)
        for pair in serial_rs:
            assert pair.distance == truth[pair.ids()]

    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("chunk_size", [None, 5])
    def test_parallel_matches_serial(self, left, right, serial_rs, workers,
                                     chunk_size):
        engine = ParallelPassJoin(self.TAU, workers=workers,
                                  chunk_size=chunk_size)
        result = engine.join(left, right)
        assert result.sorted_pairs() == serial_rs.sorted_pairs()

    def test_thread_backend(self, left, right, serial_rs):
        result = ParallelPassJoin(self.TAU, workers=3, chunk_size=8,
                                  backend="thread").join(left, right)
        assert result.sorted_pairs() == serial_rs.sorted_pairs()

    def test_shared_ids_stay_distinct_collections(self):
        # In an R-S join equal ids on both sides are different strings and
        # must still pair up (allow_same_id path).
        result = ParallelPassJoin(1, workers=2, chunk_size=2).join(
            ["vldb", "icde"], ["vldb", "edbt"])
        assert (0, 0) in result.pair_ids()


class TestConvenienceAPI:
    def test_join_self(self):
        result = repro.join(["vldb", "pvldb", "icde"], tau=1, workers=2)
        assert result.pair_ids() == {(0, 1)}

    def test_join_rs(self):
        result = repro.join(["vldb"], tau=1, right=["pvldb", "edbt"],
                            workers=2, chunk_size=1)
        assert result.pair_ids() == {(0, 0)}

    def test_join_defaults_to_serial(self):
        result = repro.join(["vldb", "pvldb"], tau=1)
        assert result.pair_ids() == {(0, 1)}

    def test_parallel_self_join_uses_all_cpus(self):
        result = repro.parallel_self_join(["vldb", "pvldb", "icde"], tau=1)
        assert result.pair_ids() == {(0, 1)}

    def test_statistics_are_merged(self):
        strings = random_strings(60, 3, 10, seed=4)
        result = repro.join(strings, tau=1, workers=2, chunk_size=10)
        stats = result.statistics
        assert stats.num_strings == len(strings)
        assert stats.num_results == len(result)
        assert stats.num_verifications > 0
        assert stats.index_entries > 0
        assert stats.total_seconds > 0


class TestKnobs:
    def test_resolve_workers(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers(0) >= 1

    def test_resolve_backend(self):
        assert resolve_backend("thread") == "thread"
        assert resolve_backend("process") == "process"
        assert resolve_backend("auto") in ("process", "thread")
        with pytest.raises(ConfigurationError):
            resolve_backend("rayon")

    def test_default_chunk_size(self):
        assert default_chunk_size(0, 4) == 1
        assert default_chunk_size(100, 4) == 7  # ceil(100 / 16)
        assert default_chunk_size(10**9, 4) == 4096  # bounded

    def test_chunk_spans_cover_range(self):
        spans = chunk_spans(10, 3)
        assert spans == [(0, 3), (3, 6), (6, 9), (9, 10)]
        assert chunk_spans(0, 3) == []

    def test_engine_reads_config_fields(self):
        config = JoinConfig(workers=2, chunk_size=5)
        engine = ParallelPassJoin(1, config)
        assert engine.config.workers == 2
        assert engine.config.chunk_size == 5

    def test_constructor_overrides_config(self):
        config = JoinConfig(workers=2, chunk_size=5)
        engine = ParallelPassJoin(1, config, workers=4, chunk_size=9)
        assert engine.config.workers == 4
        assert engine.config.chunk_size == 9

    def test_concurrent_runs_in_one_process(self, mixed_strings, serial_result):
        """Overlapping parallel runs are supported: each gets its own context."""
        from concurrent.futures import ThreadPoolExecutor

        def run(_):
            engine = ParallelPassJoin(2, workers=2, chunk_size=9,
                                      backend="thread")
            return engine.self_join(mixed_strings)

        with ThreadPoolExecutor(max_workers=3) as pool:
            results = list(pool.map(run, range(3)))
        for result in results:
            assert result.sorted_pairs() == serial_result.sorted_pairs()
