"""Unit tests for the threshold-bounded (banded) edit-distance kernels."""

import pytest

from repro.distance.banded import banded_edit_distance, length_aware_edit_distance
from repro.distance.levenshtein import edit_distance
from repro.exceptions import InvalidThresholdError
from repro.types import JoinStatistics

KERNELS = [banded_edit_distance, length_aware_edit_distance]


@pytest.mark.parametrize("kernel", KERNELS)
class TestBoundedKernels:
    def test_identical(self, kernel):
        assert kernel("pass-join", "pass-join", 2) == 0

    def test_within_threshold_returns_exact_distance(self, kernel):
        assert kernel("kitten", "sitting", 3) == 3
        assert kernel("vldb", "pvldb", 2) == 1

    def test_above_threshold_returns_tau_plus_one(self, kernel):
        assert kernel("kitten", "sitting", 2) == 3

    def test_length_difference_short_circuit(self, kernel):
        assert kernel("ab", "abcdefgh", 3) == 4

    def test_tau_zero(self, kernel):
        assert kernel("abc", "abc", 0) == 0
        assert kernel("abc", "abd", 0) == 1

    def test_empty_strings(self, kernel):
        assert kernel("", "", 0) == 0
        assert kernel("", "ab", 2) == 2
        assert kernel("", "ab", 1) == 2

    def test_paper_verification_example(self, kernel):
        # Section 5.1: the pair is not similar at tau = 3.
        assert kernel("kaushuk chadhui", "caushik chakrabar", 3) == 4

    def test_invalid_threshold(self, kernel):
        with pytest.raises(InvalidThresholdError):
            kernel("a", "b", -1)
        with pytest.raises(InvalidThresholdError):
            kernel("a", "b", 1.5)

    def test_agrees_with_exact_distance_on_grid(self, kernel):
        words = ["", "a", "ab", "abc", "acb", "abcd", "badc", "abcde", "xbcde",
                 "partition", "partitions", "petition"]
        for a in words:
            for b in words:
                exact = edit_distance(a, b)
                for tau in range(0, 6):
                    expected = exact if exact <= tau else tau + 1
                    assert kernel(a, b, tau) == expected, (a, b, tau)


class TestStatisticsAccounting:
    def test_cells_counted(self):
        stats = JoinStatistics()
        length_aware_edit_distance("partition", "partitions", 3, stats)
        assert stats.num_matrix_cells > 0

    def test_length_aware_visits_fewer_cells_than_banded(self):
        a = "an unexpectedly long string about similarity joins"
        b = "an unexpectedly long string about similarity joinz"
        banded_stats = JoinStatistics()
        aware_stats = JoinStatistics()
        banded_edit_distance(a, b, 4, banded_stats)
        length_aware_edit_distance(a, b, 4, aware_stats)
        assert aware_stats.num_matrix_cells < banded_stats.num_matrix_cells

    def test_early_termination_counted(self):
        stats = JoinStatistics()
        result = length_aware_edit_distance("aaaaaaaaaa", "bbbbbbbbbb", 3, stats)
        assert result == 4
        assert stats.num_early_terminations == 1

    def test_early_termination_stops_before_last_row(self):
        # The expected-edit-distance rule should stop long before the end.
        a = "zzzz" + "a" * 40
        b = "yyyy" + "a" * 40
        full = JoinStatistics()
        length_aware_edit_distance(a, b, 3, full)
        # A near-identical computation of the same length runs to completion:
        complete = JoinStatistics()
        length_aware_edit_distance("a" * 44, "a" * 43 + "b", 3, complete)
        assert full.num_matrix_cells < complete.num_matrix_cells
