"""Smoke tests for the parallel-scaling experiment and its benchmark script."""

import os
import subprocess
import sys
from pathlib import Path

from repro.bench.experiments import EXPERIMENTS, parallel_scaling

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "benchmarks" / "bench_parallel_scaling.py"


def test_parallel_scaling_experiment_tiny():
    table = parallel_scaling(scale=0.05, name="author", tau=1,
                             worker_counts=(1, 2), backend="thread")
    assert table.column("workers") == [1, 2]
    # Identical result sets regardless of worker count.
    assert len(set(table.column("results"))) == 1
    assert table.filter_rows(workers=1)[0]["speedup"] == 1.0
    assert table.filter_rows(workers=1)[0]["backend"] == "serial"
    assert "CPU(s) available" in table.notes


def test_parallel_scaling_is_registered():
    assert EXPERIMENTS["parallel-scaling"] is parallel_scaling


def test_benchmark_script_runs_on_tiny_dataset():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run(
        [sys.executable, str(SCRIPT), "--size", "200", "--tau", "1",
         "--workers", "1", "2"],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr
    assert "workers=1" in proc.stdout and "workers=2" in proc.stdout
    assert "speedup=" in proc.stdout
