"""Unit tests for the even-partition scheme (Section 3.1)."""

import pytest

from repro.config import PartitionStrategy
from repro.core.partition import (can_partition, minimum_partition_length,
                                  partition, segment_layout, segment_lengths)
from repro.exceptions import InvalidPartitionError, InvalidThresholdError


class TestSegmentLengths:
    def test_paper_example_vankatesh(self):
        # |s| = 9, tau = 3: k = 1, so three segments of length 2 and one of 3.
        assert segment_lengths(9, 3) == (2, 2, 2, 3)

    def test_exact_division(self):
        assert segment_lengths(12, 3) == (3, 3, 3, 3)

    def test_remainder_goes_to_last_segments(self):
        assert segment_lengths(10, 3) == (2, 2, 3, 3)
        assert segment_lengths(11, 3) == (2, 3, 3, 3)

    def test_lengths_sum_to_string_length(self):
        for length in range(4, 60):
            for tau in range(0, 4):
                if length < tau + 1:
                    continue
                assert sum(segment_lengths(length, tau)) == length

    def test_lengths_differ_by_at_most_one(self):
        for length in range(5, 80):
            for tau in range(0, 6):
                if length < tau + 1:
                    continue
                lengths = segment_lengths(length, tau)
                assert max(lengths) - min(lengths) <= 1

    def test_tau_zero_single_segment(self):
        assert segment_lengths(7, 0) == (7,)

    def test_minimum_length_one_character_segments(self):
        assert segment_lengths(4, 3) == (1, 1, 1, 1)

    def test_too_short_raises(self):
        with pytest.raises(InvalidPartitionError):
            segment_lengths(3, 3)

    def test_invalid_threshold_raises(self):
        with pytest.raises(InvalidThresholdError):
            segment_lengths(10, -1)

    def test_left_heavy_strategy(self):
        assert segment_lengths(10, 3, PartitionStrategy.LEFT_HEAVY) == (1, 1, 1, 7)

    def test_right_heavy_strategy(self):
        assert segment_lengths(10, 3, PartitionStrategy.RIGHT_HEAVY) == (7, 1, 1, 1)


class TestSegmentLayout:
    def test_paper_example_layout(self):
        # "vankatesh": segments va | nk | at | esh
        assert segment_layout(9, 3) == ((0, 2), (2, 2), (4, 2), (6, 3))

    def test_layout_is_contiguous_and_covers_string(self):
        for length in range(5, 60):
            for tau in range(0, 5):
                if length < tau + 1:
                    continue
                layout = segment_layout(length, tau)
                position = 0
                for start, seg_len in layout:
                    assert start == position
                    position += seg_len
                assert position == length

    def test_layout_cached_instances_are_equal(self):
        assert segment_layout(20, 2) is segment_layout(20, 2)


class TestPartition:
    def test_paper_example_vankatesh(self):
        segments = partition("vankatesh", 3)
        assert [segment.text for segment in segments] == ["va", "nk", "at", "esh"]
        assert [segment.ordinal for segment in segments] == [1, 2, 3, 4]
        assert [segment.start for segment in segments] == [0, 2, 4, 6]

    def test_paper_example_kaushic_chaduri(self):
        # Figure 1: "kaushic chaduri" -> kau | shic | _cha | duri
        segments = partition("kaushic chaduri", 3)
        assert [segment.text for segment in segments] == ["kau", "shic", " cha", "duri"]

    def test_segments_reassemble_to_string(self):
        text = "an arbitrary example string"
        for tau in range(0, 6):
            assert "".join(seg.text for seg in partition(text, tau)) == text

    def test_number_of_segments_is_tau_plus_one(self):
        for tau in range(0, 6):
            assert len(partition("abcdefghij", tau)) == tau + 1

    def test_partition_too_short_string_raises(self):
        with pytest.raises(InvalidPartitionError):
            partition("ab", 3)


class TestHelpers:
    def test_minimum_partition_length(self):
        assert minimum_partition_length(0) == 1
        assert minimum_partition_length(4) == 5

    def test_can_partition(self):
        assert can_partition(5, 4)
        assert not can_partition(4, 4)
