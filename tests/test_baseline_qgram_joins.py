"""Tests for the q-gram baselines: All-Pairs-Ed and ED-Join."""

import pytest

from repro.baselines.all_pairs_ed import AllPairsEdJoin, all_pairs_ed_join
from repro.baselines.ed_join import EdJoin, ed_join, min_edit_errors
from repro.baselines.qgram import positional_qgrams

from helpers import brute_force_pairs, random_strings


class TestMinEditErrors:
    def test_empty_set_needs_no_edits(self):
        assert min_edit_errors([], 3) == 0

    def test_single_gram_needs_one_edit(self):
        assert min_edit_errors(positional_qgrams("abc", 3), 3) == 1

    def test_disjoint_grams_need_one_edit_each(self):
        grams = [g for g in positional_qgrams("abcdefgh", 2) if g.position % 2 == 0]
        assert min_edit_errors(grams, 2) == 4

    def test_overlapping_grams_can_share_an_edit(self):
        # grams at positions 0 and 1 with q=2 overlap at position 1.
        grams = positional_qgrams("abc", 2)
        assert min_edit_errors(grams, 2) == 1

    def test_order_does_not_matter(self):
        grams = positional_qgrams("abcdefghij", 3)
        assert min_edit_errors(list(reversed(grams)), 3) == min_edit_errors(grams, 3)


class TestEdJoinPrefix:
    def test_prefix_is_no_longer_than_all_pairs_prefix(self):
        strings = random_strings(50, 8, 20, alphabet="abcdef", seed=8)
        tau, q = 2, 3
        ed = EdJoin(tau, q)
        ap = AllPairsEdJoin(tau, q)
        from collections import Counter
        from repro.baselines.qgram import gram_document_frequencies, order_grams
        frequencies = gram_document_frequencies(strings, q)
        for text in strings:
            ordered = order_grams(positional_qgrams(text, q), frequencies)
            ed_prefix = ed.prefix_grams(ordered, len(text))
            ap_prefix = ap.prefix_grams(ordered, len(text))
            if ed_prefix is not None and ap_prefix is not None:
                assert len(ed_prefix) <= len(ap_prefix)

    def test_unfilterable_string_returns_none(self):
        # A 3-character string with q=3 has one gram; one edit destroys it,
        # so no prefix can certify tau = 2.
        ed = EdJoin(2, 3)
        ordered = positional_qgrams("abc", 3)
        assert ed.prefix_grams(ordered, 3) is None


@pytest.mark.parametrize("factory,q", [
    (all_pairs_ed_join, 2),
    (all_pairs_ed_join, 3),
    (ed_join, 2),
    (ed_join, 3),
])
class TestQGramJoinCorrectness:
    def test_paper_example(self, paper_strings, factory, q):
        result = factory(paper_strings, 3, q=q)
        assert {(pair.left, pair.right) for pair in result} == {
            ("kaushik chakrab", "caushik chakrabar")}

    @pytest.mark.parametrize("tau", [0, 1, 2, 3])
    def test_matches_brute_force_on_random_strings(self, factory, q, tau):
        strings = random_strings(90, 2, 16, alphabet="abc", seed=17)
        truth = set(brute_force_pairs(strings, tau))
        assert factory(strings, tau, q=q).pair_ids() == truth

    def test_matches_brute_force_on_name_data(self, name_like_strings, factory, q):
        tau = 2
        truth = set(brute_force_pairs(name_like_strings, tau))
        assert factory(name_like_strings, tau, q=q).pair_ids() == truth


class TestQGramJoinBehaviour:
    def test_invalid_q_rejected(self):
        with pytest.raises(ValueError):
            AllPairsEdJoin(2, q=0)

    def test_ed_join_generates_no_more_candidates_than_all_pairs(self,
                                                                 name_like_strings):
        tau, q = 2, 3
        ap = AllPairsEdJoin(tau, q).self_join(name_like_strings)
        ed = EdJoin(tau, q).self_join(name_like_strings)
        assert ed.pair_ids() == ap.pair_ids()
        assert ed.statistics.num_candidates <= ap.statistics.num_candidates

    def test_statistics_populated(self, name_like_strings):
        stats = EdJoin(2, 3).self_join(name_like_strings).statistics
        assert stats.num_strings == len(name_like_strings)
        assert stats.index_entries > 0
        assert stats.index_bytes > 0
        assert stats.num_candidates >= stats.num_results

    def test_empty_collection(self):
        assert len(EdJoin(2).self_join([])) == 0
        assert len(AllPairsEdJoin(2).self_join([])) == 0
