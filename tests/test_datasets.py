"""Tests for the dataset substrate: generators, corruption, loaders, stats."""

import random

import pytest

from repro.datasets import (DatasetSpec, apply_random_edits, dataset_statistics,
                            generate_author_dataset, generate_dataset,
                            generate_querylog_dataset, generate_title_dataset,
                            length_histogram, load_strings, make_near_duplicate,
                            save_strings)
from repro.datasets.vocabulary import expanded_vocabulary, zipf_choice
from repro.distance import edit_distance
from repro.exceptions import DatasetError


class TestGenerators:
    def test_requested_cardinality(self):
        assert len(generate_author_dataset(321)) == 321
        assert len(generate_querylog_dataset(100)) == 100
        assert len(generate_title_dataset(50)) == 50

    def test_deterministic_given_seed(self):
        assert generate_author_dataset(200, seed=1) == generate_author_dataset(200, seed=1)
        assert generate_author_dataset(200, seed=1) != generate_author_dataset(200, seed=2)

    def test_author_lengths_are_short(self):
        stats = dataset_statistics(generate_author_dataset(1500))
        assert 10 <= stats.avg_length <= 22
        assert stats.min_length >= 3

    def test_querylog_lengths_are_medium(self):
        stats = dataset_statistics(generate_querylog_dataset(800))
        assert 35 <= stats.avg_length <= 65
        assert stats.min_length >= 25

    def test_title_lengths_are_long(self):
        stats = dataset_statistics(generate_title_dataset(400))
        assert 80 <= stats.avg_length <= 140

    def test_relative_length_ordering_matches_table2(self):
        author = dataset_statistics(generate_author_dataset(500)).avg_length
        querylog = dataset_statistics(generate_querylog_dataset(500)).avg_length
        title = dataset_statistics(generate_title_dataset(500)).avg_length
        assert author < querylog < title

    def test_duplicates_are_planted(self):
        # With a high duplicate fraction the self join must find many pairs.
        from repro import pass_join
        strings = generate_author_dataset(300, duplicate_fraction=0.4)
        assert len(pass_join(strings, 2)) > 10

    def test_zero_duplicate_fraction_is_allowed(self):
        strings = generate_dataset(DatasetSpec("author", 100, duplicate_fraction=0.0))
        assert len(strings) == 100

    def test_unknown_dataset_name(self):
        with pytest.raises(DatasetError):
            generate_dataset(DatasetSpec("nonexistent", 10))

    def test_invalid_spec_values(self):
        with pytest.raises(DatasetError):
            DatasetSpec("author", -1)
        with pytest.raises(DatasetError):
            DatasetSpec("author", 10, duplicate_fraction=1.5)
        with pytest.raises(DatasetError):
            DatasetSpec("author", 10, max_duplicate_edits=0)

    def test_empty_dataset(self):
        assert generate_author_dataset(0) == []


class TestVocabulary:
    def test_expanded_vocabulary_size_and_determinism(self):
        vocab = expanded_vocabulary("first", 500)
        assert len(vocab) == 500
        assert len(set(vocab)) == 500
        assert expanded_vocabulary("first", 500) == vocab

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            expanded_vocabulary("verbs", 10)

    def test_zipf_choice_prefers_low_ranks(self):
        vocab = expanded_vocabulary("query", 1000)
        rng = random.Random(0)
        picks = [zipf_choice(vocab, rng) for _ in range(2000)]
        top_share = sum(1 for word in picks if word in vocab[:100]) / len(picks)
        assert top_share > 0.3  # the head of the distribution dominates


class TestCorruption:
    def test_zero_edits_is_identity(self, rng):
        assert apply_random_edits("unchanged", 0, rng) == "unchanged"

    def test_negative_edits_rejected(self, rng):
        with pytest.raises(ValueError):
            apply_random_edits("abc", -1, rng)

    def test_edit_distance_bounded_by_edit_count(self, rng):
        for _ in range(50):
            edits = rng.randint(1, 4)
            original = "some reference string value"
            corrupted = apply_random_edits(original, edits, rng)
            assert edit_distance(original, corrupted) <= edits

    def test_make_near_duplicate_within_bound(self, rng):
        for _ in range(30):
            duplicate = make_near_duplicate("similarity joins", rng, max_edits=3)
            assert 0 <= edit_distance("similarity joins", duplicate) <= 3

    def test_make_near_duplicate_invalid_bound(self, rng):
        with pytest.raises(ValueError):
            make_near_duplicate("abc", rng, max_edits=0)


class TestLoaders:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "strings.txt"
        strings = ["alpha", "beta gamma", "délta"]
        assert save_strings(path, strings) == 3
        assert load_strings(path) == strings

    def test_load_with_limit(self, tmp_path):
        path = tmp_path / "strings.txt"
        save_strings(path, [f"string-{i}" for i in range(100)])
        assert len(load_strings(path, limit=7)) == 7

    def test_empty_lines_are_skipped(self, tmp_path):
        path = tmp_path / "strings.txt"
        path.write_text("one\n\ntwo\n\n", encoding="utf-8")
        assert load_strings(path) == ["one", "two"]

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_strings(tmp_path / "missing.txt")

    def test_newlines_rejected_on_save(self, tmp_path):
        with pytest.raises(DatasetError):
            save_strings(tmp_path / "bad.txt", ["has\nnewline"])


class TestStats:
    def test_dataset_statistics(self):
        stats = dataset_statistics(["ab", "abcd", "abcdef"])
        assert stats.cardinality == 3
        assert stats.avg_length == 4.0
        assert stats.min_length == 2 and stats.max_length == 6
        assert stats.as_row()["avg_len"] == 4.0

    def test_empty_collection(self):
        stats = dataset_statistics([])
        assert stats.cardinality == 0
        assert stats.avg_length == 0.0

    def test_length_histogram_exact(self):
        histogram = length_histogram(["a", "bb", "cc", "dddd"])
        assert histogram == {1: 1, 2: 2, 4: 1}

    def test_length_histogram_buckets(self):
        histogram = length_histogram(["a" * n for n in (3, 7, 12, 14)], bucket_size=5)
        assert histogram == {0: 1, 5: 1, 10: 2}

    def test_length_histogram_counts_sum_to_cardinality(self):
        strings = generate_author_dataset(400)
        histogram = length_histogram(strings, bucket_size=3)
        assert sum(histogram.values()) == len(strings)

    def test_invalid_bucket_size(self):
        with pytest.raises(ValueError):
            length_histogram(["abc"], bucket_size=0)
