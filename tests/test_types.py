"""Unit tests for the shared value types."""

import pytest

from repro.types import (JoinResult, JoinStatistics, Segment, SimilarPair,
                         StringRecord, as_records, normalise_pair,
                         records_by_length)


class TestStringRecord:
    def test_length_property(self):
        record = StringRecord(id=3, text="vldb")
        assert record.length == 4
        assert len(record) == 4

    def test_is_hashable_and_frozen(self):
        record = StringRecord(id=1, text="a")
        assert hash(record) == hash(StringRecord(id=1, text="a"))
        with pytest.raises(AttributeError):
            record.text = "b"


class TestAsRecords:
    def test_plain_strings_are_numbered(self):
        records = as_records(["a", "b", "c"])
        assert [(record.id, record.text) for record in records] == [
            (0, "a"), (1, "b"), (2, "c")]

    def test_existing_records_pass_through(self):
        original = [StringRecord(id=10, text="x"), StringRecord(id=20, text="y")]
        assert as_records(original) == original

    def test_mixed_input(self):
        records = as_records(["a", StringRecord(id=7, text="b")])
        assert records[0] == StringRecord(id=0, text="a")
        assert records[1] == StringRecord(id=7, text="b")

    def test_empty_input(self):
        assert as_records([]) == []

    def test_non_string_items_are_stringified(self):
        assert as_records([123])[0].text == "123"


class TestSegment:
    def test_end_and_length(self):
        segment = Segment(ordinal=2, start=3, text="nk")
        assert segment.length == 2
        assert segment.end == 5


class TestSimilarPair:
    def test_normalise_pair_orders_ids(self):
        pair = normalise_pair(5, 2, 1, "aaa", "bbb")
        assert pair.left_id == 2 and pair.right_id == 5
        assert pair.left == "bbb" and pair.right == "aaa"

    def test_normalise_pair_keeps_order_when_already_sorted(self):
        pair = normalise_pair(2, 5, 1, "aaa", "bbb")
        assert pair.left == "aaa" and pair.right == "bbb"

    def test_ids_tuple(self):
        assert SimilarPair(1, 2, 0).ids() == (1, 2)

    def test_ordering_ignores_texts(self):
        a = SimilarPair(1, 2, 0, left="x", right="y")
        b = SimilarPair(1, 3, 0, left="a", right="b")
        assert a < b


class TestJoinStatistics:
    def test_merge_adds_counters(self):
        first = JoinStatistics(num_candidates=3, total_seconds=1.0)
        second = JoinStatistics(num_candidates=4, total_seconds=0.5)
        merged = first.merge(second)
        assert merged.num_candidates == 7
        assert merged.total_seconds == 1.5
        # merge must not mutate the inputs
        assert first.num_candidates == 3

    def test_as_dict_round_trip(self):
        stats = JoinStatistics(num_results=5)
        assert stats.as_dict()["num_results"] == 5


class TestJoinResult:
    def test_len_iter_and_pair_ids(self):
        pairs = [SimilarPair(0, 1, 1), SimilarPair(2, 3, 0)]
        result = JoinResult(pairs=pairs)
        assert len(result) == 2
        assert list(result) == pairs
        assert result.pair_ids() == {(0, 1), (2, 3)}

    def test_sorted_pairs(self):
        result = JoinResult(pairs=[SimilarPair(5, 6, 1), SimilarPair(0, 2, 2)])
        assert result.sorted_pairs()[0].left_id == 0


class TestRecordsByLength:
    def test_grouping(self):
        records = as_records(["a", "bb", "cc", "ddd"])
        groups = records_by_length(records)
        assert {length: len(group) for length, group in groups.items()} == {
            1: 1, 2: 2, 3: 1}
