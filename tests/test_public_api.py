"""Tests of the top-level package surface (imports, __all__, docstrings)."""

import importlib
import pydoc

import repro


def test_version_is_exposed():
    assert repro.__version__ == "1.0.0"


def test_all_names_are_importable():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quickstart_from_module_docstring_works():
    result = repro.pass_join(["vldb", "pvldb", "sigmod", "sigmmod"], tau=1)
    assert sorted((pair.left, pair.right) for pair in result) == [
        ("sigmod", "sigmmod"), ("vldb", "pvldb")]


def test_subpackages_import_cleanly():
    for module in ("repro.core", "repro.distance", "repro.filters",
                   "repro.baselines", "repro.datasets", "repro.bench",
                   "repro.cli"):
        importlib.import_module(module)


def test_public_symbols_have_docstrings():
    undocumented = []
    for name in repro.__all__:
        if name.startswith("__"):
            continue
        obj = getattr(repro, name)
        if callable(obj) and not pydoc.getdoc(obj):
            undocumented.append(name)
    assert not undocumented, f"missing docstrings: {undocumented}"


def test_every_module_has_a_docstring():
    import pkgutil

    missing = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        module = importlib.import_module(info.name)
        if not module.__doc__:
            missing.append(info.name)
    assert not missing, f"modules without docstrings: {missing}"
