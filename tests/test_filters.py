"""Unit and property tests for the filtering primitives."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.distance import edit_distance
from repro.filters import (content_filter_passes, count_filter_passes,
                           frequency_distance_lower_bound, length_filter_passes,
                           minimum_shared_grams, positional_match_possible,
                           prefix_length_for_edit_distance, prefixes_share_gram)
from repro.filters.length_filter import compatible_length_range
from repro.baselines.qgram import qgrams

texts = st.text(alphabet="abcd", max_size=16)
taus = st.integers(min_value=0, max_value=4)


class TestLengthFilter:
    def test_passes_within_threshold(self):
        assert length_filter_passes(10, 12, 2)

    def test_fails_beyond_threshold(self):
        assert not length_filter_passes(10, 13, 2)

    def test_symmetric(self):
        assert length_filter_passes(13, 10, 3) == length_filter_passes(10, 13, 3)

    def test_compatible_length_range_clamped_at_zero(self):
        assert list(compatible_length_range(1, 3)) == [0, 1, 2, 3, 4]

    @given(a=texts, b=texts, tau=taus)
    @settings(max_examples=200, deadline=None)
    def test_never_prunes_a_similar_pair(self, a, b, tau):
        if edit_distance(a, b) <= tau:
            assert length_filter_passes(len(a), len(b), tau)


class TestCountFilter:
    def test_minimum_shared_grams_formula(self):
        assert minimum_shared_grams(10, 12, 2, 1) == 12 - 2 + 1 - 2

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            minimum_shared_grams(5, 5, 0, 1)

    def test_vacuous_bound_always_passes(self):
        assert count_filter_passes(["ab"], ["cd"], 2, 2, 2, 3)

    def test_prunes_obviously_different_strings(self):
        a, b = "aaaaaaaaaa", "bbbbbbbbbb"
        assert not count_filter_passes(qgrams(a, 2), qgrams(b, 2),
                                       len(a), len(b), 2, 1)

    @given(a=texts, b=texts, tau=taus, q=st.integers(min_value=1, max_value=3))
    @settings(max_examples=300, deadline=None)
    def test_never_prunes_a_similar_pair(self, a, b, tau, q):
        if edit_distance(a, b) <= tau:
            assert count_filter_passes(qgrams(a, q), qgrams(b, q),
                                       len(a), len(b), q, tau)


class TestPositionalFilter:
    def test_within_and_beyond(self):
        assert positional_match_possible(4, 6, 2)
        assert not positional_match_possible(4, 7, 2)


class TestPrefixFilter:
    def test_prefix_length(self):
        assert prefix_length_for_edit_distance(3, 2) == 7

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            prefix_length_for_edit_distance(0, 2)

    def test_prefixes_share_gram(self):
        assert prefixes_share_gram(["ab", "cd", "ef"], ["zz", "cd"], 2, 2)
        assert not prefixes_share_gram(["ab", "cd"], ["zz", "yy"], 2, 2)


class TestContentFilter:
    def test_lower_bound_examples(self):
        assert frequency_distance_lower_bound("abc", "abc") == 0
        assert frequency_distance_lower_bound("abc", "abd") == 1
        assert frequency_distance_lower_bound("aaaa", "bbbb") == 4

    def test_filter_passes_and_fails(self):
        assert content_filter_passes("abcd", "abce", 1)
        assert not content_filter_passes("aaaa", "zzzz", 3)

    @given(a=texts, b=texts)
    @settings(max_examples=300, deadline=None)
    def test_is_a_lower_bound_on_edit_distance(self, a, b):
        assert frequency_distance_lower_bound(a, b) <= edit_distance(a, b)

    @given(a=texts, b=texts, tau=taus)
    @settings(max_examples=200, deadline=None)
    def test_never_prunes_a_similar_pair(self, a, b, tau):
        if edit_distance(a, b) <= tau:
            assert content_filter_passes(a, b, tau)
