"""Tests for the Trie-Join baseline."""

import pytest

from repro.baselines.trie_join import Trie, TrieJoin, trie_join
from repro.types import StringRecord

from helpers import brute_force_pairs, random_strings


class TestTrie:
    def test_insert_and_node_count(self):
        trie = Trie()
        trie.insert(StringRecord(0, "abc"))
        trie.insert(StringRecord(1, "abd"))
        # root + a + b + c + d
        assert trie.node_count == 5
        assert trie.record_count == 2

    def test_shared_prefixes_share_nodes(self):
        trie = Trie()
        trie.insert(StringRecord(0, "prefix-one"))
        trie.insert(StringRecord(1, "prefix-two"))
        separate = Trie()
        separate.insert(StringRecord(0, "prefix-one"))
        separate.insert(StringRecord(1, "qrstuv-two"))
        assert trie.node_count < separate.node_count

    def test_duplicate_strings_share_terminal_node(self):
        trie = Trie()
        trie.insert(StringRecord(0, "same"))
        trie.insert(StringRecord(1, "same"))
        terminals = [node for _, node in trie.walk() if node.terminal_records]
        assert len(terminals) == 1
        assert len(terminals[0].terminal_records) == 2

    def test_walk_yields_all_prefixes(self):
        trie = Trie()
        trie.insert(StringRecord(0, "ab"))
        prefixes = {prefix for prefix, _ in trie.walk()}
        assert prefixes == {"", "a", "ab"}

    def test_approximate_bytes_positive(self):
        trie = Trie()
        trie.insert(StringRecord(0, "hello"))
        assert trie.approximate_bytes() > 0
        assert trie.deep_bytes() > 0


class TestTrieJoinCorrectness:
    def test_paper_example(self, paper_strings):
        result = trie_join(paper_strings, 3)
        assert {(pair.left, pair.right) for pair in result} == {
            ("kaushik chakrab", "caushik chakrabar")}

    @pytest.mark.parametrize("tau", [0, 1, 2, 3])
    def test_matches_brute_force(self, tau):
        strings = random_strings(90, 2, 14, alphabet="abc", seed=23)
        truth = set(brute_force_pairs(strings, tau))
        assert trie_join(strings, tau).pair_ids() == truth

    def test_matches_brute_force_on_names(self, name_like_strings):
        truth = set(brute_force_pairs(name_like_strings, 2))
        assert trie_join(name_like_strings, 2).pair_ids() == truth

    def test_distances_are_exact(self):
        result = trie_join(["kitten", "mitten", "sitting"], 3)
        distances = {frozenset((pair.left, pair.right)): pair.distance
                     for pair in result}
        assert distances[frozenset(("kitten", "mitten"))] == 1
        assert distances[frozenset(("kitten", "sitting"))] == 3

    def test_empty_and_duplicates(self):
        assert len(trie_join([], 1)) == 0
        assert trie_join(["x", "x", "x"], 0).pair_ids() == {(0, 1), (0, 2), (1, 2)}


class TestTrieJoinBehaviour:
    def test_statistics_record_trie_size(self, name_like_strings):
        stats = TrieJoin(1).self_join(name_like_strings).statistics
        assert stats.index_entries > len(name_like_strings)  # trie nodes
        assert stats.index_bytes > 0
        assert stats.num_matrix_cells > 0

    def test_prefix_pruning_prunes_branches(self):
        # Two clusters far apart: probing one cluster must prune the other.
        strings = (["aaaaaaaaaa" + suffix for suffix in ("x", "y", "z")]
                   + ["zzzzzzzzzz" + suffix for suffix in ("x", "y", "z")])
        stats = TrieJoin(1).self_join(strings).statistics
        assert stats.num_early_terminations > 0
