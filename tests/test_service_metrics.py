"""Service-level observability: metrics op, stats satellites, slow-query log."""

import json
import logging

import pytest

from repro.config import ServiceConfig
from repro.obs.metrics import parse_prometheus, render_prometheus
from repro.obs.slowlog import SLOW_QUERY_LOGGER_NAME
from repro.service import BackgroundServer, ServiceClient, SimilarityService

STRINGS = ["vldb", "pvldb", "sigmod", "sigmmod", "icde", "edbt"]


def make_service(**config):
    return SimilarityService(STRINGS, ServiceConfig(max_tau=2, **config))


class TestStatsSatellites:
    def test_uptime_requests_by_op_and_errors(self):
        service = make_service()
        service.handle_request({"op": "search", "query": "vldb", "tau": 1})
        service.handle_request({"op": "search", "query": "icde", "tau": 1})
        service.handle_request({"op": "top-k", "query": "vldb", "k": 2})
        service.handle_request({"op": "search", "query": "vldb",
                                "tau": 99})  # error: above max_tau
        stats = service.handle_request({"op": "stats"})
        assert stats["ok"] is True
        assert stats["uptime_seconds"] >= 0
        assert stats["requests_by_op"]["search"] == 3
        assert stats["requests_by_op"]["top-k"] == 1
        assert stats["errors"] == 1

    def test_cache_capacity_and_size_surface_in_stats(self):
        service = make_service(cache_capacity=7)
        service.handle_request({"op": "search", "query": "vldb", "tau": 1})
        stats = service.handle_request({"op": "stats"})
        assert stats["cache"]["capacity"] == 7
        assert stats["cache"]["size"] == 1


class TestMetricsOp:
    def test_merged_snapshot_holds_requests_engine_and_cache(self):
        service = make_service()
        service.handle_request({"op": "search", "query": "vldb", "tau": 1})
        service.handle_request({"op": "search", "query": "vldb", "tau": 1})
        response = service.handle_request({"op": "metrics"})
        assert response["ok"] is True
        assert response["uptime_seconds"] >= 0
        counters = response["merged"]["counters"]
        assert counters["requests.search"] == 2
        assert counters["cache_hits"] == 1
        assert counters["engine_accepted"] >= 2  # vldb + pvldb, probed once
        funnel = [counters.get(name, 0) for name in (
            "engine_postings_scanned", "engine_candidates",
            "engine_verifications", "engine_accepted")]
        assert funnel == sorted(funnel, reverse=True)
        assert response["merged"]["gauges"]["cache_capacity"] == 1024

    def test_histogram_count_equals_request_counter(self):
        service = make_service()
        for _ in range(3):
            service.handle_request({"op": "search", "query": "vldb", "tau": 1})
        service.handle_request({"op": "ping"})
        merged = service.handle_request({"op": "metrics"})["merged"]
        for name, value in merged["counters"].items():
            if name.startswith("requests."):
                op = name[len("requests."):]
                histogram = merged["histograms"][f"latency_seconds.{op}"]
                assert histogram["count"] == value, name

    def test_errors_counted_per_op(self):
        service = make_service()
        service.handle_request({"op": "search", "query": "vldb", "tau": 99})
        merged = service.handle_request({"op": "metrics"})["merged"]
        assert merged["counters"]["errors.search"] == 1

    def test_unknown_ops_pool_under_unknown(self):
        service = make_service()
        service.handle_request({"op": "made-up-op-1"})
        service.handle_request({"op": "made-up-op-2"})
        merged = service.handle_request({"op": "metrics"})["merged"]
        assert merged["counters"]["requests.unknown"] == 2
        assert merged["counters"]["errors.unknown"] == 2
        assert "requests.made-up-op-1" not in merged["counters"]

    def test_rendered_snapshot_is_valid_prometheus(self):
        service = make_service()
        service.handle_request({"op": "search", "query": "vldb", "tau": 1})
        merged = service.handle_request({"op": "metrics"})["merged"]
        families = parse_prometheus(render_prometheus(merged))
        assert "passjoin_requests_search" in families


class TestShardedMetrics:
    def test_thread_backend_reports_per_shard_breakdown(self):
        service = make_service(shards=2, shard_policy="modulo",
                               shard_backend="thread", cache_capacity=0)
        try:
            service.handle_request({"op": "search", "query": "vldb", "tau": 1})
            response = service.handle_request({"op": "metrics"})
            assert response["shards"]["count"] == 2
            per_shard = response["shards"]["per_shard"]
            assert len(per_shard) == 2
            merged = response["merged"]
            assert merged["counters"]["engine_candidates"] == sum(
                shard["counters"].get("engine_candidates", 0)
                for shard in per_shard)
            # "vldb" (id 0) and "pvldb" (id 1) live on different shards
            # under modulo placement: both workers accepted a match.
            accepted = [shard["counters"].get("engine_accepted", 0)
                        for shard in per_shard]
            assert accepted == [1, 1]
        finally:
            service.close()

    def test_fork_worker_counters_survive_the_pipe(self):
        service = make_service(shards=2, shard_policy="modulo",
                               shard_backend="process", cache_capacity=0)
        try:
            for _ in range(2):
                service.handle_request({"op": "search", "query": "vldb",
                                        "tau": 1})
            response = service.handle_request({"op": "metrics"})
            merged = response["merged"]
            assert merged["counters"]["engine_accepted"] == 4
            assert merged["counters"]["requests.search"] == 2
            per_shard = response["shards"]["per_shard"]
            assert sum(shard["counters"].get("engine_accepted", 0)
                       for shard in per_shard) == 4
            assert json.loads(json.dumps(response)) == response
        finally:
            service.close()


class TestSlowQueryLog:
    @pytest.fixture
    def captured(self):
        logger = logging.getLogger(SLOW_QUERY_LOGGER_NAME)
        records = []

        class _Capture(logging.Handler):
            def emit(self, record):
                records.append(record)

        handler = _Capture()
        logger.addHandler(handler)
        logger.setLevel(logging.WARNING)
        try:
            yield records
        finally:
            logger.removeHandler(handler)

    def test_slow_requests_logged_with_truncated_query(self, captured):
        service = make_service(slow_query_ms=0.0001)  # everything is slow
        service.handle_request({"op": "search", "query": "vldb", "tau": 1})
        assert len(captured) == 1
        event = captured[0].slow_query
        assert event["op"] == "search"
        assert event["query"] == "vldb"
        assert event["ok"] is True
        assert event["latency_ms"] >= 0.0001

    def test_threshold_zero_disables_logging(self, captured):
        service = make_service()  # slow_query_ms defaults to 0.0
        service.handle_request({"op": "search", "query": "vldb", "tau": 1})
        assert captured == []

    def test_config_rejects_negative_threshold(self):
        from repro.exceptions import ConfigurationError
        with pytest.raises(ConfigurationError):
            ServiceConfig(slow_query_ms=-1)


class TestOverTheWire:
    @pytest.fixture(scope="class")
    def server_address(self):
        with BackgroundServer(STRINGS,
                              ServiceConfig(port=0, max_tau=2)) as address:
            yield address

    @pytest.fixture
    def client(self, server_address):
        with ServiceClient(*server_address) as client:
            yield client

    def test_metrics_op_over_tcp(self, client):
        client.search("vldb", tau=1)
        payload = client.metrics()
        assert payload["ok"] is True
        counters = payload["merged"]["counters"]
        assert counters["requests.search"] >= 1
        assert counters["engine_accepted"] >= 1

    def test_explain_op_over_tcp(self, client):
        report = client.explain("vldb", tau=1)
        matches = client.search("vldb", tau=1)
        assert report["num_matches"] == len(matches) == 2
        assert report["funnel"]["accepted"] == 2
        assert report["matches"] == [m.to_dict() for m in matches]

    def test_cli_admin_metrics_json(self, server_address, capsys):
        from repro.cli import main
        host, port = server_address
        assert main(["admin", "metrics", "--host", host,
                     "--port", str(port)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "requests.metrics" in payload["merged"]["counters"]

    def test_cli_admin_metrics_prometheus_parses(self, server_address,
                                                 capsys):
        from repro.cli import main
        host, port = server_address
        assert main(["admin", "metrics", "--prometheus", "--host", host,
                     "--port", str(port)]) == 0
        families = parse_prometheus(capsys.readouterr().out)
        assert families["passjoin_requests_metrics"]["type"] == "counter"

    def test_cli_query_explain(self, server_address, capsys):
        from repro.cli import main
        host, port = server_address
        assert main(["query", "vldb", "--tau", "1", "--explain",
                     "--host", host, "--port", str(port)]) == 0
        captured = capsys.readouterr()
        report = json.loads(captured.out)
        assert report["query"] == "vldb"
        assert report["num_matches"] == 2
        assert "accepted=2" in captured.err

    def test_cli_query_explain_rejects_file_mode(self, server_address,
                                                 tmp_path, capsys):
        from repro.cli import main
        host, port = server_address
        queries = tmp_path / "queries.txt"
        queries.write_text("vldb\n")
        assert main(["query", "--file", str(queries), "--explain",
                     "--host", host, "--port", str(port)]) == 2
