"""Unit tests for the bit-parallel Myers kernel."""

import random

import pytest

from repro.distance.banded import length_aware_edit_distance
from repro.distance.levenshtein import edit_distance
from repro.distance.myers import myers_edit_distance, myers_edit_distance_within
from repro.exceptions import InvalidThresholdError


class TestMyersEditDistance:
    def test_identical(self):
        assert myers_edit_distance("pass-join", "pass-join") == 0

    def test_empty(self):
        assert myers_edit_distance("", "") == 0
        assert myers_edit_distance("", "abc") == 3
        assert myers_edit_distance("abc", "") == 3

    def test_kitten_sitting(self):
        assert myers_edit_distance("kitten", "sitting") == 3

    def test_paper_example(self):
        assert myers_edit_distance("kaushic chaduri", "kaushuk chadhui") == 4

    def test_matches_dp_on_random_strings(self):
        rng = random.Random(3)
        for _ in range(200):
            a = "".join(rng.choice("abcd") for _ in range(rng.randint(0, 20)))
            b = "".join(rng.choice("abcd") for _ in range(rng.randint(0, 20)))
            assert myers_edit_distance(a, b) == edit_distance(a, b), (a, b)

    def test_long_pattern_beyond_64_characters(self):
        # Python integers are arbitrary precision, so patterns longer than a
        # machine word must still be handled correctly.
        a = "x" * 100 + "abcdefghij" + "y" * 50
        b = "x" * 100 + "abcdefghij" + "y" * 50
        assert myers_edit_distance(a, b) == 0
        assert myers_edit_distance(a, b[:-3]) == 3
        assert myers_edit_distance(a, b.replace("abcde", "vwxyz")) == 5


class TestMyersBounded:
    def test_within(self):
        assert myers_edit_distance_within("vldb", "pvldb", 2) == 1

    def test_capped(self):
        assert myers_edit_distance_within("aaaa", "bbbb", 2) == 3

    def test_length_short_circuit(self):
        assert myers_edit_distance_within("ab", "abcdefgh", 3) == 4

    def test_invalid_threshold(self):
        with pytest.raises(InvalidThresholdError):
            myers_edit_distance_within("a", "b", -2)

    def test_matches_length_aware_on_random_pairs(self):
        """Regression for the bounded sweep's cutoff.

        The kernel used to compute the unbounded distance and cap the
        result afterwards; with the cutoff it abandons the sweep as soon
        as ``score - remaining > tau``.  Either way it must agree with the
        length-aware DP oracle on every pair — in particular on pairs far
        over the threshold, where the cutoff actually fires.
        """
        rng = random.Random(5)
        for _ in range(300):
            a = "".join(rng.choice("abc") for _ in range(rng.randint(0, 16)))
            b = "".join(rng.choice("abc") for _ in range(rng.randint(0, 16)))
            for tau in (0, 1, 2, 3):
                assert (myers_edit_distance_within(a, b, tau)
                        == length_aware_edit_distance(a, b, tau)), (a, b, tau)

    def test_capped_result_never_exceeds_tau_plus_one(self):
        rng = random.Random(6)
        for _ in range(100):
            a = "".join(rng.choice("ab") for _ in range(12))
            b = "".join(rng.choice("cd") for _ in range(12))
            assert myers_edit_distance_within(a, b, 3) == 4
