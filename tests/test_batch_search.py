"""Tests for the batch-probe executor (``search_many`` / ``search-batch``).

The load-bearing property (the PR's acceptance criterion): over random
query batches interleaved with insert/delete/compact, ``search_many()`` is
**element-identical** to sequential ``search()`` calls — on the static
searcher, the dynamic searcher, and a 2-shard router under both placement
policies.
"""

import asyncio

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ServiceConfig
from repro.exceptions import InvalidThresholdError
from repro.search import PassJoinSearcher
from repro.service import (BackgroundServer, DynamicSearcher, ServiceClient,
                           ShardRouter, SimilarityService)
from repro.service.client import AsyncServiceClient
from repro.service.server import ALL_OPS, BATCH_OP, TOP_K_BATCH_OP

from helpers import random_strings


class TestSearchManyStatic:
    def test_matches_sequential(self):
        strings = random_strings(120, 2, 14, alphabet="abc", seed=3)
        searcher = PassJoinSearcher(strings, max_tau=2)
        queries = random_strings(30, 2, 14, alphabet="abc", seed=4)
        assert searcher.search_many(queries, tau=2) == [
            searcher.search(query, tau=2) for query in queries]

    def test_duplicates_get_independent_result_lists(self):
        searcher = PassJoinSearcher(["vldb", "pvldb"], max_tau=1)
        first, second = searcher.search_many(["vldb", "vldb"], tau=1)
        assert first == second
        first.pop()
        assert len(second) == 2  # no aliasing between duplicate answers

    def test_per_query_taus(self):
        searcher = PassJoinSearcher(["vldb", "pvldb", "sigmod"], max_tau=2)
        loose, tight, default = searcher.search_many(
            ["vldb", "vldb", "vldb"], tau=[2, 0, None])
        assert loose == searcher.search("vldb", tau=2)
        assert tight == searcher.search("vldb", tau=0)
        assert default == searcher.search("vldb")

    def test_empty_batch(self):
        searcher = PassJoinSearcher(["vldb"], max_tau=1)
        assert searcher.search_many([]) == []

    def test_tau_above_max_rejected(self):
        searcher = PassJoinSearcher(["vldb"], max_tau=1)
        with pytest.raises(InvalidThresholdError):
            searcher.search_many(["vldb"], tau=2)
        with pytest.raises(InvalidThresholdError):
            searcher.search_many(["vldb", "vldb"], tau=[1, 2])

    def test_mismatched_tau_sequence_rejected(self):
        searcher = PassJoinSearcher(["vldb"], max_tau=1)
        with pytest.raises(ValueError):
            searcher.search_many(["vldb"], tau=[1, 1])

    def test_short_strings_and_empty_queries(self):
        strings = ["a", "ab", "abcdef", "abcdeg"]
        searcher = PassJoinSearcher(strings, max_tau=2)
        queries = ["", "a", "ab", "abcdef", "zzzzzz"]
        assert searcher.search_many(queries, tau=2) == [
            searcher.search(query, tau=2) for query in queries]


class TestSearchManyDynamic:
    def test_tombstones_are_filtered(self):
        searcher = DynamicSearcher(["vldb", "pvldb", "sigmod"], max_tau=1,
                                   compact_interval=100)
        searcher.delete(1)
        batch = searcher.search_many(["vldb", "pvldb"], tau=1)
        assert batch == [searcher.search("vldb", tau=1),
                         searcher.search("pvldb", tau=1)]
        assert all(match.id != 1
                   for matches in batch for match in matches)

    def test_matches_sequential_after_mutations(self):
        searcher = DynamicSearcher(max_tau=2, compact_interval=2)
        for text in random_strings(60, 2, 12, alphabet="abc", seed=9):
            searcher.insert(text)
        for record_id in (3, 10, 25, 40):
            searcher.delete(record_id)
        queries = random_strings(20, 2, 12, alphabet="abc", seed=10)
        assert searcher.search_many(queries, tau=2) == [
            searcher.search(query, tau=2) for query in queries]


# ----------------------------------------------------------------------
# The acceptance property: batches under interleaved mutations
# ----------------------------------------------------------------------
MUTATIONS = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.text(alphabet="ab", max_size=8)),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=30)),
        st.tuples(st.just("compact"), st.just(None)),
    ), max_size=15)

BATCHES = st.lists(
    st.lists(st.text(alphabet="ab", max_size=8), min_size=1, max_size=6),
    min_size=1, max_size=3)


def _apply(searcher, ops, live):
    for op in ops:
        if op[0] == "insert":
            searcher.insert(op[1])
            live.add(max(live, default=-1) + 1)
        elif op[0] == "delete":
            target = op[1] % (max(live) + 1) if live else 0
            searcher.delete(target)
            live.discard(target)
        else:
            searcher.compact()


class TestBatchEquivalenceProperty:
    @given(ops=MUTATIONS, batches=BATCHES,
           max_tau=st.integers(min_value=0, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_unsharded(self, ops, batches, max_tau):
        searcher = DynamicSearcher(max_tau=max_tau, compact_interval=2)
        live: set[int] = set()
        _apply(searcher, ops, live)
        for batch in batches:
            assert searcher.search_many(batch) == [
                searcher.search(query) for query in batch]
            _apply(searcher, ops[:3], live)

    @pytest.mark.parametrize("policy", ["hash", "length"])
    @given(ops=MUTATIONS, batches=BATCHES,
           max_tau=st.integers(min_value=0, max_value=2))
    @settings(max_examples=40, deadline=None)
    def test_two_shards_both_policies(self, policy, ops, batches, max_tau):
        single = DynamicSearcher(max_tau=max_tau, compact_interval=2)
        router = ShardRouter(shards=2, max_tau=max_tau, policy=policy,
                             backend="thread", compact_interval=2)
        with router:
            live: set[int] = set()
            _apply(single, ops, live)
            live_router: set[int] = set()
            _apply(router, ops, live_router)
            for batch in batches:
                expected = [single.search(query) for query in batch]
                assert router.search_many(batch) == expected
                assert single.search_many(batch) == expected


class TestShardRouterSearchMany:
    def test_matches_sequential_and_unsharded(self):
        strings = random_strings(50, 2, 12, alphabet="abc", seed=15)
        single = DynamicSearcher(strings, max_tau=2)
        for policy in ("hash", "length"):
            with ShardRouter(strings, shards=3, max_tau=2, policy=policy,
                             backend="thread") as router:
                queries = random_strings(12, 2, 12, alphabet="abc", seed=16)
                batch = router.search_many(queries, tau=2)
                assert batch == [single.search(query, tau=2)
                                 for query in queries]

    def test_per_query_taus_route_to_the_right_shards(self):
        strings = ["ab", "abc", "abcdef", "abcdefg"]
        single = DynamicSearcher(strings, max_tau=2)
        with ShardRouter(strings, shards=2, max_tau=2, policy="length",
                         backend="thread") as router:
            queries = ["ab", "abcdef", "abcd"]
            taus = [0, 2, 1]
            assert router.search_many(queries, tau=taus) == [
                single.search(query, tau=tau)
                for query, tau in zip(queries, taus)]


# ----------------------------------------------------------------------
# Serving-core and wire-protocol integration
# ----------------------------------------------------------------------
class TestServiceBatch:
    def test_execute_queries_batches_search_misses(self):
        service = SimilarityService(["vldb", "pvldb", "sigmod"],
                                    ServiceConfig(max_tau=2))
        keys = [("search", "vldb", 1), ("search", "vldb", 1),
                ("top-k", "sigmod", 1, 2), ("search", "sigmod", 0)]
        answers = service.execute_queries(keys)
        assert [cached for _, cached in answers] == [False, False, False, False]
        assert answers[0][0] == service.searcher.search("vldb", 1)
        assert answers[1][0] == answers[0][0]
        assert answers[2][0] == service.searcher.search_top_k("sigmod", 1, 2)
        # The repeat hits the cache now.
        again = service.execute_queries([("search", "vldb", 1)])
        assert again[0][1] is True

    def test_search_batch_op(self):
        service = SimilarityService(["vldb", "pvldb"], ServiceConfig(max_tau=1))
        response = service.handle_request(
            {"op": "search-batch", "queries": ["vldb", "nope"], "tau": 1})
        assert response["ok"] is True
        assert [m["text"] for m in response["results"][0]] == ["vldb", "pvldb"]
        assert response["results"][1] == []
        assert response["cached"] == [False, False]
        assert BATCH_OP in ALL_OPS

    def test_search_batch_op_validates(self):
        service = SimilarityService(["vldb"], ServiceConfig(max_tau=1))
        bad = service.handle_request({"op": "search-batch", "queries": "vldb"})
        assert bad["ok"] is False and "queries" in bad["error"]
        bad_tau = service.handle_request(
            {"op": "search-batch", "queries": ["vldb"], "tau": 9})
        assert bad_tau["ok"] is False

    def test_max_query_batch_is_enforced(self):
        service = SimilarityService(
            ["vldb"], ServiceConfig(max_tau=1, max_query_batch=2))
        response = service.handle_request(
            {"op": "search-batch", "queries": ["a", "b", "c"]})
        assert response["ok"] is False
        assert "max_query_batch" in response["error"]

    def test_stats_include_index_memory(self):
        service = SimilarityService(["vldb", "pvldb"], ServiceConfig(max_tau=1))
        stats = service.stats()
        assert stats["index"]["records"] == 2
        assert stats["index"]["approximate_bytes"] > 0

    def test_sharded_stats_include_per_shard_memory(self):
        config = ServiceConfig(max_tau=1, shards=2, shard_backend="thread")
        service = SimilarityService(["vldb", "pvldb", "icde"], config)
        try:
            stats = service.stats()
            assert len(stats["shards"]["memory"]) == 2
            assert stats["index"]["records"] == sum(
                shard["records"] for shard in stats["shards"]["memory"])
        finally:
            service.close()


class TestBatchOverTheWire:
    def test_sync_client_search_batch(self):
        with BackgroundServer(["vldb", "pvldb", "sigmod"],
                              ServiceConfig(port=0, max_tau=2)) as (host, port):
            with ServiceClient(host, port) as client:
                queries = ["vldb", "sigmod", "vldb", "zzz"]
                batched = client.search_batch(queries, tau=1)
                assert batched == [client.search(query, tau=1)
                                   for query in queries]

    def test_async_client_search_batch(self):
        async def scenario(host, port):
            async with await AsyncServiceClient.connect(host, port) as client:
                batched = await client.search_batch(["vldb", "pvldb"], tau=1)
                singles = [await client.search(query, tau=1)
                           for query in ("vldb", "pvldb")]
                return batched, singles

        with BackgroundServer(["vldb", "pvldb"],
                              ServiceConfig(port=0, max_tau=1)) as (host, port):
            batched, singles = asyncio.run(scenario(host, port))
            assert batched == singles

    def test_large_batch_exceeding_64k_line_is_served(self):
        # Regression: asyncio streams default to a 64 KiB line limit, which
        # a legal search-batch request under max_query_batch easily
        # exceeds; the server sizes its streams with STREAM_LIMIT instead.
        with BackgroundServer(["vldb", "pvldb"],
                              ServiceConfig(port=0, max_tau=1)) as (host, port):
            with ServiceClient(host, port) as client:
                queries = [f"padding-{i:06d}-{'x' * 64}"
                           for i in range(1000)] + ["vldb"]
                results = client.search_batch(queries, tau=1)
                assert len(results) == 1001
                assert [m.text for m in results[-1]] == ["vldb", "pvldb"]
                assert all(matches == [] for matches in results[:-1])

    def test_sharded_server_search_batch(self):
        config = ServiceConfig(port=0, max_tau=2, shards=2,
                               shard_backend="thread")
        with BackgroundServer(["vldb", "pvldb", "sigmod", "icde"],
                              config) as (host, port):
            with ServiceClient(host, port) as client:
                queries = ["vldb", "icde", "sigmod"]
                assert client.search_batch(queries, tau=1) == [
                    client.search(query, tau=1) for query in queries]


# ----------------------------------------------------------------------
# Batch-aware top-k: lockstep widening vs sequential search_top_k
# ----------------------------------------------------------------------
class TestTopKManyStatic:
    def test_matches_sequential(self):
        strings = random_strings(80, 2, 12, alphabet="abc", seed=21)
        searcher = PassJoinSearcher(strings, max_tau=2)
        queries = random_strings(20, 2, 12, alphabet="abc", seed=22)
        assert searcher.search_top_k_many(queries, 3) == [
            searcher.search_top_k(query, 3) for query in queries]

    def test_duplicates_and_empty_batch(self):
        searcher = PassJoinSearcher(["vldb", "pvldb"], max_tau=1)
        first, second = searcher.search_top_k_many(["vldb", "vldb"], 2)
        assert first == second == searcher.search_top_k("vldb", 2)
        assert searcher.search_top_k_many([], 2) == []

    def test_invalid_k(self):
        searcher = PassJoinSearcher(["vldb"], max_tau=1)
        with pytest.raises(ValueError):
            searcher.search_top_k_many(["vldb"], 0)

    def test_token_jaccard_kernel(self):
        texts = ["a b", "a b c", "b c", "c d", "a"]
        searcher = PassJoinSearcher(texts, max_tau=80,
                                    kernel="token-jaccard")
        queries = ["a b", "c", "d a", "a b"]
        assert searcher.search_top_k_many(queries, 2) == [
            searcher.search_top_k(query, 2) for query in queries]


class TestTopKManyProperty:
    @given(ops=MUTATIONS,
           batch=st.lists(st.text(alphabet="ab", max_size=8),
                          min_size=1, max_size=6),
           max_tau=st.integers(min_value=0, max_value=3),
           k=st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_unsharded_dynamic(self, ops, batch, max_tau, k):
        searcher = DynamicSearcher(max_tau=max_tau, compact_interval=2)
        live: set[int] = set()
        _apply(searcher, ops, live)
        assert searcher.search_top_k_many(batch, k) == [
            searcher.search_top_k(query, k) for query in batch]

    @pytest.mark.parametrize("policy", ["hash", "length"])
    @given(ops=MUTATIONS,
           batch=st.lists(st.text(alphabet="ab", max_size=8),
                          min_size=1, max_size=5),
           max_tau=st.integers(min_value=0, max_value=2),
           k=st.integers(min_value=1, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_two_shards_both_policies(self, policy, ops, batch, max_tau, k):
        single = DynamicSearcher(max_tau=max_tau, compact_interval=2)
        router = ShardRouter(shards=2, max_tau=max_tau, policy=policy,
                             backend="thread", compact_interval=2)
        with router:
            live: set[int] = set()
            _apply(single, ops, live)
            live_router: set[int] = set()
            _apply(router, ops, live_router)
            expected = [single.search_top_k(query, k) for query in batch]
            assert router.search_top_k_many(batch, k) == expected
            assert [router.search_top_k(query, k) for query in batch] \
                == expected

    def test_mid_resharding_parity(self):
        strings = random_strings(40, 2, 12, alphabet="abc", seed=31)
        single = DynamicSearcher(strings, max_tau=2)
        with ShardRouter(strings, shards=2, max_tau=2, policy="hash",
                         backend="thread", migration_batch=3) as router:
            router.add_shard(drain=False)
            router.migration_step()  # mid-migration: rows dual-present
            queries = random_strings(10, 2, 12, alphabet="abc", seed=32)
            assert router.search_top_k_many(queries, 3) == [
                single.search_top_k(query, 3) for query in queries]

    def test_token_jaccard_dynamic(self):
        searcher = DynamicSearcher(max_tau=80, kernel="token-jaccard",
                                   compact_interval=3)
        for text in ["a b", "a b c", "b c", "c d", "a", "b d"]:
            searcher.insert(text)
        searcher.delete(2)
        queries = ["a b", "c", "d a"]
        assert searcher.search_top_k_many(queries, 2) == [
            searcher.search_top_k(query, 2) for query in queries]


# ----------------------------------------------------------------------
# Persistent window cache: reuse across calls, invalidation on purge
# ----------------------------------------------------------------------
class TestPersistentWindowCache:
    def test_cache_hits_accumulate_across_searches(self):
        searcher = PassJoinSearcher(["vldb", "pvldb", "sigmod"], max_tau=2)
        searcher.search("vldb", 2)
        before = searcher.statistics.num_windows_cache_hits
        searcher.search("vldc", 2)  # same length: windows already cached
        assert searcher.statistics.num_windows_cache_hits > before

    def test_cache_cleared_when_length_group_disappears(self):
        searcher = DynamicSearcher(["vldb", "pvldb", "sigmod"], max_tau=2,
                                   compact_interval=100)
        backend = searcher._backend
        searcher.search("vldb", 2)
        assert len(backend.window_cache) > 0
        searcher.delete(2)  # the only length-6 record
        searcher.compact()  # physical purge drops the length group
        backend.active_window_cache()
        assert len(backend.window_cache) == 0

    def test_cached_pre_purge_window_never_yields_released_row(self):
        # Length-4 keeps a survivor, so the length set — and therefore the
        # window cache — is untouched by the purge: the second search runs
        # over windows cached *before* the purge and must not resurrect
        # the released store row.
        searcher = DynamicSearcher(["vldb", "avdb", "pvldb"], max_tau=2,
                                   compact_interval=100)
        backend = searcher._backend
        version = backend.index.lengths_version
        first = searcher.search("vldb", 2)
        assert 1 in {match.id for match in first}
        assert len(backend.window_cache) > 0
        searcher.delete(1)
        searcher.compact()
        assert backend.index.lengths_version == version
        assert len(backend.window_cache) > 0  # cache survived the purge
        again = searcher.search("vldb", 2)
        assert all(match.id != 1 for match in again)
        assert again == [match for match in first if match.id != 1]

    def test_cache_cleared_on_evict_below(self):
        searcher = PassJoinSearcher(["vldb", "pvldb", "sigmod"], max_tau=2)
        backend = searcher._backend
        searcher.search("vldb", 2)
        assert len(backend.window_cache) > 0
        backend.index.evict_below(10)  # every indexed length is shorter
        assert backend.index.lengths_version != backend._cache_lengths_version
        backend.active_window_cache()
        assert len(backend.window_cache) == 0

    def test_capacity_must_be_positive(self):
        from repro.core.selection import WindowCache

        with pytest.raises(ValueError):
            WindowCache(None, capacity=0)


# ----------------------------------------------------------------------
# top-k-batch over the serving core and the wire
# ----------------------------------------------------------------------
class TestTopKBatchService:
    def test_top_k_batch_op(self):
        service = SimilarityService(["vldb", "pvldb", "sigmod"],
                                    ServiceConfig(max_tau=2))
        response = service.handle_request(
            {"op": "top-k-batch", "queries": ["vldb", "sigmod"], "k": 2})
        assert response["ok"] is True
        assert response["results"][0] == [
            match.to_dict()
            for match in service.searcher.search_top_k("vldb", 2)]
        assert response["results"][1] == [
            match.to_dict()
            for match in service.searcher.search_top_k("sigmod", 2)]
        assert response["cached"] == [False, False]
        assert TOP_K_BATCH_OP in ALL_OPS
        # The repeat is answered from the cache.
        again = service.handle_request(
            {"op": "top-k-batch", "queries": ["vldb", "sigmod"], "k": 2})
        assert again["cached"] == [True, True]

    def test_top_k_batch_op_validates(self):
        service = SimilarityService(["vldb"], ServiceConfig(max_tau=1))
        missing_k = service.handle_request(
            {"op": "top-k-batch", "queries": ["vldb"]})
        assert missing_k["ok"] is False and "k" in missing_k["error"]
        bad_k = service.handle_request(
            {"op": "top-k-batch", "queries": ["vldb"], "k": 0})
        assert bad_k["ok"] is False
        bad_queries = service.handle_request(
            {"op": "top-k-batch", "queries": "vldb", "k": 1})
        assert bad_queries["ok"] is False and "queries" in bad_queries["error"]

    def test_execute_queries_groups_top_k_misses(self):
        service = SimilarityService(["vldb", "pvldb", "sigmod", "icde"],
                                    ServiceConfig(max_tau=2))
        keys = [("top-k", "vldb", 2, 2), ("top-k", "sigmod", 2, 2),
                ("top-k", "icde", 1, 1), ("top-k", "vldb", 2, 2)]
        answers = service.execute_queries(keys)
        assert answers[0][0] == service.searcher.search_top_k("vldb", 2, 2)
        assert answers[1][0] == service.searcher.search_top_k("sigmod", 2, 2)
        assert answers[2][0] == service.searcher.search_top_k("icde", 1, 1)
        assert answers[3][0] == answers[0][0]


class TestTopKBatchOverTheWire:
    def test_sync_client_top_k_batch(self):
        with BackgroundServer(["vldb", "pvldb", "sigmod"],
                              ServiceConfig(port=0, max_tau=2)) as (host, port):
            with ServiceClient(host, port) as client:
                queries = ["vldb", "sigmod", "vldb", "zzz"]
                batched = client.top_k_batch(queries, 2)
                assert batched == [client.top_k(query, 2)
                                   for query in queries]

    def test_async_client_top_k_batch(self):
        async def scenario(host, port):
            async with await AsyncServiceClient.connect(host, port) as client:
                batched = await client.top_k_batch(["vldb", "pvldb"], 2)
                singles = [await client.top_k(query, 2)
                           for query in ("vldb", "pvldb")]
                return batched, singles

        with BackgroundServer(["vldb", "pvldb"],
                              ServiceConfig(port=0, max_tau=1)) as (host, port):
            batched, singles = asyncio.run(scenario(host, port))
            assert batched == singles

    def test_sharded_server_top_k_batch(self):
        config = ServiceConfig(port=0, max_tau=2, shards=2,
                               shard_backend="thread")
        with BackgroundServer(["vldb", "pvldb", "sigmod", "icde"],
                              config) as (host, port):
            with ServiceClient(host, port) as client:
                queries = ["vldb", "icde", "sigmod"]
                assert client.top_k_batch(queries, 2) == [
                    client.top_k(query, 2) for query in queries]
