"""Tests for the sharded serving tier.

The load-bearing property (the PR's acceptance criterion): for random
interleavings of insert/delete/search, a 3-shard ``ShardRouter`` (thread
backend) returns **element-identical** results to a single unsharded
``DynamicSearcher`` — for both placement policies, for threshold search and
top-k alike.  The process backend is exercised separately (and skipped on
platforms without ``fork``).
"""

import multiprocessing

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ServiceConfig
from repro.exceptions import ConfigurationError, InvalidThresholdError
from repro.service import DynamicSearcher, ShardRouter, SimilarityService
from repro.service.sharding import resolve_shard_backend
from repro.types import StringRecord

from helpers import random_strings

FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(not FORK_AVAILABLE,
                                reason="process backend requires fork")

#: Every placement policy the router accepts (unit-level coverage of the
#: maps themselves lives in test_placement.py).
ALL_POLICIES = ["hash", "length", "modulo"]


class TestBackends:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_shard_backend("threads")

    def test_explicit_backends_resolve_to_themselves(self):
        assert resolve_shard_backend("thread") == "thread"
        if FORK_AVAILABLE:
            assert resolve_shard_backend("process") == "process"

    def test_auto_never_forks_from_a_multi_threaded_process(self):
        # BackgroundServer hosts the service on a second thread; forking
        # shard workers there can deadlock the child, so auto must fall
        # back to in-process shards whenever other threads are live.
        import threading

        resolved: list[str] = []
        worker = threading.Thread(
            target=lambda: resolved.append(resolve_shard_backend("auto")))
        worker.start()
        worker.join()
        assert resolved == ["thread"]


def make_router(strings=(), *, shards=3, max_tau=2, policy="hash",
                backend="thread", **kwargs):
    return ShardRouter(strings, shards=shards, max_tau=max_tau, policy=policy,
                       backend=backend, **kwargs)


class TestRouterBasics:
    def test_insert_search_delete_cycle(self):
        with make_router(["vldb", "sigmod"], max_tau=1) as router:
            assert router.insert("pvldb") == 2
            assert [m.text for m in router.search("vldb", tau=1)] == [
                "vldb", "pvldb"]
            assert router.delete(0) is True
            assert router.delete(0) is False
            assert [m.text for m in router.search("vldb", tau=1)] == ["pvldb"]

    def test_invalid_shard_count(self):
        with pytest.raises(ConfigurationError):
            make_router(shards=0)

    def test_tau_above_max_rejected(self):
        with make_router(["abc"], max_tau=1) as router:
            with pytest.raises(InvalidThresholdError):
                router.search("abc", tau=2)

    def test_invalid_k(self):
        with make_router(["abc"], max_tau=1) as router:
            with pytest.raises(ValueError):
                router.search_top_k("abc", k=0)

    def test_live_id_clash_raises(self):
        with make_router(["aa"], max_tau=1) as router:
            with pytest.raises(ValueError):
                router.insert("bb", id=0)

    def test_caller_chosen_and_auto_ids(self):
        with make_router(max_tau=1) as router:
            assert router.insert("alpha", id=500) == 500
            assert router.insert("alphb") == 501
            assert {m.id for m in router.search("alpha", tau=1)} == {500, 501}

    def test_tombstoned_id_reusable(self):
        with make_router(["abcdef"], max_tau=1, compact_interval=100) as router:
            router.delete(0)
            router.insert("qrstuv", id=0)
            assert [m.text for m in router.search("abcdef", tau=1)] == []
            assert [m.text for m in router.search("qrstuv", tau=0)] == ["qrstuv"]

    def test_mutations_bump_only_the_owning_shard(self):
        # The modulo policy pins ids to shards deterministically.
        with make_router(max_tau=1, policy="modulo") as router:
            router.insert("aaaa", id=0)   # shard 0
            assert router.epoch_vector == (1, 0, 0)
            router.insert("bbbb", id=4)   # 4 % 3 == 1
            assert router.epoch_vector == (1, 1, 0)
            router.delete(0)
            assert router.epoch_vector == (2, 1, 0)
            assert router.epoch == 3

    def test_compact_purges_all_shards(self):
        strings = [f"string{i:02d}" for i in range(9)]
        with make_router(strings, compact_interval=100) as router:
            for record_id in range(4):
                router.delete(record_id)
            assert router.tombstone_count == 4
            assert router.compact() == 4
            assert router.tombstone_count == 0

    def test_records_and_len_and_sizes(self):
        strings = [f"word{i:02d}" for i in range(10)]
        with make_router(strings) as router:
            router.delete(3)
            router.insert("another")
            assert len(router) == 10
            assert [r.id for r in router.records] == [
                0, 1, 2, 4, 5, 6, 7, 8, 9, 10]
            assert sum(router.shard_sizes()) == 10

    def test_statistics_aggregate_across_shards(self):
        strings = [f"word{i:02d}" for i in range(9)]
        with make_router(strings) as router:
            assert router.statistics.num_strings == 9
            router.search("word01", tau=1)
            assert router.statistics.num_verifications > 0

    def test_close_is_idempotent(self):
        router = make_router(["abc"])
        router.close()
        router.close()

    def test_string_records_keep_their_ids(self):
        with make_router([StringRecord(7, "alpha")], max_tau=1) as router:
            assert router.insert(StringRecord(3, "alphb")) == 3
            assert {m.id for m in router.search("alpha", tau=1)} == {7, 3}

    def test_duplicate_initial_ids_rejected(self):
        # Two live records with one id could land on different shards and
        # surface twice in a merged result, so the router refuses them.
        with pytest.raises(ValueError):
            make_router([StringRecord(0, "abab"), StringRecord(0, "cdcdcd")],
                        policy="length")


class TestEpochToken:
    def test_hash_token_depends_on_every_shard(self):
        with make_router(["aaaa"], policy="hash") as router:
            key = ("search", "aaaa", 1)
            before = router.epoch_token(key)
            # generation term first, then the probed (= all) shard epochs.
            assert before == (router.generation, *router.epoch_vector)
            router.insert("bbbb")
            assert router.epoch_token(key) != before

    def test_length_token_ignores_unrelated_shards(self):
        # band width 2 (max_tau=1): lengths 2-3 -> shard 1, 4-5 -> shard 0.
        with make_router(["ab", "abcd"], shards=2, max_tau=1,
                         policy="length") as router:
            short_key = ("search", "ab", 0)
            long_key = ("search", "abcd", 0)
            short_before = router.epoch_token(short_key)
            long_before = router.epoch_token(long_key)
            router.insert("abce")  # length 4 -> shard 0: the "long" shard
            assert router.epoch_token(long_key) != long_before
            assert router.epoch_token(short_key) == short_before


class TestShardedServiceCache:
    def test_mutation_on_one_shard_keeps_other_shards_cached(self):
        config = ServiceConfig(max_tau=1, shards=2, shard_policy="length",
                               shard_backend="thread")
        service = SimilarityService(["ab", "abcd"], config)
        try:
            short = {"op": "search", "query": "ab", "tau": 0}
            long = {"op": "search", "query": "abcd", "tau": 0}
            for request in (short, long):
                service.handle_request(request)
                assert service.handle_request(request)["cached"] is True
            # Mutate the shard owning length-4 strings only.
            service.handle_request({"op": "insert", "text": "abce"})
            assert service.handle_request(long)["cached"] is False
            assert service.handle_request(short)["cached"] is True
        finally:
            service.close()

    def test_sharded_answers_match_unsharded_service(self):
        strings = random_strings(50, 2, 12, alphabet="abcd", seed=11)
        plain = SimilarityService(strings, ServiceConfig(max_tau=2))
        sharded = SimilarityService(strings, ServiceConfig(
            max_tau=2, shards=3, shard_backend="thread"))
        try:
            for query in random_strings(10, 2, 12, alphabet="abcd", seed=12):
                request = {"op": "search", "query": query, "tau": 2}
                assert (sharded.handle_request(request)["matches"]
                        == plain.handle_request(request)["matches"])
                top = {"op": "top-k", "query": query, "k": 3}
                assert (sharded.handle_request(top)["matches"]
                        == plain.handle_request(top)["matches"])
        finally:
            plain.close()
            sharded.close()


def apply_ops(ops, *, max_tau, policy, shards=3, backend="thread"):
    """Drive a ShardRouter and an unsharded DynamicSearcher in lockstep."""
    router = ShardRouter(shards=shards, max_tau=max_tau, policy=policy,
                         backend=backend, compact_interval=4)
    single = DynamicSearcher(max_tau=max_tau, compact_interval=4)
    live: set[int] = set()
    for op in ops:
        if op[0] == "insert":
            assert router.insert(op[1]) == single.insert(op[1])
            live.add(max(live, default=-1) + 1)
        elif op[0] == "delete":
            target = op[1] % (max(live) + 1) if live else 0
            assert router.delete(target) == single.delete(target)
            live.discard(target)
        else:  # search
            assert router.search(op[1]) == single.search(op[1])
    return router, single


OPS = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.text(alphabet="ab", max_size=8)),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=30)),
        st.tuples(st.just("search"), st.text(alphabet="ab", max_size=8)),
    ), max_size=25)


class TestShardEquivalence:
    """The acceptance property: sharded answers are element-identical."""

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    @given(ops=OPS,
           queries=st.lists(st.text(alphabet="ab", max_size=8), min_size=1,
                            max_size=4),
           max_tau=st.integers(min_value=0, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_interleaved_ops_match_unsharded(self, policy, ops, queries,
                                             max_tau):
        router, single = apply_ops(ops, max_tau=max_tau, policy=policy)
        with router:
            for query in queries:
                for tau in range(max_tau + 1):
                    assert router.search(query, tau) == single.search(query, tau)

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    @given(ops=OPS,
           query=st.text(alphabet="ab", max_size=8),
           k=st.integers(min_value=1, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_interleaved_top_k_matches_unsharded(self, policy, ops, query, k):
        router, single = apply_ops(ops, max_tau=2, policy=policy)
        with router:
            assert router.search_top_k(query, k) == single.search_top_k(query, k)

    def test_scripted_interleaving_both_policies(self):
        strings = random_strings(60, 2, 12, alphabet="abc", seed=5)
        for policy in ALL_POLICIES:
            single = DynamicSearcher(strings[:45], max_tau=2)
            with make_router(strings[:45], policy=policy) as router:
                for record_id in (0, 9, 17, 44):
                    assert router.delete(record_id) == single.delete(record_id)
                for text in strings[45:]:
                    assert router.insert(text) == single.insert(text)
                for query in random_strings(12, 2, 12, alphabet="abc", seed=6):
                    assert router.search(query) == single.search(query)
                    assert (router.search_top_k(query, 4)
                            == single.search_top_k(query, 4))


@needs_fork
class TestProcessBackend:
    def test_equivalence_and_mutations_over_worker_processes(self):
        strings = random_strings(40, 2, 10, alphabet="abc", seed=21)
        single = DynamicSearcher(strings, max_tau=2)
        with make_router(strings, shards=2, backend="process") as router:
            assert router.backend == "process"
            for query in random_strings(8, 2, 10, alphabet="abc", seed=22):
                assert router.search(query) == single.search(query)
                assert (router.search_top_k(query, 3)
                        == single.search_top_k(query, 3))
            assert router.insert("zzz") == single.insert("zzz")
            assert router.delete(0) == single.delete(0)
            assert router.search("zzz", 1) == single.search("zzz", 1)
            assert router.records == single.records
            assert router.statistics.num_strings == len(single)

    def test_worker_error_does_not_wedge_the_pipe(self):
        with make_router(["abcdef"], shards=2, backend="process") as router:
            # Force a shard-side failure: a direct op with a bad payload.
            with pytest.raises(Exception):
                router._call(0, "search", ("abc", -1))
            # The pipe must be drained: the next call still works.
            assert [m.text for m in router.search("abcdef", tau=1)] == [
                "abcdef"]

    def test_dead_worker_does_not_desync_healthy_shards(self):
        # Modulo placement: "abcdef" has id 0 -> shard 0; kill shard 1's
        # worker.  A scatter that includes the dead shard fails at send
        # time, but shard 0's reply must still be drained — otherwise the
        # next op on shard 0 would read this op's stale answer off the
        # pipe.
        with make_router(["abcdef", "qrstuv"], shards=2, policy="modulo",
                         backend="process") as router:
            router._shards[1]._process.kill()
            router._shards[1]._process.join(timeout=5)
            for _ in range(2):  # repeatedly: the failure must not compound
                with pytest.raises(Exception):
                    router.search("abcdef", tau=1)
            # Shard 0 alone still answers correctly and freshly.
            shard0 = router._shards[0]
            shard0.send("search", ("abcdef", 1))
            matches, epoch = shard0.recv()
            assert [m.text for m in matches] == ["abcdef"]
            assert epoch == 0

    def test_sharded_service_over_processes(self):
        config = ServiceConfig(max_tau=2, shards=2, shard_backend="process")
        service = SimilarityService(["vldb", "pvldb", "sigmod"], config)
        try:
            response = service.handle_request(
                {"op": "search", "query": "vldb", "tau": 1})
            assert [m["text"] for m in response["matches"]] == ["vldb", "pvldb"]
            stats = service.stats()
            assert stats["shards"]["backend"] == "process"
        finally:
            service.close()

    def test_dead_worker_yields_error_responses_not_exceptions(self):
        # handle_request's contract is "never raises": a dead shard worker
        # must surface as {"ok": false, ...}, keeping connections alive.
        config = ServiceConfig(max_tau=2, shards=2, shard_backend="process")
        service = SimilarityService(["vldb", "pvldb", "sigmod"], config)
        try:
            service.searcher._shards[1]._process.kill()
            service.searcher._shards[1]._process.join(timeout=5)
            response = service.handle_request({"op": "delete", "id": 1})
            assert response["ok"] is False
            assert "shard worker died" in response["error"]
            searched = service.handle_request(
                {"op": "search", "query": "vldb", "tau": 1})
            assert searched["ok"] is False
        finally:
            service.close()

    def test_failed_server_start_does_not_leak_shard_workers(self):
        import asyncio
        import socket

        from repro.service.server import run_service

        blocker = socket.socket()
        try:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            port = blocker.getsockname()[1]
            config = ServiceConfig(port=port, max_tau=1, shards=2,
                                   shard_backend="process")
            with pytest.raises(OSError):
                asyncio.run(run_service(["abc"], config))
            # run_service's finally closed the fleet despite the bind error.
            assert multiprocessing.active_children() == []
        finally:
            blocker.close()
