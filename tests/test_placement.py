"""Unit tests for the placement maps (repro.service.placement).

Two contracts matter for every map:

* **Probe soundness** — the shard that owns a record of length ``l`` is in
  the probe set of any query whose length window includes ``l``.  Break
  this and sharded searches silently lose matches.
* **Resize stability** — ``resized()`` must reassign few records (the
  consistent-hash ring's whole reason to exist) and the records that do
  move on a grow must move *to the new shard* (nothing shuffles between
  surviving shards).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ConfigurationError
from repro.service.placement import (VNODES, ConsistentHashPlacementMap,
                                     LengthBandPlacementMap,
                                     ModuloPlacementMap, make_placement_map,
                                     mix64)

ALL_MAP_TYPES = [ConsistentHashPlacementMap, LengthBandPlacementMap,
                 ModuloPlacementMap]


class TestRegistry:
    def test_names_resolve_to_their_types(self):
        assert isinstance(make_placement_map("hash", 2, 1),
                          ConsistentHashPlacementMap)
        assert isinstance(make_placement_map("length", 2, 1),
                          LengthBandPlacementMap)
        assert isinstance(make_placement_map("modulo", 2, 1),
                          ModuloPlacementMap)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            make_placement_map("zipcode", 2, 1)

    @pytest.mark.parametrize("map_type", ALL_MAP_TYPES)
    @pytest.mark.parametrize("bad", [0, -1, True, 1.5])
    def test_invalid_shard_counts_rejected(self, map_type, bad):
        with pytest.raises(ConfigurationError):
            map_type(bad, 1)

    @pytest.mark.parametrize("map_type", ALL_MAP_TYPES)
    def test_resized_preserves_kind_and_max_tau(self, map_type):
        resized = map_type(2, 3).resized(5)
        assert type(resized) is map_type
        assert (resized.num_shards, resized.max_tau) == (5, 3)


class TestContracts:
    @pytest.mark.parametrize("map_type", ALL_MAP_TYPES)
    @pytest.mark.parametrize("shards", [1, 2, 3, 5])
    def test_place_lands_on_a_real_shard(self, map_type, shards):
        placement = map_type(shards, 2)
        for record_id in range(200):
            for length in (0, 3, 17):
                assert 0 <= placement.place(record_id, length) < shards

    @pytest.mark.parametrize("map_type", ALL_MAP_TYPES)
    @pytest.mark.parametrize("shards", [1, 2, 3, 5])
    def test_probe_covers_every_owner_in_the_window(self, map_type, shards):
        # Probe soundness: any record a query could match is on a probed
        # shard, for every (query length, tau, record id, record length).
        placement = map_type(shards, 2)
        for query_length in range(0, 25):
            for tau in (0, 1, 2):
                probed = set(placement.probe_shards(query_length, tau))
                for length in range(max(0, query_length - tau),
                                    query_length + tau + 1):
                    for record_id in (0, 7, 12345):
                        assert placement.place(record_id, length) in probed

    @pytest.mark.parametrize("map_type", ALL_MAP_TYPES)
    def test_placement_is_deterministic(self, map_type):
        first, second = map_type(4, 2), map_type(4, 2)
        assert all(first.place(i, i % 9) == second.place(i, i % 9)
                   for i in range(500))


class TestModulo:
    def test_places_by_id_and_probes_everything(self):
        placement = ModuloPlacementMap(3, 2)
        assert [placement.place(i, 10) for i in range(6)] == [0, 1, 2, 0, 1, 2]
        assert placement.probe_shards(5, 0) == (0, 1, 2)

    def test_resize_moves_almost_everything(self):
        # The cautionary baseline: modulo reassigns ~N/(N+1) of the ids.
        old, new = ModuloPlacementMap(4, 2), ModuloPlacementMap(4, 2).resized(5)
        moved = sum(old.place(i, 0) != new.place(i, 0) for i in range(1000))
        assert moved > 700


class TestLengthBands:
    def test_colocates_similar_lengths(self):
        placement = LengthBandPlacementMap(4, 2)  # band width 3
        assert placement.place(99, 0) == placement.place(7, 2) == 0
        assert placement.place(0, 3) == 1

    def test_probes_only_intersecting_shards(self):
        placement = LengthBandPlacementMap(4, 2)
        # lengths [7, 9] -> bands 2..3 -> shards 2 and 3, nothing else.
        assert placement.probe_shards(8, 1) == (2, 3)
        # with fewer shards than bands in the window, scatter to all.
        assert LengthBandPlacementMap(2, 2).probe_shards(8, 2) == (0, 1)

    def test_resize_redeals_bands_not_band_membership(self):
        old, new = LengthBandPlacementMap(3, 2), LengthBandPlacementMap(3, 2).resized(4)
        for length in range(0, 40):
            band = length // 3
            assert old.place(0, length) == band % 3
            assert new.place(0, length) == band % 4


class TestConsistentHash:
    def test_mix64_is_in_range_and_scrambles(self):
        values = {mix64(i) for i in range(1000)}
        assert len(values) == 1000  # a bijection never collides
        assert all(0 <= value < (1 << 64) for value in values)

    def test_sequential_ids_spread_across_shards(self):
        # Dense sequential ids (the auto-id common case) must not pile up
        # (the regression guarded here: ring points and record keys once
        # shared mix64 inputs, gluing ids 0..VNODES-1 onto shard 0).
        placement = ConsistentHashPlacementMap(4, 2)
        sizes = [0] * 4
        for record_id in range(2000):
            sizes[placement.place(record_id, 0)] += 1
        assert min(sizes) > 2000 // 4 // 3  # no shard below 1/3 of fair share

    def test_ring_has_vnodes_points_per_shard(self):
        placement = ConsistentHashPlacementMap(3, 2)
        assert len(placement._points) == 3 * VNODES

    @pytest.mark.parametrize("shards", [2, 3, 4, 8])
    def test_grow_moves_at_most_2_over_n_and_only_to_the_new_shard(
            self, shards):
        # The acceptance bound: a resize reassigns <= ~2/N of the records
        # (expected 1/N; 2/N absorbs virtual-node variance), and every
        # moved record moves to the shard that was added.
        population = 5000
        old = ConsistentHashPlacementMap(shards, 2)
        new = old.resized(shards + 1)
        moved = [record_id for record_id in range(population)
                 if old.place(record_id, 0) != new.place(record_id, 0)]
        assert len(moved) <= 2 * population // (shards + 1)
        assert all(new.place(record_id, 0) == shards for record_id in moved)

    @pytest.mark.parametrize("shards", [2, 3, 4, 8])
    def test_shrink_moves_only_the_retired_shards_records(self, shards):
        population = 5000
        old = ConsistentHashPlacementMap(shards + 1, 2)
        new = old.resized(shards)
        for record_id in range(population):
            before, after = old.place(record_id, 0), new.place(record_id, 0)
            if before != shards:  # survivor-owned records never move
                assert after == before

    @given(record_id=st.integers(min_value=0, max_value=2 ** 62),
           shards=st.integers(min_value=1, max_value=16))
    @settings(max_examples=200, deadline=None)
    def test_place_is_stable_under_unrelated_growth(self, record_id, shards):
        # Consistency property over arbitrary ids: either the record keeps
        # its owner across a grow, or it moves to the new shard.
        old = ConsistentHashPlacementMap(shards, 1)
        new = old.resized(shards + 1)
        before, after = old.place(record_id, 0), new.place(record_id, 0)
        assert after == before or after == shards
