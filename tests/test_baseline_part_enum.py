"""Tests for the Part-Enum baseline."""

import pytest

from repro.baselines.part_enum import PartEnumJoin, _stable_hash, part_enum_join

from helpers import brute_force_pairs, random_strings


class TestSignatures:
    def test_signature_count_is_n1_times_n2(self):
        join = PartEnumJoin(tau=2, q=2)
        signatures = join.signatures("similarity")
        assert len(signatures) == join.n1 * join.n2

    def test_identical_strings_share_all_signatures(self):
        join = PartEnumJoin(tau=1, q=2)
        assert join.signatures("identical") == join.signatures("identical")

    def test_similar_strings_share_at_least_one_signature(self):
        join = PartEnumJoin(tau=2, q=2)
        a = set(join.signatures("partition based method"))
        b = set(join.signatures("partition based methods"))
        assert a & b

    def test_stable_hash_is_deterministic(self):
        assert _stable_hash("gram") == _stable_hash("gram")
        assert _stable_hash("gram") != _stable_hash("marg")

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PartEnumJoin(tau=2, q=0)


class TestPartEnumCorrectness:
    def test_paper_example(self, paper_strings):
        result = part_enum_join(paper_strings, 3)
        assert {(pair.left, pair.right) for pair in result} == {
            ("kaushik chakrab", "caushik chakrabar")}

    @pytest.mark.parametrize("tau", [0, 1, 2])
    def test_matches_brute_force(self, tau):
        strings = random_strings(70, 2, 12, alphabet="abc", seed=29)
        truth = set(brute_force_pairs(strings, tau))
        assert part_enum_join(strings, tau).pair_ids() == truth

    def test_empty_collection(self):
        assert len(part_enum_join([], 2)) == 0

    def test_statistics_populated(self):
        strings = ["alpha", "alphb", "gamma", "gamme"]
        stats = part_enum_join(strings, 1).statistics
        assert stats.num_selected_substrings > 0  # signatures generated
        assert stats.index_entries > 0
        assert stats.num_results == 2
