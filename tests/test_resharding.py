"""Tests for live resharding (the elastic shard fleet).

The load-bearing property (the PR's acceptance criterion): random
interleavings of insert / delete / search / ``add_shard`` / ``remove_shard``
— including queries issued **while a migration is in flight** — keep a
``ShardRouter`` element-identical to an unsharded ``DynamicSearcher``, for
every placement policy and for both the thread and process backends.  On
top of that: the consistent-hash ring's ``≤ ~2/N`` rows-moved bound, donor
row release after migration, the length policy's empty-band fast path, and
the degenerate ``search_many`` batches.
"""

import multiprocessing

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ServiceConfig
from repro.exceptions import ConfigurationError, ServiceError
from repro.service import (BackgroundServer, DynamicSearcher, ServiceClient,
                           ShardRouter, SimilarityService)

from helpers import random_strings

FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(not FORK_AVAILABLE,
                                reason="process backend requires fork")

ALL_POLICIES = ["hash", "length", "modulo"]


def make_pair(strings, *, shards=3, max_tau=2, policy="hash",
              backend="thread", migration_batch=4, **kwargs):
    """A router and its unsharded oracle over the same collection."""
    router = ShardRouter(strings, shards=shards, max_tau=max_tau,
                         policy=policy, backend=backend,
                         migration_batch=migration_batch, **kwargs)
    return router, DynamicSearcher(strings, max_tau=max_tau)


class TestAddRemoveBasics:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_add_then_remove_roundtrip_preserves_answers(self, policy):
        strings = random_strings(50, 3, 12, alphabet="abc", seed=31)
        queries = random_strings(10, 2, 13, alphabet="abc", seed=32)
        router, single = make_pair(strings, policy=policy)
        with router:
            expected = [single.search(query) for query in queries]
            status = router.add_shard()
            assert status["active"] is False
            assert status["shards"] == router.num_shards == 4
            assert len(router.epoch_vector) == 4
            assert [router.search(query) for query in queries] == expected
            status = router.remove_shard()
            assert status["shards"] == router.num_shards == 3
            assert len(router._shards) == 3
            assert [router.search(query) for query in queries] == expected
            assert sum(router.shard_sizes()) == len(single)

    def test_remove_only_shard_rejected(self):
        with ShardRouter(["abc"], shards=1, max_tau=1,
                         backend="thread") as router:
            with pytest.raises(ServiceError):
                router.remove_shard()

    def test_remove_non_last_shard_rejected(self):
        with ShardRouter(["abc"], shards=3, max_tau=1,
                         backend="thread") as router:
            with pytest.raises(ServiceError):
                router.remove_shard(0)
            router.remove_shard(2)  # the last index is fine
            assert router.num_shards == 2

    def test_concurrent_migrations_rejected(self):
        strings = random_strings(30, 3, 10, alphabet="ab", seed=33)
        router, _ = make_pair(strings)
        with router:
            router.add_shard(drain=False)
            with pytest.raises(ServiceError):
                router.add_shard()
            with pytest.raises(ServiceError):
                router.remove_shard()
            router.drain_migration()
            router.remove_shard()  # idle again: allowed
            assert router.num_shards == 3

    def test_invalid_migration_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardRouter(shards=2, max_tau=1, backend="thread",
                        migration_batch=0)

    def test_resize_on_empty_router_is_instant(self):
        with ShardRouter(shards=2, max_tau=1, backend="thread") as router:
            status = router.add_shard(drain=False)
            # Nothing to move: the migration finishes at planning time.
            assert status["active"] is False
            assert router.num_shards == 3
            assert status["rows_total"] == 0

    def test_status_reports_progress_and_last_summary(self):
        strings = [f"string{i:03d}" for i in range(30)]
        router, _ = make_pair(strings, policy="modulo", migration_batch=5)
        with router:
            status = router.add_shard(drain=False)
            assert status["active"] is True
            assert status["kind"] == "add-shard"
            assert status["rows_total"] > 0
            assert status["steps_left"] > 0
            mid = router.migration_step()
            # One step copies one bounded batch (a (donor, recipient)
            # group may hold fewer than migration_batch rows).
            assert 0 < mid["rows_copied"] <= 5
            done = router.drain_migration()
            assert done["active"] is False
            assert done["rows_copied"] == done["rows_total"] \
                == done["rows_released"] == status["rows_total"]
            assert done["rows_migrated_total"] == done["rows_total"]
            assert router.rows_migrated_total == done["rows_total"]


class TestMigrationVolume:
    def test_consistent_hash_grow_moves_at_most_2_over_n(self):
        # Acceptance: the rows-migrated counter stays within ~2/N on a
        # consistent-hash resize (expected 1/N; 2/N absorbs ring variance).
        strings = [f"record-{i:04d}" for i in range(400)]
        router, _ = make_pair(strings, shards=4, policy="hash")
        with router:
            status = router.add_shard()
            assert status["rows_total"] <= 2 * len(strings) // 5
            assert router.rows_migrated_total == status["rows_total"]
            shrink = router.remove_shard()
            assert shrink["rows_total"] <= 2 * len(strings) // 5

    def test_modulo_grow_moves_most_rows(self):
        # The baseline the ring beats: id % N reassigns nearly everything.
        strings = [f"record-{i:04d}" for i in range(200)]
        router, _ = make_pair(strings, shards=4, policy="modulo")
        with router:
            status = router.add_shard()
            assert status["rows_total"] > len(strings) // 2

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_donor_store_rows_are_released(self, policy):
        # After a drained resize every moved row must be physically gone
        # from its donor's RecordStore: fleet-wide store rows == live rows.
        strings = random_strings(60, 3, 12, alphabet="abcd", seed=35)
        router, _ = make_pair(strings, policy=policy)
        with router:
            for resize in (router.add_shard, router.remove_shard):
                resize()
                summary = router.status_summary()
                assert summary["memory"]["records"] == len(strings)
                assert summary["tombstones"] == 0
                assert sum(router.shard_sizes()) == len(strings)


class TestMidMigrationQueries:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_queries_between_every_step_match_oracle(self, policy):
        strings = random_strings(60, 2, 12, alphabet="abc", seed=36)
        queries = random_strings(8, 1, 13, alphabet="abc", seed=37)
        router, single = make_pair(strings, policy=policy, migration_batch=3)
        with router:
            for resize in (router.add_shard, router.remove_shard):
                resize(drain=False)
                while router.rebalance_status()["active"]:
                    router.migration_step()
                    for query in queries:
                        assert router.search(query) == single.search(query)
                        assert (router.search_top_k(query, 3)
                                == single.search_top_k(query, 3))

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_mutations_during_migration(self, policy):
        strings = random_strings(40, 3, 10, alphabet="ab", seed=38)
        queries = random_strings(8, 2, 11, alphabet="ab", seed=39)
        router, single = make_pair(strings, policy=policy, migration_batch=2)
        with router:
            router.add_shard(drain=False)
            router.migration_step()  # first batch is now dual-present
            # Delete records in every migration state: never copied,
            # dual-present, and freshly inserted.
            for record_id in (0, 7, 13):
                assert router.delete(record_id) == single.delete(record_id)
            assert router.insert("abab") == single.insert("abab")
            for query in queries:
                assert router.search(query) == single.search(query)
            router.drain_migration()
            for query in queries:
                assert router.search(query) == single.search(query)
            assert len(router) == len(single)

    def test_deleting_a_dual_present_record_removes_both_copies(self):
        # Force dual presence, delete, and make sure the donor copy can
        # never resurface — even before the release step runs.
        strings = [f"record{i:02d}" for i in range(20)]
        router, single = make_pair(strings, shards=2, policy="modulo",
                                   migration_batch=50)
        with router:
            router.add_shard(drain=False)
            router.migration_step()  # copy everything; release still pending
            moving = router.rebalance_status()
            assert moving["rows_copied"] > 0
            victim = next(iter(router._migration.dual))
            assert router.delete(victim) == single.delete(victim)
            assert router.search(strings[victim], tau=0) == \
                single.search(strings[victim], tau=0)
            router.drain_migration()
            assert router.search(strings[victim], tau=0) == []


def run_elastic_ops(ops, *, policy, backend="thread", max_tau=2):
    """Drive a router and its oracle through an elastic op interleaving."""
    router = ShardRouter(shards=2, max_tau=max_tau, policy=policy,
                         backend=backend, compact_interval=4,
                         migration_batch=2)
    single = DynamicSearcher(max_tau=max_tau, compact_interval=4)
    inserted = 0
    try:
        for op in ops:
            kind = op[0]
            if kind == "insert":
                assert router.insert(op[1]) == single.insert(op[1])
                inserted += 1
            elif kind == "delete":
                target = op[1] % max(1, inserted)
                assert router.delete(target) == single.delete(target)
            elif kind == "search":
                assert router.search(op[1]) == single.search(op[1])
            elif kind == "grow":
                if router._migration is None and router.num_shards < 5:
                    router.add_shard(drain=False)
            elif kind == "shrink":
                if router._migration is None and router.num_shards > 1:
                    router.remove_shard(drain=False)
            else:  # step
                router.migration_step()
            assert len(router) == len(single)
        router.drain_migration()
        return router, single
    except BaseException:
        router.close()
        raise


ELASTIC_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.text(alphabet="ab", max_size=8)),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=40)),
        st.tuples(st.just("search"), st.text(alphabet="ab", max_size=8)),
        st.tuples(st.just("grow")),
        st.tuples(st.just("shrink")),
        st.tuples(st.just("step")),
    ), max_size=30)


class TestElasticEquivalence:
    """The acceptance property: resizes never change any answer."""

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    @given(ops=ELASTIC_OPS,
           queries=st.lists(st.text(alphabet="ab", max_size=8), min_size=1,
                            max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_interleaved_resizes_match_unsharded(self, policy, ops, queries):
        router, single = run_elastic_ops(ops, policy=policy)
        with router:
            for query in queries:
                for tau in range(router.max_tau + 1):
                    assert router.search(query, tau) == single.search(query, tau)
                assert (router.search_top_k(query, 3)
                        == single.search_top_k(query, 3))

    @needs_fork
    @pytest.mark.parametrize("policy", ["hash", "length"])
    @given(ops=ELASTIC_OPS)
    @settings(max_examples=8, deadline=None)
    def test_interleaved_resizes_match_unsharded_process_backend(
            self, policy, ops):
        router, single = run_elastic_ops(ops, policy=policy,
                                         backend="process")
        with router:
            for query in ("", "ab", "abab", "bbbbbb"):
                assert router.search(query) == single.search(query)


@needs_fork
class TestProcessBackendResharding:
    def test_add_remove_over_worker_processes(self):
        strings = random_strings(40, 3, 10, alphabet="abc", seed=41)
        queries = random_strings(8, 2, 11, alphabet="abc", seed=42)
        router, single = make_pair(strings, shards=2, backend="process",
                                   migration_batch=8)
        with router:
            assert router.backend == "process"
            expected = [single.search(query) for query in queries]
            router.add_shard(drain=False)
            while router.rebalance_status()["active"]:
                router.migration_step()
                assert [router.search(query) for query in queries] == expected
            assert router.num_shards == 3
            router.remove_shard()
            assert router.num_shards == 2
            assert len(multiprocessing.active_children()) == 2
            assert [router.search(query) for query in queries] == expected


class TestDegenerateBatches:
    """search_many() edge batches (satellite): always element-identical."""

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_empty_batch(self, policy):
        router, _ = make_pair(["abcd", "bcde"], policy=policy)
        with router:
            assert router.search_many([]) == []

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_all_duplicate_batch(self, policy):
        strings = random_strings(30, 3, 9, alphabet="ab", seed=43)
        router, single = make_pair(strings, policy=policy)
        with router:
            batch = ["abab"] * 6
            assert (router.search_many(batch)
                    == [single.search("abab")] * 6
                    == [router.search("abab")] * 6)

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_batch_issued_mid_migration(self, policy):
        strings = random_strings(40, 3, 10, alphabet="abc", seed=44)
        queries = random_strings(6, 2, 11, alphabet="abc", seed=45)
        batch = queries + [queries[0], queries[0]]  # duplicates too
        router, single = make_pair(strings, policy=policy, migration_batch=3)
        with router:
            expected = [single.search(query) for query in batch]
            router.add_shard(drain=False)
            while router.rebalance_status()["active"]:
                router.migration_step()
                assert router.search_many(batch) == expected
                assert router.search_many([]) == []
            assert router.search_many(batch) == expected


class TestLengthPolicyEdges:
    """Empty-band fast path (satellite): no scatter when no band can match."""

    def spy_scatter(self, router):
        calls = []
        original = router._scatter_each

        def recording(targets, op, args_list):
            calls.append((tuple(targets), op))
            return original(targets, op, args_list)

        router._scatter_each = recording
        return calls

    def test_out_of_band_query_returns_empty_without_scatter(self):
        strings = ["abcd", "abcde", "bcdef"]  # lengths 4-5 only
        router, single = make_pair(strings, shards=2, policy="length",
                                   max_tau=1)
        with router:
            calls = self.spy_scatter(router)
            query = "a" * 20  # window [19, 21]: intersects no live length
            assert router.search(query) == single.search(query) == []
            assert router.search_top_k(query, 3) == []
            assert router.search_many([query, query]) == [[], []]
            assert calls == []  # not a single shard was probed

    def test_empty_shard_edge(self):
        # All records fall into one band -> the other shards own nothing;
        # queries against their (empty) bands return [] without scattering.
        strings = ["abcd", "abce", "abcf"]  # one band (width 2, lengths 4-5)
        router, single = make_pair(strings, shards=3, policy="length",
                                   max_tau=1)
        with router:
            calls = self.spy_scatter(router)
            assert router.search("ab", tau=1) == single.search("ab", 1) == []
            assert calls == []
            # A populated window still scatters, and only to the shards
            # whose bands intersect it (bands 1-2 -> shards 1 and 2).
            assert router.search("abcd", tau=1) == single.search("abcd", 1)
            assert calls == [((1, 2), "search")]

    def test_boundary_lengths_still_covered(self):
        # Window edges exactly touching a populated band must still probe.
        strings = ["abcdef"]  # length 6
        router, single = make_pair([*strings], shards=2, policy="length",
                                   max_tau=2)
        with router:
            for query in ("abcd", "abcdefgh"):  # |q| ± 2 touches length 6
                assert router.search(query, 2) == single.search(query, 2)

    def test_deleting_last_record_of_a_length_restores_fast_path(self):
        router, single = make_pair(["abcd"], shards=2, policy="length",
                                   max_tau=1)
        with router:
            assert router.search("abcd") == single.search("abcd")
            router.delete(0), single.delete(0)
            calls = self.spy_scatter(router)
            assert router.search("abcd") == single.search("abcd") == []
            assert calls == []


class TestServiceResharding:
    """The wire layer: add-shard / remove-shard / rebalance-status ops."""

    def make_service(self, strings, **overrides):
        config = ServiceConfig(max_tau=2, shards=2, shard_backend="thread",
                               migration_batch=4, **overrides)
        return SimilarityService(strings, config)

    def test_reshard_ops_roundtrip(self):
        strings = [f"string{i:02d}" for i in range(30)]
        service = self.make_service(strings)
        try:
            grown = service.handle_request({"op": "add-shard"})
            assert grown["ok"] is True
            assert grown["status"]["shards"] == 3
            assert grown["status"]["active"] is False  # drained synchronously
            stats = service.handle_request({"op": "stats"})
            assert stats["shards"]["count"] == 3
            assert stats["shards"]["rows_migrated"] > 0
            assert len(stats["shards"]["bytes"]) == 3
            shrunk = service.handle_request({"op": "remove-shard"})
            assert shrunk["status"]["shards"] == 2
            polled = service.handle_request({"op": "rebalance-status"})
            assert polled["ok"] is True and polled["status"]["active"] is False
        finally:
            service.close()

    def test_background_drain_via_service_steps(self):
        strings = [f"string{i:02d}" for i in range(30)]
        service = self.make_service(strings)
        try:
            search = {"op": "search", "query": "string07", "tau": 1}
            before = service.handle_request(search)["matches"]
            started = service.handle_request({"op": "add-shard",
                                              "drain": False})
            assert started["status"]["active"] is True
            while service.rebalance_status()["active"]:
                assert service.handle_request(search)["matches"] == before
                service.migration_step()
            assert service.handle_request(search)["matches"] == before
        finally:
            service.close()

    def test_cache_never_serves_stale_answers_across_a_resize(self):
        strings = [f"string{i:02d}" for i in range(30)]
        service = self.make_service(strings)
        try:
            search = {"op": "search", "query": "string07", "tau": 1}
            first = service.handle_request(search)
            assert service.handle_request(search)["cached"] is True
            service.handle_request({"op": "add-shard"})
            after = service.handle_request(search)
            # The generation term retired the old entry; the re-computed
            # answer matches, and caching resumes on the new placement.
            assert after["cached"] is False
            assert after["matches"] == first["matches"]
            assert service.handle_request(search)["cached"] is True
        finally:
            service.close()

    def test_reshard_rejected_on_unsharded_service(self):
        service = SimilarityService(["abc"], ServiceConfig(max_tau=1))
        try:
            for op in ("add-shard", "remove-shard", "rebalance-status"):
                response = service.handle_request({"op": op})
                assert response["ok"] is False
                assert "sharded" in response["error"]
        finally:
            service.close()

    def test_rejected_resize_does_not_erase_drain_failure_record(self):
        # With a failed drain recorded and the migration still active, a
        # (rejected) resize attempt must not wipe the error — otherwise
        # status pollers are back to an unexplained endless "active".
        service = self.make_service([f"string{i:02d}" for i in range(30)])
        try:
            started = service.handle_request({"op": "add-shard",
                                              "drain": False})
            assert started["status"]["active"] is True
            service.reshard_error = "background reshard drain failed: boom"
            rejected = service.handle_request({"op": "add-shard"})
            assert rejected["ok"] is False
            polled = service.handle_request({"op": "rebalance-status"})
            assert "drain failed" in polled["status"]["error"]
            # A *successful* resize does clear the stale record.
            service.searcher.drain_migration()
            service.handle_request({"op": "remove-shard"})
            polled = service.handle_request({"op": "rebalance-status"})
            assert "error" not in polled["status"]
        finally:
            service.close()

    def test_invalid_drain_field_rejected(self):
        service = self.make_service(["abcd", "bcde"])
        try:
            response = service.handle_request({"op": "add-shard",
                                               "drain": "yes"})
            assert response["ok"] is False and "drain" in response["error"]
        finally:
            service.close()


class TestOverTcp:
    """Full stack: the server drains a resize while answering queries."""

    def test_add_query_remove_over_the_wire(self):
        strings = [f"string{i:02d}" for i in range(40)]
        config = ServiceConfig(port=0, max_tau=2, shards=2,
                               shard_backend="thread", migration_batch=1)
        with BackgroundServer(strings, config) as (host, port):
            with ServiceClient(host, port) as client:
                before = client.search("string13", tau=2)
                status = client.add_shard()
                assert status["shards"] == 3
                # The server streams batches in the background; queries
                # issued while it drains must see exact answers.
                while client.rebalance_status()["active"]:
                    assert client.search("string13", tau=2) == before
                assert client.search("string13", tau=2) == before
                assert client.stats()["shards"]["count"] == 3
                second = client.remove_shard()
                assert second["shards"] in (2, 3)  # may still be draining
                while client.rebalance_status()["active"]:
                    assert client.search("string13", tau=2) == before
                assert client.stats()["shards"]["count"] == 2
                assert client.search("string13", tau=2) == before

    def test_failed_background_drain_surfaces_an_error(self, capsys):
        # A dead shard worker mid-drain must not strand pollers in an
        # endless active loop: rebalance-status gains an "error" field
        # and the CLI reshard poll loop aborts on it instead of spinning.
        from repro.cli import main as cli_main

        strings = [f"string{i:02d}" for i in range(40)]
        config = ServiceConfig(port=0, max_tau=2, shards=2,
                               shard_backend="thread", migration_batch=1)
        server = BackgroundServer(strings, config)
        with server as (host, port):
            def boom():
                raise ServiceError("shard worker died: boom")

            server.service.migration_step = boom
            # The CLI starts the resize itself, polls, sees the drain
            # failure, and exits 1 (previously: an infinite poll loop).
            assert cli_main(["admin", "reshard", "--shards", "3",
                             "--host", host, "--port", str(port)]) == 1
            assert "drain failed" in capsys.readouterr().err
            with ServiceClient(host, port) as client:
                status = client.rebalance_status()
                assert "drain failed" in status["error"]
                assert status["active"] is True  # genuinely stuck mid-move

    def test_second_resize_while_draining_is_rejected(self):
        import time

        strings = [f"string{i:02d}" for i in range(40)]
        config = ServiceConfig(port=0, max_tau=2, shards=2,
                               shard_backend="thread", migration_batch=1)
        server = BackgroundServer(strings, config)
        with server as (host, port):
            # Slow every migration step down so the drain is guaranteed to
            # still be in flight when the second resize request lands
            # (otherwise this test races the background task).
            real_step = server.service.migration_step

            def slow_step():
                time.sleep(0.005)
                return real_step()

            server.service.migration_step = slow_step
            with ServiceClient(host, port) as client:
                status = client.add_shard()
                assert status["active"] is True
                with pytest.raises(ServiceError):  # mid-drain: rejected
                    client.add_shard()
                while client.rebalance_status()["active"]:
                    pass
                # Idle again: the next resize is accepted.
                client.remove_shard()
                while client.rebalance_status()["active"]:
                    pass
                assert client.stats()["shards"]["count"] == 2
