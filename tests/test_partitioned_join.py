"""Tests for the bounded-memory partitioned self join."""

import pytest

from repro.exceptions import PassJoinError
from repro.external import PartitionedSelfJoin, partitioned_self_join
from repro.types import as_records
from repro import pass_join

from helpers import brute_force_pairs, random_strings


class TestPartitionedJoinCorrectness:
    @pytest.mark.parametrize("partition_size", [1, 3, 10, 50, 1000])
    def test_matches_in_memory_join(self, partition_size):
        strings = random_strings(120, 2, 16, alphabet="abc", seed=71)
        tau = 2
        expected = pass_join(strings, tau).pair_ids()
        result = partitioned_self_join(strings, tau, partition_size=partition_size)
        assert result.pair_ids() == expected

    def test_no_duplicate_pairs(self):
        strings = random_strings(80, 3, 10, alphabet="ab", seed=72)
        result = partitioned_self_join(strings, 2, partition_size=7)
        ids = [pair.ids() for pair in result]
        assert len(ids) == len(set(ids))

    def test_distances_match_brute_force(self):
        strings = random_strings(60, 3, 12, alphabet="abc", seed=73)
        tau = 3
        truth = brute_force_pairs(strings, tau)
        result = partitioned_self_join(strings, tau, partition_size=9)
        assert {pair.ids(): pair.distance for pair in result} == truth

    def test_empty_and_tiny_inputs(self):
        assert len(partitioned_self_join([], 2, partition_size=4)) == 0
        assert len(partitioned_self_join(["solo"], 2, partition_size=4)) == 0

    def test_multiprocessing_gives_same_answer(self):
        strings = random_strings(100, 3, 14, alphabet="abc", seed=74)
        tau = 2
        expected = pass_join(strings, tau).pair_ids()
        result = partitioned_self_join(strings, tau, partition_size=20, processes=2)
        assert result.pair_ids() == expected


class TestPartitionedJoinPlanning:
    def test_plan_skips_incompatible_partitions(self):
        # Three length clusters far apart: no cross-partition jobs needed.
        strings = (["a" * 3] * 4) + (["b" * 30] * 4) + (["c" * 80] * 4)
        join = PartitionedSelfJoin(tau=2, partition_size=4)
        jobs = join.plan(as_records(strings))
        assert jobs == [(0, 0), (1, 1), (2, 2)]

    def test_plan_includes_adjacent_partitions_within_tau(self):
        strings = ["x" * length for length in (5, 5, 6, 6, 7, 7)]
        join = PartitionedSelfJoin(tau=1, partition_size=2)
        jobs = join.plan(as_records(strings))
        assert (0, 1) in jobs and (1, 2) in jobs
        assert (0, 2) not in jobs  # lengths 5 and 7 are 2 apart > tau

    def test_iter_pairs_is_lazy(self):
        strings = random_strings(30, 3, 8, alphabet="ab", seed=75)
        join = PartitionedSelfJoin(tau=1, partition_size=10)
        iterator = join.iter_pairs(strings)
        first = next(iterator, None)
        # Either there is at least one pair (and we got it without consuming
        # the whole input) or the collection truly has none.
        assert first is None or first.left_id != first.right_id

    def test_invalid_parameters(self):
        with pytest.raises(PassJoinError):
            PartitionedSelfJoin(tau=1, partition_size=0)
        with pytest.raises(PassJoinError):
            PartitionedSelfJoin(tau=1, processes=0)
