"""Oracle suite for the ``token-jaccard`` similarity kernel.

The load-bearing property: under ANY interleaving of insert / delete /
compact / search, every searcher serving the kernel — the static
``PassJoinSearcher``, the mutable ``DynamicSearcher``, and a 2-shard
``ShardRouter`` on both backends — returns results **element-identical**
to a brute-force scan that computes the scaled token-set Jaccard
distance of the query against every surviving record.  The serving
stack on top (query cache, grouped batch executor, live resharding) is
exercised end-to-end through ``SimilarityService``.
"""

import multiprocessing

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ServiceConfig
from repro.core.kernel import token_jaccard_distance
from repro.search import PassJoinSearcher, SearchMatch
from repro.service import (DynamicSearcher, ShardRouter, SimilarityService)

from helpers import random_strings

FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(not FORK_AVAILABLE,
                                reason="process backend requires fork")

MAX_TAU = 80

#: Small token vocabulary so random records actually collide.
TEXTS = st.lists(st.sampled_from(["a", "b", "c", "d"]),
                 max_size=4).map(" ".join)

TAUS = st.sampled_from([0, 25, 34, 50, 67, MAX_TAU])

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), TEXTS),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=30)),
        st.tuples(st.just("compact"),),
        st.tuples(st.just("search"), TEXTS),
    ), max_size=25)


def brute_force(surviving, query, tau):
    """The oracle: scaled Jaccard distance against every surviving row."""
    return sorted(
        (SearchMatch(token_jaccard_distance(text, query), record_id, text)
         for record_id, text in surviving.items()
         if token_jaccard_distance(text, query) <= tau),
        key=SearchMatch.sort_key)


def token_sentences(count, seed):
    """Deterministic multi-token sentences over a small vocabulary."""
    import random

    rng = random.Random(seed)
    vocab = ["apple", "banana", "cherry", "date", "egg", "fig", "grape"]
    return [" ".join(rng.sample(vocab, rng.randint(0, 4)))
            for _ in range(count)]


def apply_ops(ops, *, compact_interval=4):
    """Drive a jaccard DynamicSearcher and a dict of survivors in lockstep."""
    searcher = DynamicSearcher(max_tau=MAX_TAU, kernel="token-jaccard",
                               compact_interval=compact_interval)
    surviving: dict[int, str] = {}
    for op in ops:
        if op[0] == "insert":
            surviving[searcher.insert(op[1])] = op[1]
        elif op[0] == "delete":
            target = op[1] % (max(surviving) + 1) if surviving else 0
            assert searcher.delete(target) == (target in surviving)
            surviving.pop(target, None)
        elif op[0] == "compact":
            searcher.compact()
        else:  # search mid-stream, against the oracle
            assert (searcher.search(op[1], MAX_TAU)
                    == brute_force(surviving, op[1], MAX_TAU))
    return searcher, surviving


class TestStaticOracle:
    @given(texts=st.lists(TEXTS, max_size=20),
           queries=st.lists(TEXTS, min_size=1, max_size=4), tau=TAUS)
    @settings(max_examples=120, deadline=None)
    def test_search_matches_brute_force(self, texts, queries, tau):
        searcher = PassJoinSearcher(texts, max_tau=MAX_TAU,
                                    kernel="token-jaccard")
        surviving = dict(enumerate(texts))
        for query in queries:
            assert searcher.search(query, tau) == brute_force(surviving,
                                                              query, tau)

    @given(texts=st.lists(TEXTS, max_size=15),
           queries=st.lists(TEXTS, min_size=1, max_size=4), tau=TAUS)
    @settings(max_examples=60, deadline=None)
    def test_search_many_matches_per_query_search(self, texts, queries, tau):
        searcher = PassJoinSearcher(texts, max_tau=MAX_TAU,
                                    kernel="token-jaccard")
        batched = searcher.search_many(queries, tau=tau)
        assert batched == [searcher.search(query, tau) for query in queries]


class TestDynamicOracle:
    @given(ops=OPS, queries=st.lists(TEXTS, min_size=1, max_size=4),
           tau=TAUS)
    @settings(max_examples=120, deadline=None)
    def test_interleaved_ops_match_brute_force(self, ops, queries, tau):
        searcher, surviving = apply_ops(ops)
        for query in queries:
            assert searcher.search(query, tau) == brute_force(surviving,
                                                              query, tau)

    @given(ops=OPS, query=TEXTS, k=st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_interleaved_top_k_matches_fresh_rebuild(self, ops, query, k):
        searcher, _ = apply_ops(ops)
        fresh = PassJoinSearcher(searcher.records, max_tau=MAX_TAU,
                                 kernel="token-jaccard")
        assert searcher.search_top_k(query, k) == fresh.search_top_k(query, k)

    def test_scripted_interleaving_with_compaction(self):
        sentences = token_sentences(40, seed=11)
        searcher = DynamicSearcher(sentences[:30], max_tau=MAX_TAU,
                                   kernel="token-jaccard", compact_interval=3)
        surviving = dict(enumerate(sentences[:30]))
        for record_id in (0, 7, 13, 29):
            searcher.delete(record_id)
            surviving.pop(record_id)
        for text in sentences[30:]:
            surviving[searcher.insert(text)] = text
        searcher.compact()
        for query in token_sentences(10, seed=12):
            for tau in (0, 40, MAX_TAU):
                assert (searcher.search(query, tau)
                        == brute_force(surviving, query, tau))

    def test_explain_matches_search(self):
        searcher = DynamicSearcher(token_sentences(25, seed=13),
                                   max_tau=MAX_TAU, kernel="token-jaccard")
        for query in ("apple banana", "", "fig grape egg"):
            report = searcher.explain(query, tau=50)
            assert (report["matches"]
                    == [m.to_dict() for m in searcher.search(query, 50)])
            funnel = report["funnel"]
            assert funnel["accepted"] <= funnel["verifications"]


def make_pair(texts, **kwargs):
    """A 2-shard jaccard router and its unsharded oracle."""
    kwargs.setdefault("backend", "thread")
    router = ShardRouter(texts, shards=2, max_tau=MAX_TAU,
                         kernel="token-jaccard", migration_batch=3, **kwargs)
    return router, DynamicSearcher(texts, max_tau=MAX_TAU,
                                   kernel="token-jaccard")


class TestShardedOracle:
    @pytest.mark.parametrize("policy", ["hash", "length", "modulo"])
    @given(ops=OPS, queries=st.lists(TEXTS, min_size=1, max_size=3),
           tau=TAUS)
    @settings(max_examples=40, deadline=None)
    def test_interleaved_ops_match_unsharded(self, policy, ops, queries, tau):
        router, single = make_pair([], policy=policy)
        with router:
            live: set[int] = set()
            for op in ops:
                if op[0] == "insert":
                    assert router.insert(op[1]) == single.insert(op[1])
                    live.add(max(live, default=-1) + 1)
                elif op[0] == "delete":
                    target = op[1] % (max(live) + 1) if live else 0
                    assert router.delete(target) == single.delete(target)
                    live.discard(target)
                elif op[0] == "compact":
                    router.compact()
                    single.compact()
                else:
                    assert router.search(op[1]) == single.search(op[1])
            for query in queries:
                assert router.search(query, tau) == single.search(query, tau)

    def test_live_resharding_between_every_step(self):
        texts = token_sentences(40, seed=21)
        queries = token_sentences(8, seed=22)
        router, single = make_pair(texts, policy="length")
        with router:
            for resize in (router.add_shard, router.remove_shard):
                resize(drain=False)
                while router.rebalance_status()["active"]:
                    router.migration_step()
                    for query in queries:
                        assert router.search(query) == single.search(query)
                        assert (router.search_top_k(query, 3)
                                == single.search_top_k(query, 3))

    @needs_fork
    def test_process_backend_matches_unsharded(self):
        texts = token_sentences(30, seed=23)
        router, single = make_pair(texts, backend="process")
        with router:
            for query in token_sentences(8, seed=24):
                for tau in (0, 50, MAX_TAU):
                    assert router.search(query, tau) == single.search(query,
                                                                      tau)
            assert router.insert("apple fig") == single.insert("apple fig")
            assert router.delete(0) == single.delete(0)
            assert router.search("apple fig") == single.search("apple fig")


class TestServingStack:
    """Cache + grouped batch executor + resharding over the jaccard kernel."""

    def make_service(self, texts, *, shards=2):
        return SimilarityService(
            texts, ServiceConfig(max_tau=MAX_TAU, kernel="token-jaccard",
                                 shards=shards, shard_policy="length",
                                 shard_backend="thread", migration_batch=3))

    def test_cache_and_batch_match_oracle_across_a_live_resize(self):
        texts = token_sentences(30, seed=31)
        surviving = dict(enumerate(texts))
        queries = token_sentences(6, seed=32)
        service = self.make_service(texts)
        try:
            for query in queries:
                request = {"op": "search", "query": query, "tau": 50,
                           "kernel": "token-jaccard"}
                first = service.handle_request(request)
                expected = [m.to_dict()
                            for m in brute_force(surviving, query, 50)]
                assert first["ok"] is True and first["matches"] == expected
                again = service.handle_request(request)
                assert again["cached"] is True
                assert again["matches"] == expected
            # One grouped pass answers the whole batch identically.
            batch = service.handle_request(
                {"op": "search-batch", "queries": queries, "tau": 50})
            assert batch["results"] == [
                [m.to_dict() for m in brute_force(surviving, q, 50)]
                for q in queries]
            # Live resize with queries between the steps: cache entries from
            # the old placement must never leak through.
            service.handle_request({"op": "add-shard", "drain": False})
            while service.rebalance_status()["active"]:
                service.migration_step()
                for query in queries:
                    response = service.handle_request(
                        {"op": "search", "query": query, "tau": 50})
                    assert response["matches"] == [
                        m.to_dict() for m in brute_force(surviving, query, 50)]
            # Mutations keep matching the oracle on the grown fleet.
            new_id = service.handle_request(
                {"op": "insert", "text": "apple banana cherry"})["id"]
            surviving[new_id] = "apple banana cherry"
            assert service.handle_request({"op": "delete", "id": 0})["deleted"]
            surviving.pop(0)
            for query in queries:
                response = service.handle_request(
                    {"op": "search", "query": query, "tau": 50})
                assert response["matches"] == [
                    m.to_dict() for m in brute_force(surviving, query, 50)]
        finally:
            service.close()

    def test_unsharded_service_matches_oracle(self):
        texts = token_sentences(25, seed=33)
        service = SimilarityService(
            texts, ServiceConfig(max_tau=MAX_TAU, kernel="token-jaccard"))
        surviving = dict(enumerate(texts))
        for query in token_sentences(6, seed=34):
            response = service.handle_request(
                {"op": "search", "query": query, "tau": 67})
            assert response["matches"] == [
                m.to_dict() for m in brute_force(surviving, query, 67)]
        counters = service.handle_request({"op": "metrics"})["merged"]["counters"]
        assert counters["engine_verifications.token-jaccard"] > 0
        assert (counters["engine_verifications.token-jaccard"]
                == counters["engine_verifications"])


class TestBatcherCoalescing:
    def test_concurrent_async_queries_over_token_jaccard(self):
        import asyncio

        from repro.service import AsyncServiceClient, BackgroundServer

        texts = token_sentences(25, seed=41)
        surviving = dict(enumerate(texts))
        queries = token_sentences(8, seed=42)
        config = ServiceConfig(port=0, max_tau=MAX_TAU,
                               kernel="token-jaccard")

        async def scenario(address):
            client = await AsyncServiceClient.connect(*address)
            try:
                results = await asyncio.gather(
                    *(client.search(q, 50, kernel="token-jaccard")
                      for q in queries))
            finally:
                await client.close()
            return results

        with BackgroundServer(texts, config) as address:
            results = asyncio.run(scenario(address))
        for query, matches in zip(queries, results):
            assert matches == brute_force(surviving, query, 50)
