"""Unit tests for the shared-prefix incremental verifier (Section 5.3)."""

import random

from repro.distance.levenshtein import edit_distance
from repro.distance.shared_prefix import SharedPrefixVerifier
from repro.types import JoinStatistics


def _bounded(exact: int, tau: int) -> int:
    return exact if exact <= tau else tau + 1


class TestSharedPrefixVerifier:
    def test_single_string_matches_exact_distance(self):
        verifier = SharedPrefixVerifier("partition", tau=3)
        assert verifier.distance("petition") == edit_distance("partition", "petition")

    def test_identical_string_fast_path(self):
        verifier = SharedPrefixVerifier("abc", tau=1)
        assert verifier.distance("abc") == 0

    def test_above_threshold_capped(self):
        verifier = SharedPrefixVerifier("aaaa", tau=2)
        assert verifier.distance("bbbb") == 3

    def test_length_filter(self):
        verifier = SharedPrefixVerifier("short", tau=2)
        assert verifier.distance("a much longer string") == 3

    def test_sequence_of_sorted_strings_matches_oracle(self):
        probe = "kaushik chakrab"
        strings = sorted([
            "kaushik chakrab", "kaushik chakrob", "kaushik chadhui",
            "kaushuk chadhui", "kaushic chaduri", "kaushic chadura",
            "caushik chakrab", "caushik chakrar",
        ])
        tau = 3
        verifier = SharedPrefixVerifier(probe, tau)
        for text in strings:
            expected = _bounded(edit_distance(text, probe), tau)
            assert verifier.distance(text) == expected, text

    def test_prefix_reuse_happens_for_sorted_equal_length_strings(self):
        probe = "similarity joins"
        strings = sorted(["similarity joint", "similarity foins", "similarity joinz",
                          "similarity johns"])
        verifier = SharedPrefixVerifier(probe, tau=2)
        for text in strings:
            verifier.distance(text)
        assert verifier.cache_hits > 0
        assert verifier.rows_reused > 0

    def test_reuse_does_not_change_results_random(self):
        rng = random.Random(99)
        probe = "".join(rng.choice("abc") for _ in range(12))
        strings = sorted("".join(rng.choice("abc") for _ in range(12))
                         for _ in range(60))
        tau = 3
        verifier = SharedPrefixVerifier(probe, tau)
        for text in strings:
            assert verifier.distance(text) == _bounded(edit_distance(text, probe), tau)

    def test_mixed_lengths_invalidate_cache_but_stay_correct(self):
        probe = "abcdefgh"
        strings = ["abcd", "abcdefgh", "abcdefghij", "abcdexgh", "abxdefgh"]
        tau = 2
        verifier = SharedPrefixVerifier(probe, tau)
        for text in strings:
            assert verifier.distance(text) == _bounded(edit_distance(text, probe), tau)

    def test_shares_fewer_cells_than_recomputing(self):
        probe = "approximate string matching"
        variants = sorted(probe[:20] + suffix
                          for suffix in ["matchee", "matcher", "matches", "matchez"])
        shared_stats = JoinStatistics()
        shared = SharedPrefixVerifier(probe, tau=3, stats=shared_stats)
        for text in variants:
            shared.distance(text)

        independent_stats = JoinStatistics()
        for text in variants:
            SharedPrefixVerifier(probe, tau=3, stats=independent_stats).distance(text)
        assert shared_stats.num_matrix_cells < independent_stats.num_matrix_cells

    def test_reset_clears_cache(self):
        verifier = SharedPrefixVerifier("abcdef", tau=1)
        verifier.distance("abcdeg")
        verifier.reset()
        assert verifier.distance("abcdeh") == 1
        assert verifier.cache_hits == 0

    def test_zero_threshold(self):
        verifier = SharedPrefixVerifier("exact", tau=0)
        assert verifier.distance("exact") == 0
        assert verifier.distance("exacu") == 1
