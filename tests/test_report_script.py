"""Tests for the EXPERIMENTS.md report generator script."""

import importlib.util
import sys
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "make_experiments_report.py"


@pytest.fixture(scope="module")
def report_module():
    spec = importlib.util.spec_from_file_location("make_experiments_report", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def tiny_report(report_module):
    return report_module.build_report(scale=0.04)


def test_report_mentions_every_table_and_figure(tiny_report):
    for token in ("Table 2", "Table 3", "Figure 11", "Figures 12 & 13",
                  "Figure 14", "Figure 15", "Figure 16", "Service throughput",
                  "Sharded serving", "Ablations"):
        assert token in tiny_report, token


def test_report_contains_paper_and_measured_sections(tiny_report):
    assert tiny_report.count("**Paper.**") >= 8
    assert tiny_report.count("**Measured.**") >= 8
    assert "scale factor 0.04" in tiny_report


def test_report_tables_are_markdown(tiny_report):
    assert "| dataset" in tiny_report


def test_main_writes_output_file(report_module, tmp_path):
    output = tmp_path / "report.md"
    assert report_module.main(["--scale", "0.04", "--output", str(output)]) == 0
    assert output.exists()
    assert "EXPERIMENTS" in output.read_text(encoding="utf-8")


def test_checked_in_experiments_md_is_current_format():
    text = (Path(__file__).resolve().parent.parent / "EXPERIMENTS.md").read_text(
        encoding="utf-8")
    assert "Pass-Join" in text
    assert "**Measured.**" in text
