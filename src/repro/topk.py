"""Top-k similarity join: the k closest pairs without a fixed threshold.

The related work (Xiao et al., ICDE 2009 [24]) studies joins that return the
k most-similar pairs directly instead of requiring the user to guess an
edit-distance threshold.  On top of Pass-Join this has a simple and exact
formulation: run the threshold join with a growing threshold τ = 0, 1, 2, …
and stop as soon as at least ``k`` pairs have been found — every pair not
yet reported has edit distance greater than the current τ, so the k smallest
distances are already in hand.

Each round rebuilds the join from scratch; because the result sets grow
quickly with τ (and small-τ rounds are cheap), the total cost is dominated
by the final round, which is the same work a user would have spent had they
known the right threshold in advance.
"""

from __future__ import annotations

from typing import Iterable

from .config import JoinConfig
from .core.join import PassJoin
from .types import JoinResult, JoinStatistics, SimilarPair, StringRecord, as_records


def top_k_join(strings: Iterable[str | StringRecord], k: int,
               max_tau: int | None = None,
               config: JoinConfig | None = None) -> JoinResult:
    """Return the ``k`` most-similar pairs of a collection.

    Parameters
    ----------
    strings:
        The collection to self-join.
    k:
        Number of pairs to return.  Fewer pairs are returned when the
        collection has fewer than ``k`` pairs within ``max_tau``.
    max_tau:
        Safety cap on the threshold growth.  Defaults to the length of the
        longest string (at which point every length-compatible pair has been
        considered).
    config:
        Optional :class:`~repro.config.JoinConfig` forwarded to each round.

    Ties at the k-th distance are broken by (left_id, right_id).

    Examples
    --------
    >>> result = top_k_join(["vldb", "pvldb", "vldbj", "sigmod"], k=2)
    >>> sorted((p.left, p.right) for p in result)
    [('vldb', 'pvldb'), ('vldb', 'vldbj')]
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    records = as_records(strings)
    if len(records) < 2:
        return JoinResult(pairs=[], statistics=JoinStatistics(num_strings=len(records)))
    if max_tau is None:
        max_tau = max(record.length for record in records)

    merged_stats = JoinStatistics()
    result = JoinResult(pairs=[])
    for tau in range(0, max_tau + 1):
        result = PassJoin(tau, config).self_join(records)
        merged_stats = merged_stats.merge(result.statistics)
        if len(result) >= k:
            break

    pairs = sorted(result.pairs,
                   key=lambda pair: (pair.distance, pair.left_id, pair.right_id))[:k]
    merged_stats.num_strings = len(records)
    merged_stats.num_results = len(pairs)
    return JoinResult(pairs=pairs, statistics=merged_stats)


def closest_pair(strings: Iterable[str | StringRecord],
                 max_tau: int | None = None,
                 config: JoinConfig | None = None) -> SimilarPair | None:
    """Return the single most-similar pair, or ``None`` for tiny/diverse inputs."""
    result = top_k_join(strings, k=1, max_tau=max_tau, config=config)
    return result.pairs[0] if result.pairs else None
