"""Prefix filtering for edit-distance joins (Chaudhuri et al., ICDE 2006).

Order every string's q-gram set by a fixed global ordering (rare grams
first).  One edit operation destroys at most ``q`` q-grams, so ``τ`` edits
destroy at most ``q·τ`` of them.  Consequently, if two strings are within
edit distance ``τ``, they must share at least one gram among the first
``q·τ + 1`` grams of either string's ordered gram list — the *prefix*.
Candidate generation then only needs an inverted index over prefix grams.

ED-Join (:mod:`repro.baselines.ed_join`) shrinks this prefix further with
location-based mismatch filtering; the helpers here provide the plain
prefix-filtering machinery shared by both q-gram baselines.
"""

from __future__ import annotations

from typing import Sequence

from ..config import validate_threshold


def prefix_length_for_edit_distance(q: int, tau: int) -> int:
    """Length of the probing prefix for gram length ``q`` and threshold ``tau``.

    >>> prefix_length_for_edit_distance(2, 3)
    7
    """
    validate_threshold(tau)
    if q <= 0:
        raise ValueError(f"gram length q must be positive, got {q}")
    return q * tau + 1


def prefixes_share_gram(ordered_grams_a: Sequence[str],
                        ordered_grams_b: Sequence[str],
                        prefix_a: int, prefix_b: int) -> bool:
    """True when the two prefixes have at least one gram in common.

    ``ordered_grams_*`` must be sorted under the same global ordering; the
    check walks both prefixes like a merge, so it is linear in the prefix
    lengths.
    """
    set_a = set(ordered_grams_a[:prefix_a])
    return any(gram in set_a for gram in ordered_grams_b[:prefix_b])
