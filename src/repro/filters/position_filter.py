"""Positional q-gram filtering.

With positional q-grams, a gram of ``a`` at position ``p_a`` can only be
"matched" (i.e. survive the optimal alignment) by an identical gram of ``b``
whose position differs by at most ``τ``: any alignment shifting a character
by more than ``τ`` positions already needs more than ``τ`` edits.  The
q-gram baselines use this to discard inverted-list hits whose positions are
too far apart.
"""

from __future__ import annotations

from ..config import validate_threshold


def positional_match_possible(position_a: int, position_b: int, tau: int) -> bool:
    """True when grams at these positions can correspond under ``≤ τ`` edits.

    >>> positional_match_possible(3, 5, 2)
    True
    >>> positional_match_possible(3, 8, 2)
    False
    """
    return abs(position_a - position_b) <= validate_threshold(tau)
