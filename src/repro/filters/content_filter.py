"""Content-based mismatch filtering (ED-Join, Xiao et al., PVLDB 2008).

Every edit operation changes the character-frequency histogram of a string
by an L1 amount of at most 2 (a substitution decrements one character count
and increments another; an insertion or deletion changes a single count by
one, and the implicit length change accounts for the rest).  Therefore

    ``ed(a, b) ≥ ⌈ L1(freq(a), freq(b)) / 2 ⌉``

which gives a cheap lower bound on the edit distance that is independent of
character order.  ED-Join applies the bound to the suspicious (mismatching)
regions of a candidate pair; applying it to the whole strings is a weaker
but still sound variant, and is what our baseline uses.
"""

from __future__ import annotations

from collections import Counter

from ..config import validate_threshold


def frequency_distance_lower_bound(a: str, b: str) -> int:
    """Lower bound on ``ed(a, b)`` from character-frequency histograms.

    >>> frequency_distance_lower_bound("abc", "abd")
    1
    >>> frequency_distance_lower_bound("aaaa", "bbbb")
    4
    """
    counts_a = Counter(a)
    counts_b = Counter(b)
    l1 = 0
    for character in counts_a.keys() | counts_b.keys():
        l1 += abs(counts_a.get(character, 0) - counts_b.get(character, 0))
    return (l1 + 1) // 2


def content_filter_passes(a: str, b: str, tau: int) -> bool:
    """True when the frequency-histogram bound does not rule the pair out."""
    return frequency_distance_lower_bound(a, b) <= validate_threshold(tau)
