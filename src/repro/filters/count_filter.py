"""q-gram count filtering (Gravano et al., VLDB 2001).

A single edit operation destroys at most ``q`` of a string's positional
q-grams.  Hence two strings ``a`` and ``b`` with ``ed(a, b) ≤ τ`` must share
at least

    ``max(|a|, |b|) − q + 1 − q·τ``

q-grams (counting multiplicity).  When that bound is positive it gives a
cheap necessary condition used by the q-gram join baselines.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from ..config import validate_threshold


def minimum_shared_grams(length_a: int, length_b: int, q: int, tau: int) -> int:
    """Lower bound on the number of q-grams two similar strings must share.

    The bound can be zero or negative, in which case the count filter is
    vacuous (short strings or large thresholds).
    """
    validate_threshold(tau)
    if q <= 0:
        raise ValueError(f"gram length q must be positive, got {q}")
    return max(length_a, length_b) - q + 1 - q * tau


def shared_gram_count(grams_a: Iterable[str], grams_b: Iterable[str]) -> int:
    """Number of q-grams shared by two multisets (counting multiplicity)."""
    counts_a = Counter(grams_a)
    counts_b = Counter(grams_b)
    return sum(min(count, counts_b[gram]) for gram, count in counts_a.items())


def count_filter_passes(grams_a: Iterable[str], grams_b: Iterable[str],
                        length_a: int, length_b: int, q: int, tau: int) -> bool:
    """True when the shared-gram count does not rule the pair out."""
    needed = minimum_shared_grams(length_a, length_b, q, tau)
    if needed <= 0:
        return True
    return shared_gram_count(grams_a, grams_b) >= needed
