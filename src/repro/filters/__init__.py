"""Filtering primitives shared by the baseline join algorithms.

Pass-Join itself only needs the length filter (built into its per-length
index layout), but the q-gram baselines of the evaluation (All-Pairs-Ed,
ED-Join) are built from the classic filter toolbox:

* :mod:`repro.filters.length_filter` — length difference bound.
* :mod:`repro.filters.count_filter` — q-gram count filter.
* :mod:`repro.filters.position_filter` — positional q-gram filter.
* :mod:`repro.filters.prefix_filter` — prefix-filtering framework.
* :mod:`repro.filters.content_filter` — content-based mismatch filter
  (character frequency L1 bound) used by ED-Join.
"""

from .content_filter import content_filter_passes, frequency_distance_lower_bound
from .count_filter import count_filter_passes, minimum_shared_grams
from .length_filter import length_filter_passes
from .position_filter import positional_match_possible
from .prefix_filter import prefix_length_for_edit_distance, prefixes_share_gram

__all__ = [
    "length_filter_passes",
    "count_filter_passes",
    "minimum_shared_grams",
    "positional_match_possible",
    "prefix_length_for_edit_distance",
    "prefixes_share_gram",
    "content_filter_passes",
    "frequency_distance_lower_bound",
]
