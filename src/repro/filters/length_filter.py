"""Length filtering.

Two strings within edit distance ``τ`` differ in length by at most ``τ``
(every insertion or deletion changes the length by exactly one and a
substitution not at all).  This is the cheapest and most widely used filter;
Pass-Join bakes it into the range of index lengths it probes, and every
baseline applies it before any more expensive check.
"""

from __future__ import annotations

from ..config import validate_threshold


def length_filter_passes(length_a: int, length_b: int, tau: int) -> bool:
    """True when strings of these lengths could be within edit distance ``tau``.

    >>> length_filter_passes(10, 13, 3)
    True
    >>> length_filter_passes(10, 14, 3)
    False
    """
    return abs(length_a - length_b) <= validate_threshold(tau)


def compatible_length_range(length: int, tau: int) -> range:
    """Lengths a partner string may have: ``[length − τ, length + τ]``.

    The lower bound is clamped at zero.

    >>> list(compatible_length_range(2, 3))
    [0, 1, 2, 3, 4, 5]
    """
    tau = validate_threshold(tau)
    return range(max(0, length - tau), length + tau + 1)
