"""Online similarity-search serving layer (beyond the paper).

The paper's segment index is built once per batch join; this package turns
it into a long-lived service on the path to the ROADMAP's "heavy traffic"
north star.  Three layers, composable and individually testable:

1. **Dynamic index** — :class:`DynamicSearcher`: the Pass-Join search
   index with ``insert``/``delete`` (tombstones + periodic compaction).
   Search and top-k stay exact: results are always identical to a fresh
   :class:`~repro.search.searcher.PassJoinSearcher` over the surviving
   strings.
2. **Serving core** — :class:`QueryCache` (LRU keyed on the query,
   invalidated wholesale when the collection's mutation epoch moves) and
   :class:`RequestBatcher` (coalesces concurrent lookups into one index
   pass); :class:`SimilarityService` wires the two around the dynamic
   index and speaks the request/response vocabulary.
3. **Transport** — :class:`SimilarityServer`, an asyncio JSON-lines TCP
   server, with :class:`ServiceClient` (blocking) and
   :class:`AsyncServiceClient` (asyncio) counterparts, and
   :class:`BackgroundServer` to host the stack from synchronous code.
4. **Sharding** — :class:`ShardRouter` partitions the live collection
   across an elastic fleet of shard workers (in-process or fork-spawned
   processes) and scatter-gathers queries with results element-identical
   to a single :class:`DynamicSearcher`; enabled via
   ``ServiceConfig(shards=N)``.  Placement is a pluggable
   :class:`~repro.service.placement.PlacementMap` (consistent-hash ring,
   length bands, legacy modulo), and ``add_shard``/``remove_shard``
   resize the fleet live — records stream between shards in bounded
   batches while queries keep being answered exactly.

Every layer is observable through :mod:`repro.obs`: the service records
per-op request counts, error counts, and latency histograms into a
:class:`~repro.obs.metrics.MetricsRegistry`; the engine's filter-funnel
counters (and each shard's, merged across the fleet) are exposed by the
``metrics`` wire op with Prometheus rendering; the ``explain`` op traces
one probe into a per-stage funnel breakdown; and requests slower than
:attr:`~repro.config.ServiceConfig.slow_query_ms` hit a structured JSON
slow-query log.

Configuration lives in :class:`repro.config.ServiceConfig`; the CLI
exposes the stack as ``passjoin serve`` / ``passjoin query`` /
``passjoin admin metrics``.
"""

from ..config import DEFAULT_SERVICE_CONFIG, ServiceConfig
from .batcher import BatcherStats, RequestBatcher
from .cache import CacheStats, QueryCache
from .client import AsyncServiceClient, ServiceClient
from .dynamic import DynamicSearcher
from .placement import (ConsistentHashPlacementMap, LengthBandPlacementMap,
                        ModuloPlacementMap, PlacementMap, make_placement_map)
from .server import (BackgroundServer, SimilarityServer, SimilarityService,
                     run_service)
from .sharding import (SHARD_BACKENDS, SHARD_POLICIES, ShardContext,
                       ShardRouter, make_shard_policy, resolve_shard_backend)

__all__ = [
    "DynamicSearcher",
    "ShardRouter",
    "ShardContext",
    "PlacementMap",
    "ConsistentHashPlacementMap",
    "LengthBandPlacementMap",
    "ModuloPlacementMap",
    "make_placement_map",
    "make_shard_policy",
    "resolve_shard_backend",
    "SHARD_POLICIES",
    "SHARD_BACKENDS",
    "QueryCache",
    "CacheStats",
    "RequestBatcher",
    "BatcherStats",
    "SimilarityService",
    "SimilarityServer",
    "BackgroundServer",
    "run_service",
    "ServiceClient",
    "AsyncServiceClient",
    "ServiceConfig",
    "DEFAULT_SERVICE_CONFIG",
]
