"""Coalesce concurrent lookups into one index pass.

Under concurrent load many clients ask similar (often identical) questions
in the same scheduling quantum.  :class:`RequestBatcher` sits between the
asyncio transport and the (synchronous) index: requests submitted while a
batch is open are queued, duplicates are answered by a single execution,
and the whole batch runs in one call into the serving core — one
cache-epoch check, one pass over the index per unique query, and no
interleaved mutations in the middle of a batch.

The batcher is transport-agnostic: it only needs a callable that maps a
list of unique request keys to a list of results.  That keeps it testable
without sockets, and reusable for any future transport (HTTP, unix domain
sockets, ...).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Callable, Hashable, Sequence, TypeVar

Key = TypeVar("Key", bound=Hashable)


@dataclass(slots=True)
class BatcherStats:
    """Accounting for one :class:`RequestBatcher`."""

    requests: int = 0
    batches: int = 0
    unique_executed: int = 0

    @property
    def coalesced(self) -> int:
        """Requests answered without their own execution (duplicates)."""
        return self.requests - self.unique_executed

    def as_dict(self) -> dict[str, int]:
        return {"requests": self.requests, "batches": self.batches,
                "unique_executed": self.unique_executed,
                "coalesced": self.coalesced}


class RequestBatcher:
    """Group concurrent :meth:`submit` calls into batched executions.

    Parameters
    ----------
    execute:
        Synchronous callable mapping a list of **unique** keys to their
        results, in order.  It runs on the event-loop thread (the index is
        pure CPU work with no await points, exactly like the rest of the
        request handler).
    max_batch:
        Batch size that triggers an immediate drain.
    window:
        Seconds a non-full batch waits for more requests before draining.
        ``0`` still coalesces: the drain is scheduled as a task, so every
        request submitted before the loop runs it joins the batch.

    Examples
    --------
    >>> import asyncio
    >>> batcher = RequestBatcher(lambda keys: [k.upper() for k in keys])
    >>> async def two():
    ...     return await asyncio.gather(batcher.submit("a"), batcher.submit("a"))
    >>> asyncio.run(two())
    ['A', 'A']
    """

    def __init__(self, execute: Callable[[list[Key]], Sequence[object]], *,
                 max_batch: int = 64, window: float = 0.002) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be positive, got {max_batch!r}")
        if window < 0:
            raise ValueError(f"window must be non-negative, got {window!r}")
        self._execute = execute
        self.max_batch = max_batch
        self.window = window
        self.stats = BatcherStats()
        self._pending: list[tuple[Key, asyncio.Future]] = []
        self._drain_task: asyncio.Task | None = None

    async def submit(self, key: Key) -> object:
        """Queue one request and await its result.

        Identical keys in the same batch share one execution.  A waiter
        gets its own shallow copy when the result is a plain list;
        results of any other shape are shared between duplicate waiters
        and must be treated as read-only.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((key, future))
        self.stats.requests += 1
        if len(self._pending) >= self.max_batch:
            if self._drain_task is not None:
                self._drain_task.cancel()
                self._drain_task = None
            self._drain()
        elif self._drain_task is None:
            self._drain_task = loop.create_task(self._drain_later())
        return await future

    async def _drain_later(self) -> None:
        try:
            if self.window:
                await asyncio.sleep(self.window)
        finally:
            self._drain_task = None
        self._drain()

    def _drain(self) -> None:
        batch, self._pending = self._pending, []
        if not batch:
            return
        self.stats.batches += 1
        unique: list[Key] = []
        positions: dict[Key, int] = {}
        for key, _ in batch:
            if key not in positions:
                positions[key] = len(unique)
                unique.append(key)
        try:
            results = self._execute(unique)
        except Exception as error:  # noqa: BLE001 - forwarded to every waiter
            for _, future in batch:
                if not future.cancelled():
                    future.set_exception(error)
            return
        self.stats.unique_executed += len(unique)
        for key, future in batch:
            if future.cancelled():
                continue
            result = results[positions[key]]
            future.set_result(list(result) if isinstance(result, list) else result)
