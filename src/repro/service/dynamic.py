"""A mutable build-once index: kernel search over a living collection.

:class:`DynamicSearcher` is the online counterpart of
:class:`~repro.search.searcher.PassJoinSearcher`: the same signature index
and filter-and-verify pipeline — for whichever
:class:`~repro.core.kernel.SimilarityKernel` it serves — but the collection
may change between queries.

* :meth:`~DynamicSearcher.insert` generates the new record's signatures and
  places them at their *sorted* positions in the inverted lists (for the
  edit-distance kernel's segment index), so the alphabetical-posting
  invariant the share-prefix verifier exploits keeps holding under
  arbitrary insertions (results never depended on posting order — they are
  deduplicated by id and sorted by ``(distance, id)`` — but the invariant
  keeps every verifier, present and future, usable on a mutated index).
* :meth:`~DynamicSearcher.delete` is a **tombstone**: the record's postings
  stay in the index but every search filters its id out, which makes
  deletion O(1).  Once ``compact_interval`` tombstones accumulate,
  :meth:`~DynamicSearcher.compact` physically purges them via the
  backend's ``remove_indexed`` (deletion cost is amortised and the index
  never drifts far from the fresh-build footprint).

Every mutation bumps :attr:`~DynamicSearcher.epoch`, the invalidation token
consumed by :class:`~repro.service.cache.QueryCache`.

With ``log_mutations=True`` the searcher additionally keeps an epoch-tagged
**mutation log** — one ``(epoch_after, op, payload)`` entry per explicit
``insert``/``delete``/``compact`` — which the sharded router streams to a
shard's read replicas (:meth:`~DynamicSearcher.mutation_log_tail` /
:meth:`~DynamicSearcher.apply_mutations`).  Automatic compactions inside
:meth:`~DynamicSearcher._bump` are deliberately *not* logged: a replica
replaying the same explicit ops auto-compacts at exactly the same points
(the trigger is a pure function of the op stream and ``compact_interval``),
so primary and replica epochs stay in lockstep entry for entry — which is
what lets the per-shard epoch double as the replica-freshness token.

Exactness: search and top-k results are identical — element for element —
to re-building a fresh ``PassJoinSearcher`` over the surviving records,
because both run the same kernel backend over the same logical collection
and the result ordering is canonical.  The property-based test suite
asserts this equivalence on random interleavings, for both kernels.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Callable, Iterable, Sequence

from ..config import PartitionStrategy
from ..core.kernel import (SimilarityKernel, check_batch_kernels,
                           resolve_kernel)
from ..exceptions import InvalidThresholdError
from ..obs.trace import ProbeTrace, build_explain_report
from ..search.searcher import (SearchMatch, resolve_query_taus,
                               wrap_batch_matches)
from ..types import JoinStatistics, StringRecord, as_records


def coerce_insert_record(text: str | StringRecord, id: int | None,
                         next_id: int) -> StringRecord:
    """Resolve an ``insert(text, id=...)`` call to the record to store.

    Shared by :class:`DynamicSearcher` and the sharded router so the two
    can never diverge on id semantics: a ready-made record keeps its id
    unless ``id=`` overrides it; plain text takes ``id=`` or the caller's
    next auto id (one above the largest ever seen).
    """
    if isinstance(text, StringRecord):
        return text if id is None else StringRecord(id=id, text=text.text)
    return StringRecord(id=next_id if id is None else id, text=str(text))


class DynamicSearcher:
    """Approximate similarity search over a mutable collection.

    Parameters
    ----------
    strings:
        Initial collection (plain strings or
        :class:`~repro.types.StringRecord` objects with caller-chosen ids;
        ids must be unique — a duplicate raises ``ValueError``, as it
        would leave one record's postings behind as a searchable ghost).
    max_tau:
        Largest threshold any query may use, under the kernel's
        semantics (edit distance; scaled Jaccard distance).
    partition:
        Partition strategy for the edit-distance kernel (the paper's even
        scheme by default; other kernels reject non-default values).
    compact_interval:
        Tombstone budget: once this many deleted records are still
        physically present in the index, the next mutation compacts.
        ``0`` compacts on every delete.
    kernel:
        Similarity kernel to serve — a registered name or a
        :class:`~repro.core.kernel.SimilarityKernel` instance; defaults
        to ``edit-distance``.
    log_mutations:
        Keep an epoch-tagged mutation log for replica catch-up (see the
        module docstring).  Off by default — only a shard primary with
        read replicas pays the bookkeeping.

    Examples
    --------
    >>> searcher = DynamicSearcher(["vldb", "sigmod"], max_tau=1)
    >>> searcher.insert("pvldb")
    2
    >>> [m.text for m in searcher.search("vldb", tau=1)]
    ['vldb', 'pvldb']
    >>> searcher.delete(0)
    True
    >>> [m.text for m in searcher.search("vldb", tau=1)]
    ['pvldb']
    """

    def __init__(self, strings: Iterable[str | StringRecord] = (), *,
                 max_tau: int, partition: PartitionStrategy = PartitionStrategy.EVEN,
                 compact_interval: int = 64,
                 kernel: str | SimilarityKernel | None = None,
                 log_mutations: bool = False) -> None:
        self.kernel = resolve_kernel(kernel)
        self.max_tau = self.kernel.validate_tau(max_tau)
        if (isinstance(compact_interval, bool)
                or not isinstance(compact_interval, int) or compact_interval < 0):
            raise ValueError(f"compact_interval must be a non-negative integer, "
                             f"got {compact_interval!r}")
        self.compact_interval = compact_interval
        self.statistics = JoinStatistics()
        records = as_records(strings)
        self._backend = self.kernel.make_backend(
            self.max_tau, partition=partition, seed=records)
        self._live: dict[int, StringRecord] = {}
        # live partition key -> number of live records with that key (lets
        # top-k widening skip thresholds no live record can possibly meet).
        self._length_counts: dict[int, int] = {}
        # id -> record still present in the signature index but logically gone.
        self._tombstones: dict[int, StringRecord] = {}
        self._epoch = 0
        self._next_id = 0
        # Epoch-tagged (epoch_after, op, payload) entries for replica
        # catch-up; None when logging is off (the common case).
        self._mutation_log: deque[tuple[int, str, object]] | None = (
            deque() if log_mutations else None)
        self._log_trimmed_through = 0
        for record in records:
            if record.id in self._live:
                # A duplicate would leave the loser's postings (and short-
                # pool/length bookkeeping) behind as a searchable ghost.
                raise ValueError(
                    f"duplicate id {record.id} in the initial collection")
            self._insert_record(record)
        self.statistics.num_strings = len(self._live)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._live)

    @property
    def epoch(self) -> int:
        """Mutation counter: bumped by every insert, every delete, and every
        compaction that physically purges postings.

        A compaction with nothing to purge is a logical no-op (the visible
        collection is unchanged), so it deliberately leaves the epoch — and
        therefore every cached query result — intact.
        """
        return self._epoch

    @property
    def tombstone_count(self) -> int:
        """Deleted records still physically present in the index."""
        return len(self._tombstones)

    @property
    def records(self) -> list[StringRecord]:
        """The live records, ordered by id (a snapshot, safe to mutate)."""
        return [self._live[record_id] for record_id in sorted(self._live)]

    @property
    def _index(self):
        """The backend's signature index (edit-distance kernel only)."""
        return self._backend.index

    @property
    def _short_pool(self) -> dict[int, StringRecord]:
        """Records the kernel cannot index (too short; token-less)."""
        return self._backend.short_pool

    @property
    def _selector(self):
        """The backend's substring selector (edit-distance kernel only)."""
        return self._backend.selector

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, text: str | StringRecord, *, id: int | None = None) -> int:
        """Add one string; return its id.

        Ids are auto-assigned (one above the largest ever seen) unless the
        caller provides one via ``id=`` or a ready-made
        :class:`~repro.types.StringRecord`.  Inserting a live id raises
        ``ValueError``; re-using a tombstoned id is allowed (the stale
        postings are purged first so the old record cannot resurface).
        """
        record = coerce_insert_record(text, id, self._next_id)
        if record.id in self._live:
            raise ValueError(f"id {record.id} is already in the collection")
        stale = self._tombstones.pop(record.id, None)
        if stale is not None:
            self._backend.remove_indexed(stale)
        self._insert_record(record)
        self.statistics.num_strings += 1
        self._bump()
        self._log("insert", record)
        return record.id

    def get_many(self, record_ids: Iterable[int]) -> list[StringRecord]:
        """The live records among ``record_ids``, in the order given.

        Ids that are not live (never inserted, deleted, tombstoned) are
        silently skipped — the shard-migration extract step uses this to
        tolerate records deleted between planning and copying.
        """
        live = self._live
        return [live[record_id] for record_id in record_ids
                if record_id in live]

    def insert_many(self, records: Iterable[str | StringRecord]) -> list[int]:
        """Insert several records (:meth:`insert` semantics); return the ids."""
        return [self.insert(record) for record in records]

    def delete_many(self, record_ids: Iterable[int]) -> int:
        """Delete several records by id; return how many were live."""
        return sum(self.delete(record_id) for record_id in record_ids)

    def delete(self, record_id: int) -> bool:
        """Tombstone one record by id; return False when it is not live."""
        record = self._live.pop(record_id, None)
        if record is None:
            return False
        if not self._backend.unpool(record_id):
            self._tombstones[record_id] = record
        key = self.kernel.record_key(record.text)
        remaining = self._length_counts.get(key, 0) - 1
        if remaining > 0:
            self._length_counts[key] = remaining
        else:
            self._length_counts.pop(key, None)
        self.statistics.num_strings -= 1
        self._bump()
        self._log("delete", record_id)
        return True

    def compact(self) -> int:
        """Purge every tombstone from the signature index; return the count.

        After compaction the index holds exactly the postings a fresh build
        over the live records would (posting order aside), so memory does
        not leak across delete-heavy workloads.  A compaction that purges
        anything bumps :attr:`epoch` — the physical index changed, and
        downstream caches keyed on the epoch must not outlive it — while a
        no-op compaction (no tombstones) leaves the epoch untouched.
        """
        purged = self._compact()
        if purged:
            self._log("compact", None)
        return purged

    def _compact(self) -> int:
        """The compaction work, without mutation-log bookkeeping.

        :meth:`_bump`'s automatic compaction comes through here so it is
        never logged — a replica replaying the explicit op stream triggers
        the same automatic compactions itself (see the module docstring).
        """
        purged = len(self._tombstones)
        for record in self._tombstones.values():
            self._backend.remove_indexed(record)
        self._tombstones.clear()
        if purged:
            self._epoch += 1
        self.statistics.index_entries = self._backend.entry_count()
        self.statistics.index_bytes = self._backend.approximate_bytes()
        return purged

    def _insert_record(self, record: StringRecord) -> None:
        self.statistics.num_indexed_segments += self._backend.add(record)
        self._live[record.id] = record
        key = self.kernel.record_key(record.text)
        self._length_counts[key] = self._length_counts.get(key, 0) + 1
        self._next_id = max(self._next_id, record.id + 1)
        self.statistics.index_entries = self._backend.entry_count()
        self.statistics.index_bytes = self._backend.approximate_bytes()

    def _bump(self) -> None:
        self._epoch += 1
        if len(self._tombstones) > self.compact_interval:
            self._compact()
        self.statistics.index_entries = self._backend.entry_count()
        self.statistics.index_bytes = self._backend.approximate_bytes()

    def _log(self, op: str, payload: object) -> None:
        if self._mutation_log is not None:
            self._mutation_log.append((self._epoch, op, payload))

    # ------------------------------------------------------------------
    # Replication (the router streams these between primary and replicas)
    # ------------------------------------------------------------------
    def mutation_log_tail(self, since_epoch: int,
                          ) -> list[tuple[int, str, object]]:
        """The logged mutations past ``since_epoch``, oldest first.

        The replica catch-up stream: a replica whose applied epoch is
        ``since_epoch`` reaches this searcher's epoch by replaying exactly
        these entries through :meth:`apply_mutations`.  Raises
        ``ValueError`` when logging is off, or when the requested span was
        already trimmed away (the replica is too stale to catch up from
        the log and needs a full rebuild).
        """
        if self._mutation_log is None:
            raise ValueError("mutation logging is disabled on this searcher")
        if since_epoch < self._log_trimmed_through:
            raise ValueError(
                f"mutation log only reaches back to epoch "
                f"{self._log_trimmed_through}; a replica at epoch "
                f"{since_epoch} cannot catch up from it")
        return [entry for entry in self._mutation_log
                if entry[0] > since_epoch]

    def trim_mutation_log(self, upto_epoch: int) -> int:
        """Drop log entries at or below ``upto_epoch``; return the count.

        Called by the router once every replica's applied epoch passed
        ``upto_epoch``, so the log stays bounded by replication lag
        instead of growing with the mutation history.
        """
        log = self._mutation_log
        if log is None:
            return 0
        trimmed = 0
        while log and log[0][0] <= upto_epoch:
            log.popleft()
            trimmed += 1
        if upto_epoch > self._log_trimmed_through:
            self._log_trimmed_through = upto_epoch
        return trimmed

    def apply_mutations(self, entries: Iterable[tuple[int, str, object]],
                        ) -> int:
        """Replay primary log entries on a replica; return how many applied.

        Entries at or below the current epoch are skipped (idempotent
        re-delivery).  After each replayed entry the epoch must land
        exactly on the entry's ``epoch_after`` — logged epochs advance
        deterministically, so any mismatch means this replica diverged
        from its primary, and serving from it could return a stale or
        wrong answer.  Divergence raises ``ValueError``; the router
        responds by marking the replica dead and falling back to the
        primary, never by serving the diverged index.
        """
        applied = 0
        for epoch_after, op, payload in entries:
            if epoch_after <= self._epoch:
                continue
            if op == "insert":
                self.insert(payload)
            elif op == "delete":
                self.delete(payload)
            elif op == "compact":
                self.compact()
            else:
                raise ValueError(f"unknown mutation-log op {op!r}")
            if self._epoch != epoch_after:
                raise ValueError(
                    f"replica diverged from its primary: epoch "
                    f"{self._epoch} after replaying {op!r}, but the "
                    f"primary logged {epoch_after}")
            applied += 1
        return applied

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def search(self, query: str, tau: int | None = None) -> list[SearchMatch]:
        """Return every live string within ``tau`` of ``query``.

        ``tau`` defaults to ``max_tau`` and must not exceed it.  Results
        are sorted by ``(distance, id)`` — identical to a fresh
        :class:`~repro.search.searcher.PassJoinSearcher` over the live
        records.
        """
        tau = self.max_tau if tau is None else self.kernel.validate_tau(tau)
        if tau > self.max_tau:
            raise InvalidThresholdError(tau)
        found = self._search(query, tau)
        self.statistics.num_results += len(found)
        return found

    def _search(self, query: str, tau: int,
                exclude: "dict[int, SearchMatch] | None" = None,
                ) -> list[SearchMatch]:
        """One filter-and-verify pass (validated ``tau``, no result counting).

        ``exclude`` skips record ids whose distance is already known — the
        top-k widening loop passes its accumulated matches so earlier rounds'
        hits are never verified again.
        """
        stats = self.statistics
        tombstones = self._tombstones
        accept = None
        if tombstones or exclude:
            def accept(record_id: int) -> bool:
                if record_id in tombstones:
                    return False
                return exclude is None or record_id not in exclude
        matches = self._backend.probe(query, tau, stats=stats, accept=accept)
        return sorted((SearchMatch(distance, record.id, record.text)
                       for record, distance in matches),
                      key=SearchMatch.sort_key)

    def explain(self, query: str, tau: int | None = None) -> dict[str, Any]:
        """Run one traced probe and return the per-stage funnel breakdown.

        Dynamic counterpart of :meth:`PassJoinSearcher.explain
        <repro.search.searcher.PassJoinSearcher.explain>`: the probe runs
        the exact :meth:`search` pipeline — including the tombstone filter,
        whose rejections show up as ``filtered_excluded`` in the per-length
        entries — against a private :class:`~repro.types.JoinStatistics`,
        so production counters stay untouched and the report's funnel is an
        exact per-query delta.  ``funnel.accepted`` equals ``num_matches``,
        which equals what :meth:`search` returns for the same arguments.
        """
        tau = self.max_tau if tau is None else self.kernel.validate_tau(tau)
        if tau > self.max_tau:
            raise InvalidThresholdError(tau)
        stats = JoinStatistics()
        verifier = self._backend.new_verifier(tau, stats)
        trace = ProbeTrace()
        tombstones = self._tombstones
        accept = None
        if tombstones:
            def accept(record_id: int) -> bool:
                return record_id not in tombstones
        started = time.perf_counter()
        raw = self._backend.probe(query, tau, stats=stats, accept=accept,
                                  trace=trace, verifier=verifier)
        total_seconds = time.perf_counter() - started
        matches = sorted((SearchMatch(distance, record.id, record.text)
                          for record, distance in raw),
                         key=SearchMatch.sort_key)
        return build_explain_report(
            query=query, tau=tau, verifier=verifier, trace=trace,
            stats=stats, matches=matches, total_seconds=total_seconds)

    def search_many(self, queries: Sequence[str],
                    tau: int | Sequence[int | None] | None = None,
                    kernel: "str | Sequence[str | None] | None" = None,
                    ) -> list[list[SearchMatch]]:
        """Answer a batch of queries in one grouped index pass.

        Batch counterpart of :meth:`search` with the semantics of
        :meth:`PassJoinSearcher.search_many
        <repro.search.searcher.PassJoinSearcher.search_many>`: ``tau`` is a
        scalar for the whole batch or a per-query sequence, duplicates are
        executed once, same-length queries share their selection windows,
        and every result list is element-identical to a :meth:`search`
        call over the same live collection.  ``kernel`` (scalar or
        per-query) must name the served kernel; a batch naming two
        different kernels is rejected outright (see
        :func:`check_batch_kernels`).
        """
        check_batch_kernels(self.kernel, kernel)
        taus = resolve_query_taus(queries, tau, self.max_tau)
        stats = self.statistics
        tombstones = self._tombstones
        accept = None
        if tombstones:
            def accept(record_id: int) -> bool:
                return record_id not in tombstones
        raw = self._backend.probe_many(
            list(zip(queries, taus)), stats=stats, accept=accept)
        return wrap_batch_matches(raw, stats)

    def index_memory(self) -> dict[str, int]:
        """Memory figures of the signature index (the ``stats`` op payload).

        ``records`` counts live store rows — tombstoned records remain
        until compaction purges them; ``approximate_bytes`` covers the
        inverted lists plus the record columns (see the backend's
        ``memory_report``).
        """
        return self._backend.memory_report()

    def _any_live_length_within(self, query: str, tau: int) -> bool:
        """True when some live record passes the partition-key filter."""
        counts = self._length_counts
        lo, hi = self.kernel.probe_key_range(query, tau)
        if hi - lo + 1 > len(counts):
            return any(lo <= key <= hi for key in counts)
        return any(key in counts for key in range(lo, hi + 1))

    def search_top_k(self, query: str, k: int,
                     max_tau: int | None = None) -> list[SearchMatch]:
        """Return the ``k`` live strings closest to ``query``.

        Same widening strategy and deterministic ``(distance, id)``
        tie-breaking as :meth:`PassJoinSearcher.search_top_k`, but each
        widening round is incremental: matches found at a smaller threshold
        carry over (a round at ``tau`` can only add matches at distance
        exactly ``tau``), rounds that cannot add results — every live string
        already matched, or no live string passes the length filter at this
        ``tau`` — are skipped outright, and ``num_results`` counts only the
        matches actually returned instead of re-counting every round.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        limit = self.max_tau if max_tau is None else min(
            self.kernel.validate_tau(max_tau), self.max_tau)
        found: dict[int, SearchMatch] = {}
        for tau in range(0, limit + 1):
            if len(found) >= k or len(found) == len(self._live):
                break
            if not self._any_live_length_within(query, tau):
                continue
            for match in self._search(query, tau, exclude=found):
                found[match.id] = match
        best = sorted(found.values(), key=SearchMatch.sort_key)[:k]
        self.statistics.num_results += len(best)
        return best

    def search_top_k_many(self, queries: Sequence[str], k: int,
                          max_tau: int | None = None,
                          kernel: "str | Sequence[str | None] | None" = None,
                          ) -> list[list[SearchMatch]]:
        """Batch :meth:`search_top_k`: widen tau in lockstep across queries.

        One :func:`~repro.core.engine.probe_many` pass per tau round
        answers every query that still needs matches, so the whole batch
        shares selection windows (and the backend's persistent window
        cache) per round instead of re-probing per query.  Each query
        keeps the incremental semantics of :meth:`search_top_k` exactly:
        earlier rounds' hits carry over and are excluded from later probes
        (via the per-query ``accept`` hook of the v2 batch executor),
        queries with ``k`` matches — or with every live record already
        matched — retire from later rounds, and rounds no live length can
        serve are skipped per query.  Duplicate queries in the batch widen
        once.  Each result list is element-identical to
        ``search_top_k(query, k, max_tau)`` — the property-test contract.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        check_batch_kernels(self.kernel, kernel)
        limit = self.max_tau if max_tau is None else min(
            self.kernel.validate_tau(max_tau), self.max_tau)
        stats = self.statistics
        tombstones = self._tombstones
        live_count = len(self._live)

        unique: dict[str, list[int]] = {}
        for position, query in enumerate(queries):
            unique.setdefault(query, []).append(position)
        states: list[tuple[str, list[int], dict[int, SearchMatch]]] = [
            (query, positions, {}) for query, positions in unique.items()]

        def make_accept(found: dict[int, SearchMatch],
                        ) -> Callable[[int], bool]:
            def accept(record_id: int) -> bool:
                return record_id not in tombstones and record_id not in found
            return accept

        active = list(range(len(states)))
        for tau in range(0, limit + 1):
            if not active:
                break
            still_active: list[int] = []
            round_members: list[int] = []
            for state_index in active:
                query, _, found = states[state_index]
                if len(found) >= k or len(found) == live_count:
                    continue  # satisfied (or exhausted): retire permanently
                still_active.append(state_index)
                if self._any_live_length_within(query, tau):
                    round_members.append(state_index)
            active = still_active
            if not round_members:
                continue
            raw = self._backend.probe_many(
                [(states[state_index][0], tau)
                 for state_index in round_members],
                stats=stats,
                accept=[make_accept(states[state_index][2])
                        for state_index in round_members])
            for state_index, matches in zip(round_members, raw):
                found = states[state_index][2]
                for record, distance in matches:
                    found[record.id] = SearchMatch(distance, record.id,
                                                   record.text)

        results: list[list[SearchMatch]] = [[] for _ in queries]
        for _, positions, found in states:
            best = sorted(found.values(), key=SearchMatch.sort_key)[:k]
            for position in positions:
                stats.num_results += len(best)
                results[position] = list(best)
        return results

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DynamicSearcher(live={len(self._live)}, "
                f"tombstones={len(self._tombstones)}, epoch={self._epoch}, "
                f"kernel={self.kernel.name!r}, max_tau={self.max_tau})")
