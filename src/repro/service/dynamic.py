"""A mutable build-once index: Pass-Join search over a living collection.

:class:`DynamicSearcher` is the online counterpart of
:class:`~repro.search.searcher.PassJoinSearcher`: the same segment index and
filter-and-verify pipeline, but the collection may change between queries.

* :meth:`~DynamicSearcher.insert` partitions the new string and appends its
  segments to the inverted lists (appending does not disturb correctness:
  search results are deduplicated by id and sorted by ``(distance, id)``,
  so posting order never shows through).
* :meth:`~DynamicSearcher.delete` is a **tombstone**: the record's postings
  stay in the index but every search filters its id out, which makes
  deletion O(1).  Once ``compact_interval`` tombstones accumulate,
  :meth:`~DynamicSearcher.compact` physically purges them via
  :meth:`~repro.core.index.SegmentIndex.remove` (deletion cost is amortised
  and the index never drifts far from the fresh-build footprint).

Every mutation bumps :attr:`~DynamicSearcher.epoch`, the invalidation token
consumed by :class:`~repro.service.cache.QueryCache`.

Exactness: search and top-k results are identical — element for element —
to re-building a fresh ``PassJoinSearcher`` over the surviving records,
because both run the same selector/verifier over the same logical
collection and the result ordering is canonical.  The property-based test
suite asserts this equivalence on random interleavings.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..config import PartitionStrategy, validate_threshold
from ..core.engine import probe_record
from ..core.index import SegmentIndex
from ..core.partition import can_partition
from ..core.selection import MultiMatchAwareSelector
from ..core.verify import ExtensionVerifier
from ..exceptions import InvalidThresholdError
from ..search.searcher import SearchMatch
from ..types import JoinStatistics, StringRecord, as_records


class DynamicSearcher:
    """Approximate string search over a mutable collection.

    Parameters
    ----------
    strings:
        Initial collection (plain strings or
        :class:`~repro.types.StringRecord` objects with caller-chosen ids).
    max_tau:
        Largest edit-distance threshold any query may use.
    partition:
        Partition strategy (the paper's even scheme by default).
    compact_interval:
        Tombstone budget: once this many deleted records are still
        physically present in the index, the next mutation compacts.
        ``0`` compacts on every delete.

    Examples
    --------
    >>> searcher = DynamicSearcher(["vldb", "sigmod"], max_tau=1)
    >>> searcher.insert("pvldb")
    2
    >>> [m.text for m in searcher.search("vldb", tau=1)]
    ['vldb', 'pvldb']
    >>> searcher.delete(0)
    True
    >>> [m.text for m in searcher.search("vldb", tau=1)]
    ['pvldb']
    """

    def __init__(self, strings: Iterable[str | StringRecord] = (), *,
                 max_tau: int, partition: PartitionStrategy = PartitionStrategy.EVEN,
                 compact_interval: int = 64) -> None:
        self.max_tau = validate_threshold(max_tau)
        if (isinstance(compact_interval, bool)
                or not isinstance(compact_interval, int) or compact_interval < 0):
            raise ValueError(f"compact_interval must be a non-negative integer, "
                             f"got {compact_interval!r}")
        self.compact_interval = compact_interval
        self.statistics = JoinStatistics()
        self._index = SegmentIndex(self.max_tau, partition)
        self._selector = MultiMatchAwareSelector(self.max_tau)
        self._live: dict[int, StringRecord] = {}
        self._short_pool: dict[int, StringRecord] = {}
        # id -> record still present in the segment index but logically gone.
        self._tombstones: dict[int, StringRecord] = {}
        self._epoch = 0
        self._next_id = 0
        for record in as_records(strings):
            self._insert_record(record)
        self.statistics.num_strings = len(self._live)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._live)

    @property
    def epoch(self) -> int:
        """Mutation counter: bumped by every insert/delete/compact."""
        return self._epoch

    @property
    def tombstone_count(self) -> int:
        """Deleted records still physically present in the index."""
        return len(self._tombstones)

    @property
    def records(self) -> list[StringRecord]:
        """The live records, ordered by id (a snapshot, safe to mutate)."""
        return [self._live[record_id] for record_id in sorted(self._live)]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, text: str | StringRecord, *, id: int | None = None) -> int:
        """Add one string; return its id.

        Ids are auto-assigned (one above the largest ever seen) unless the
        caller provides one via ``id=`` or a ready-made
        :class:`~repro.types.StringRecord`.  Inserting a live id raises
        ``ValueError``; re-using a tombstoned id is allowed (the stale
        postings are purged first so the old record cannot resurface).
        """
        if isinstance(text, StringRecord):
            record = text if id is None else StringRecord(id=id, text=text.text)
        else:
            record = StringRecord(id=self._next_id if id is None else id,
                                  text=str(text))
        if record.id in self._live:
            raise ValueError(f"id {record.id} is already in the collection")
        stale = self._tombstones.pop(record.id, None)
        if stale is not None:
            self._index.remove(stale)
        self._insert_record(record)
        self.statistics.num_strings += 1
        self._bump()
        return record.id

    def delete(self, record_id: int) -> bool:
        """Tombstone one record by id; return False when it is not live."""
        record = self._live.pop(record_id, None)
        if record is None:
            return False
        if self._short_pool.pop(record_id, None) is None:
            self._tombstones[record_id] = record
        self.statistics.num_strings -= 1
        self._bump()
        return True

    def compact(self) -> int:
        """Purge every tombstone from the segment index; return the count.

        After compaction the index holds exactly the postings a fresh build
        over the live records would (posting order aside), so memory does
        not leak across delete-heavy workloads.
        """
        purged = len(self._tombstones)
        for record in self._tombstones.values():
            self._index.remove(record)
        self._tombstones.clear()
        self.statistics.index_entries = self._index.current_entry_count
        self.statistics.index_bytes = self._index.current_approximate_bytes
        return purged

    def _insert_record(self, record: StringRecord) -> None:
        if can_partition(record.length, self.max_tau):
            self._index.add(record)
            self.statistics.num_indexed_segments += self.max_tau + 1
        else:
            self._short_pool[record.id] = record
        self._live[record.id] = record
        self._next_id = max(self._next_id, record.id + 1)
        self.statistics.index_entries = self._index.current_entry_count
        self.statistics.index_bytes = self._index.current_approximate_bytes

    def _bump(self) -> None:
        self._epoch += 1
        if len(self._tombstones) > self.compact_interval:
            self.compact()
        self.statistics.index_entries = self._index.current_entry_count
        self.statistics.index_bytes = self._index.current_approximate_bytes

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def search(self, query: str, tau: int | None = None) -> list[SearchMatch]:
        """Return every live string within ``tau`` of ``query``.

        ``tau`` defaults to ``max_tau`` and must not exceed it.  Results
        are sorted by ``(distance, id)`` — identical to a fresh
        :class:`~repro.search.searcher.PassJoinSearcher` over the live
        records.
        """
        tau = self.max_tau if tau is None else validate_threshold(tau)
        if tau > self.max_tau:
            raise InvalidThresholdError(tau)
        stats = self.statistics
        verifier = ExtensionVerifier(tau, stats)
        probe = StringRecord(id=-1, text=query)
        tombstones = self._tombstones
        matches = probe_record(
            probe, tau=tau, index=self._index,
            short_pool=list(self._short_pool.values()),
            selector=self._selector, verifier=verifier, stats=stats,
            max_length=len(query) + tau, allow_same_id=True,
            accept=(None if not tombstones
                    else lambda record: record.id not in tombstones))
        found = sorted((SearchMatch(distance, record.id, record.text)
                        for record, distance in matches),
                       key=SearchMatch.sort_key)
        stats.num_results += len(found)
        return found

    def search_top_k(self, query: str, k: int,
                     max_tau: int | None = None) -> list[SearchMatch]:
        """Return the ``k`` live strings closest to ``query``.

        Same widening strategy and deterministic ``(distance, id)``
        tie-breaking as :meth:`PassJoinSearcher.search_top_k`.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        limit = self.max_tau if max_tau is None else min(
            validate_threshold(max_tau), self.max_tau)
        best: list[SearchMatch] = []
        for tau in range(0, limit + 1):
            best = self.search(query, tau)
            if len(best) >= k:
                break
        return best[:k]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DynamicSearcher(live={len(self._live)}, "
                f"tombstones={len(self._tombstones)}, epoch={self._epoch}, "
                f"max_tau={self.max_tau})")
