"""Clients for the JSON-lines similarity service.

Two flavours over the same wire protocol (see
:mod:`repro.service.server`):

* :class:`AsyncServiceClient` — asyncio streams, for async applications
  and for issuing genuinely concurrent requests (the server coalesces
  them into batched index passes).
* :class:`ServiceClient` — a blocking socket client for scripts, the CLI
  ``query`` subcommand, and interactive use.  No asyncio required on the
  client side.

Both return :class:`~repro.search.searcher.SearchMatch` objects rebuilt
from the wire payload via :meth:`SearchMatch.from_dict`, so a round trip
through the service yields values indistinguishable from a local search.
Read-scaled servers need no client-side awareness: with an acceptor pool
the kernel assigns each *connection* to one acceptor at accept time
(``SO_REUSEPORT``), and with read replicas the freshness routing happens
entirely inside the shard router — a client never sees which acceptor or
replica served it, and the exactness guarantee is unchanged.
``ok: false`` responses raise :class:`~repro.exceptions.ServiceError`;
violations of the wire protocol itself — the server closing the connection
mid-response, a truncated or non-JSON frame, a reset transport — raise the
more specific :class:`~repro.exceptions.ProtocolError` instead of leaking
``json.JSONDecodeError`` or ``ConnectionResetError``.
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import Sequence

from ..exceptions import ProtocolError, ServiceError
from ..search.searcher import SearchMatch

#: Transport errors a closing/resetting server surfaces mid-request.
_CONNECTION_ERRORS = (ConnectionResetError, BrokenPipeError)


def _encode(payload: dict) -> bytes:
    return json.dumps(payload).encode("utf-8") + b"\n"


def _decode(line: bytes) -> dict:
    if not line:
        raise ProtocolError(
            "server closed the connection before sending a response")
    if not line.endswith(b"\n"):
        raise ProtocolError(
            f"server closed the connection mid-response "
            f"(half-written frame of {len(line)} bytes)")
    try:
        response = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"invalid response from server: {error}") from error
    if not isinstance(response, dict):
        raise ProtocolError(f"invalid response from server: {response!r}")
    if not response.get("ok"):
        raise ServiceError(str(response.get("error", "unknown server error")))
    return response


def _parse_matches(response: dict) -> list[SearchMatch]:
    payload = response.get("matches")
    if not isinstance(payload, list):
        raise ServiceError(f"malformed matches payload: {payload!r}")
    try:
        return [SearchMatch.from_dict(item) for item in payload]
    except ValueError as error:
        raise ServiceError(str(error)) from error


def _parse_batch(response: dict) -> list[list[SearchMatch]]:
    payload = response.get("results")
    if not isinstance(payload, list):
        raise ServiceError(f"malformed results payload: {payload!r}")
    results: list[list[SearchMatch]] = []
    for matches in payload:
        if not isinstance(matches, list):
            raise ServiceError(f"malformed results payload: {matches!r}")
        try:
            results.append([SearchMatch.from_dict(item) for item in matches])
        except ValueError as error:
            raise ServiceError(str(error)) from error
    return results


class _RequestMixin:
    """The op vocabulary, shared by the sync and async clients.

    Subclasses provide ``request`` (sync or awaitable); every helper here
    just builds the payload, so the two clients cannot drift apart.
    """

    @staticmethod
    def _search_payload(query: str, tau: int | None,
                        kernel: str | None = None) -> dict:
        payload: dict = {"op": "search", "query": query}
        if tau is not None:
            payload["tau"] = tau
        if kernel is not None:
            payload["kernel"] = kernel
        return payload

    @staticmethod
    def _top_k_payload(query: str, k: int, max_tau: int | None,
                       kernel: str | None = None) -> dict:
        payload: dict = {"op": "top-k", "query": query, "k": k}
        if max_tau is not None:
            payload["max_tau"] = max_tau
        if kernel is not None:
            payload["kernel"] = kernel
        return payload

    @staticmethod
    def _search_batch_payload(queries: Sequence[str],
                              tau: int | None,
                              kernel: str | None = None) -> dict:
        payload: dict = {"op": "search-batch", "queries": list(queries)}
        if tau is not None:
            payload["tau"] = tau
        if kernel is not None:
            payload["kernel"] = kernel
        return payload

    @staticmethod
    def _top_k_batch_payload(queries: Sequence[str], k: int,
                             max_tau: int | None,
                             kernel: str | None = None) -> dict:
        payload: dict = {"op": "top-k-batch", "queries": list(queries),
                         "k": k}
        if max_tau is not None:
            payload["max_tau"] = max_tau
        if kernel is not None:
            payload["kernel"] = kernel
        return payload

    @staticmethod
    def _insert_payload(text: str, record_id: int | None) -> dict:
        payload: dict = {"op": "insert", "text": text}
        if record_id is not None:
            payload["id"] = record_id
        return payload

    @staticmethod
    def _explain_payload(query: str, tau: int | None,
                         kernel: str | None = None) -> dict:
        payload: dict = {"op": "explain", "query": query}
        if tau is not None:
            payload["tau"] = tau
        if kernel is not None:
            payload["kernel"] = kernel
        return payload


class ServiceClient(_RequestMixin):
    """Blocking JSON-lines client.

    Examples
    --------
    ::

        with ServiceClient("127.0.0.1", 8765) as client:
            for match in client.search("vldb", tau=1):
                print(match.id, match.distance, match.text)
    """

    def __init__(self, host: str, port: int, *, timeout: float = 10.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def request(self, payload: dict) -> dict:
        """Send one request object, return the (``ok``) response object.

        A server vanishing mid-exchange surfaces as
        :class:`~repro.exceptions.ProtocolError`, never as a bare
        ``ConnectionResetError``/``BrokenPipeError``.
        """
        try:
            self._file.write(_encode(payload))
            self._file.flush()
            line = self._file.readline()
        except _CONNECTION_ERRORS as error:
            raise ProtocolError(
                f"connection to server lost mid-request: {error}") from error
        return _decode(line)

    # ------------------------------------------------------------------
    def search(self, query: str, tau: int | None = None, *,
               kernel: str | None = None) -> list[SearchMatch]:
        """Search; ``kernel`` (optional) asserts which kernel must serve it."""
        return _parse_matches(
            self.request(self._search_payload(query, tau, kernel)))

    def search_batch(self, queries: Sequence[str],
                     tau: int | None = None, *,
                     kernel: str | None = None) -> list[list[SearchMatch]]:
        """Answer many queries with one ``search-batch`` request line.

        Returns one result list per query, aligned with ``queries`` — the
        server answers the whole batch with a single grouped index pass.
        A whole batch targets one kernel; pass ``kernel`` to assert it.
        """
        return _parse_batch(
            self.request(self._search_batch_payload(queries, tau, kernel)))

    def top_k(self, query: str, k: int,
              max_tau: int | None = None, *,
              kernel: str | None = None) -> list[SearchMatch]:
        return _parse_matches(
            self.request(self._top_k_payload(query, k, max_tau, kernel)))

    def top_k_batch(self, queries: Sequence[str], k: int,
                    max_tau: int | None = None, *,
                    kernel: str | None = None) -> list[list[SearchMatch]]:
        """Answer many top-k queries with one ``top-k-batch`` request line.

        ``k`` and ``max_tau`` are shared across the batch; the server
        widens tau in lockstep and retires satisfied queries, so the batch
        costs far fewer index passes than ``len(queries)`` calls to
        :meth:`top_k` while returning element-identical results.
        """
        return _parse_batch(
            self.request(self._top_k_batch_payload(queries, k, max_tau,
                                                   kernel)))

    def insert(self, text: str, *, id: int | None = None) -> int:
        return self.request(self._insert_payload(text, id))["id"]

    def delete(self, record_id: int) -> bool:
        return self.request({"op": "delete", "id": record_id})["deleted"]

    def compact(self) -> int:
        return self.request({"op": "compact"})["purged"]

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def metrics(self) -> dict:
        """The server's merged telemetry snapshot (the ``metrics`` op).

        The response carries ``merged`` (a registry snapshot summing the
        request metrics, cache counters, and engine funnel — render it
        with :func:`repro.obs.render_prometheus`), ``uptime_seconds``, and
        a per-shard breakdown under ``shards`` on sharded servers.
        """
        return self.request({"op": "metrics"})

    def kernels(self) -> dict:
        """The server's similarity-kernel catalogue (the ``kernels`` op).

        The response carries ``serving`` (the kernel name this service is
        configured with) and ``kernels`` (one descriptor per registered
        kernel: name, threshold semantics, partition-key definition).
        """
        return self.request({"op": "kernels"})

    def explain(self, query: str, tau: int | None = None, *,
                kernel: str | None = None) -> dict:
        """Run one traced probe on the server; return the explain report.

        The report's per-stage funnel, per-length breakdown, verifier
        counters, and stage wall times describe exactly the probe that a
        :meth:`search` with the same arguments would run; its matches are
        the same, as dicts (see :meth:`PassJoinSearcher.explain
        <repro.search.searcher.PassJoinSearcher.explain>`).
        """
        return self.request(self._explain_payload(query, tau, kernel))["explain"]

    def add_shard(self) -> dict:
        """Grow the server's shard fleet by one; return the rebalance status.

        The server answers as soon as the migration is planned and streams
        the affected records between shards in the background; poll
        :meth:`rebalance_status` until ``active`` is false to observe
        completion.  Requires a sharded server.
        """
        return self.request({"op": "add-shard"})["status"]

    def remove_shard(self) -> dict:
        """Retire the server's highest-numbered shard; return the status."""
        return self.request({"op": "remove-shard"})["status"]

    def rebalance_status(self) -> dict:
        """Progress of the in-flight (or summary of the last) migration."""
        return self.request({"op": "rebalance-status"})["status"]

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def shutdown(self) -> None:
        """Ask the server to stop accepting connections."""
        self.request({"op": "shutdown"})


class AsyncServiceClient(_RequestMixin):
    """Asyncio JSON-lines client.

    Examples
    --------
    ::

        client = await AsyncServiceClient.connect("127.0.0.1", 8765)
        matches = await client.search("vldb", tau=1)
        await client.close()
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._lock = asyncio.Lock()

    @classmethod
    async def connect(cls, host: str, port: int) -> "AsyncServiceClient":
        from .server import STREAM_LIMIT  # shared wire-protocol line limit

        reader, writer = await asyncio.open_connection(host, port,
                                                       limit=STREAM_LIMIT)
        return cls(reader, writer)

    async def __aenter__(self) -> "AsyncServiceClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass

    async def request(self, payload: dict) -> dict:
        """Send one request object, return the (``ok``) response object.

        A lock pairs each request with its response line, so one client
        object can be shared by concurrent tasks (responses on a single
        connection are otherwise interleaved in arrival order).  As in the
        blocking client, a server vanishing mid-exchange surfaces as
        :class:`~repro.exceptions.ProtocolError`.
        """
        async with self._lock:
            try:
                self._writer.write(_encode(payload))
                await self._writer.drain()
                line = await self._reader.readline()
            except _CONNECTION_ERRORS as error:
                raise ProtocolError(
                    f"connection to server lost mid-request: {error}"
                ) from error
            except ValueError as error:  # response line beyond the limit
                raise ProtocolError(
                    f"response line exceeds the stream limit: {error}"
                ) from error
            return _decode(line)

    # ------------------------------------------------------------------
    async def search(self, query: str, tau: int | None = None, *,
                     kernel: str | None = None) -> list[SearchMatch]:
        return _parse_matches(
            await self.request(self._search_payload(query, tau, kernel)))

    async def search_batch(self, queries: Sequence[str],
                           tau: int | None = None, *,
                           kernel: str | None = None
                           ) -> list[list[SearchMatch]]:
        """Async counterpart of :meth:`ServiceClient.search_batch`."""
        return _parse_batch(
            await self.request(self._search_batch_payload(queries, tau,
                                                          kernel)))

    async def top_k(self, query: str, k: int,
                    max_tau: int | None = None, *,
                    kernel: str | None = None) -> list[SearchMatch]:
        return _parse_matches(
            await self.request(self._top_k_payload(query, k, max_tau, kernel)))

    async def top_k_batch(self, queries: Sequence[str], k: int,
                          max_tau: int | None = None, *,
                          kernel: str | None = None
                          ) -> list[list[SearchMatch]]:
        """Async counterpart of :meth:`ServiceClient.top_k_batch`."""
        return _parse_batch(
            await self.request(self._top_k_batch_payload(queries, k, max_tau,
                                                         kernel)))

    async def insert(self, text: str, *, id: int | None = None) -> int:
        return (await self.request(self._insert_payload(text, id)))["id"]

    async def delete(self, record_id: int) -> bool:
        return (await self.request({"op": "delete", "id": record_id}))["deleted"]

    async def compact(self) -> int:
        return (await self.request({"op": "compact"}))["purged"]

    async def stats(self) -> dict:
        return await self.request({"op": "stats"})

    async def metrics(self) -> dict:
        """Async counterpart of :meth:`ServiceClient.metrics`."""
        return await self.request({"op": "metrics"})

    async def kernels(self) -> dict:
        """Async counterpart of :meth:`ServiceClient.kernels`."""
        return await self.request({"op": "kernels"})

    async def explain(self, query: str, tau: int | None = None, *,
                      kernel: str | None = None) -> dict:
        """Async counterpart of :meth:`ServiceClient.explain`."""
        return (await self.request(
            self._explain_payload(query, tau, kernel)))["explain"]

    async def add_shard(self) -> dict:
        """Async counterpart of :meth:`ServiceClient.add_shard`."""
        return (await self.request({"op": "add-shard"}))["status"]

    async def remove_shard(self) -> dict:
        """Async counterpart of :meth:`ServiceClient.remove_shard`."""
        return (await self.request({"op": "remove-shard"}))["status"]

    async def rebalance_status(self) -> dict:
        """Async counterpart of :meth:`ServiceClient.rebalance_status`."""
        return (await self.request({"op": "rebalance-status"}))["status"]

    async def ping(self) -> bool:
        return bool((await self.request({"op": "ping"})).get("pong"))

    async def shutdown(self) -> None:
        """Ask the server to stop accepting connections."""
        await self.request({"op": "shutdown"})
