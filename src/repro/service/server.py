"""The online similarity-search service: request dispatch + asyncio server.

Two classes split the serving stack along the transport boundary:

* :class:`SimilarityService` — the transport-free core.  It owns the
  :class:`~repro.service.dynamic.DynamicSearcher`, the
  :class:`~repro.service.cache.QueryCache`, and the request vocabulary
  (``search`` / ``top-k`` / ``search-batch`` / ``insert`` / ``delete`` /
  ``compact`` / ``stats`` / ``metrics`` / ``explain`` / ``ping``, plus the
  fleet-resize admin ops ``add-shard`` / ``remove-shard`` /
  ``rebalance-status`` on sharded services), mapping request dictionaries
  to response dictionaries.  Every dispatched request is recorded into a
  :class:`~repro.obs.metrics.MetricsRegistry` (per-op counts, errors,
  latency histograms) and — past
  :attr:`~repro.config.ServiceConfig.slow_query_ms` — into the structured
  slow-query log.  Tests, the smoke script, and future transports
  talk to this object directly.  Cache-missing searches of a batch are
  answered by one grouped ``search_many()`` index pass.
* :class:`SimilarityServer` — the asyncio JSON-lines TCP transport.  One
  request object per line, one response object per line, UTF-8.  Query
  operations flow through a :class:`~repro.service.batcher.RequestBatcher`
  so concurrent lookups coalesce into single index passes; mutations and
  admin operations execute immediately.  With
  :attr:`~repro.config.ServiceConfig.acceptors` > 1 the primary server
  spawns extra acceptor loops in daemon threads, all bound to the same
  port via ``SO_REUSEPORT`` (the kernel load-balances connections across
  them); each acceptor runs the full parse/batch/respond path with its
  own batcher and per-acceptor metrics against the one shared service,
  whose internal lock makes the core safe to drive from several loops.
  Platforms without ``SO_REUSEPORT`` fall back to a single acceptor with
  a warning.

:class:`BackgroundServer` runs the whole stack in a daemon thread with its
own event loop — the harness used by the synchronous client tests, the CLI
smoke step, and anyone embedding the service in a non-async program.

Wire protocol (one JSON object per line)::

    → {"op": "search", "query": "vldb", "tau": 1}
    ← {"ok": true, "matches": [{"id": 0, "distance": 0, "text": "vldb"}],
       "cached": false, "epoch": 0}
    → {"op": "insert", "text": "pvldb"}
    ← {"ok": true, "id": 7, "epoch": 1}
    → {"op": "nonsense"}
    ← {"ok": false, "error": "unknown op 'nonsense' ..."}

Malformed lines produce an ``ok: false`` response; the connection stays
open (one bad request must not kill a pipelined client).
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time
import warnings
from typing import Callable, Iterable, Sequence

from ..config import DEFAULT_SERVICE_CONFIG, ServiceConfig, validate_threshold
from ..core.kernel import (check_batch_kernels, check_kernel_match,
                           describe_kernels)
from ..exceptions import InvalidThresholdError, ServiceError
from ..obs.metrics import MetricsRegistry, funnel_snapshot, merge_snapshots
from ..obs.slowlog import log_slow_query
from ..search.searcher import SearchMatch
from ..types import StringRecord
from .batcher import RequestBatcher
from .cache import QueryCache
from .dynamic import DynamicSearcher
from .sharding import ShardRouter

#: Query operations routed through the batcher by the TCP transport.
QUERY_OPS = ("search", "top-k")
#: The batch query operation (one request carrying many search queries).
BATCH_OP = "search-batch"
#: The batch top-k operation (many queries, one shared ``k``/``max_tau``),
#: answered through the lockstep-widening ``search_top_k_many`` path.
TOP_K_BATCH_OP = "top-k-batch"
#: Fleet-resize admin operations (sharded services only).  The TCP
#: transport answers these as soon as the migration is planned and drains
#: it in a background task so queries keep flowing; the transport-free
#: core drains synchronously unless the request carries ``drain: false``.
RESHARD_OPS = ("add-shard", "remove-shard")
#: Every operation the service understands.
ALL_OPS = QUERY_OPS + (BATCH_OP, TOP_K_BATCH_OP) + RESHARD_OPS + (
    "rebalance-status", "insert", "delete", "compact", "stats", "metrics",
    "explain", "kernels", "ping", "shutdown")

#: Query keys are tuples: ("search", query, tau) or ("top-k", query, k, limit).
QueryKey = tuple

#: Byte limit for one JSON line on the asyncio streams.  asyncio's default
#: is 64 KiB, which a legal ``search-batch`` request (or a many-match
#: response) easily exceeds; both the server and the async client size
#: their streams with this instead.
STREAM_LIMIT = 16 * 1024 * 1024


def _require_str(payload: dict, field: str) -> str:
    value = payload.get(field)
    if not isinstance(value, str):
        raise ValueError(f"field {field!r} must be a string, got {value!r}")
    return value


def _require_int(payload: dict, field: str, *, minimum: int = 0) -> int:
    value = payload.get(field)
    if isinstance(value, bool) or not isinstance(value, int) or value < minimum:
        raise ValueError(f"field {field!r} must be an integer >= {minimum}, "
                         f"got {value!r}")
    return value


class SimilarityService:
    """Transport-free serving core: dynamic index + cache + dispatch.

    Parameters
    ----------
    strings:
        Initial collection served by the dynamic index.
    config:
        A :class:`~repro.config.ServiceConfig`; ``max_tau``, ``partition``,
        ``cache_capacity``, ``compact_interval``, and the ``shards*`` fields
        are consumed here, the transport fields by :class:`SimilarityServer`.

    With ``config.shards > 1`` the collection is served by a
    :class:`~repro.service.sharding.ShardRouter` (which duck-types the
    :class:`DynamicSearcher` surface, so dispatch is identical) and cache
    keys grow the composite per-shard epoch vector the query depends on —
    a mutation on one shard makes exactly the queries that probe it miss,
    instead of invalidating the whole cache.
    """

    def __init__(self, strings: Iterable[str | StringRecord] = (),
                 config: ServiceConfig = DEFAULT_SERVICE_CONFIG) -> None:
        self.config = config
        # replicas > 0 routes even a single-shard collection through the
        # router: the replica fleet hangs off the router's scatter path,
        # so an unsharded DynamicSearcher has nowhere to put one.
        if config.shards > 1 or config.replicas > 0:
            self.searcher: DynamicSearcher | ShardRouter = ShardRouter(
                strings, shards=config.shards, max_tau=config.max_tau,
                partition=config.partition,
                compact_interval=config.compact_interval,
                policy=config.shard_policy, backend=config.shard_backend,
                migration_batch=config.migration_batch,
                kernel=config.kernel,
                replicas_per_shard=config.replicas)
        else:
            self.searcher = DynamicSearcher(
                strings, max_tau=config.max_tau, partition=config.partition,
                compact_interval=config.compact_interval,
                kernel=config.kernel)
        self.cache = QueryCache(config.cache_capacity)
        self.queries_served = 0
        # Service-level telemetry: per-op request/error counters and
        # latency histograms, fed by record_request() on every dispatch
        # (both the transport-free core and the TCP fast paths).
        self.metrics = MetricsRegistry()
        # One registry per acceptor loop of the TCP transport, registered
        # by each SimilarityServer that fronts this service and merged
        # into the ``metrics`` payload alongside the core registries.
        self.acceptor_registries: list[MetricsRegistry] = []
        # The core serializes dispatch, batch execution, and telemetry
        # reads: with an acceptor pool, several event loops drive this one
        # object from different threads, and neither the LRU cache nor the
        # metrics dicts (nor interleaving a mutation inside another
        # acceptor's batch) are safe without it.  Reentrant because
        # dispatch reaches stats()/metrics_payload() internally.
        self._lock = threading.RLock()
        self.started_monotonic = time.monotonic()
        # Last background reshard-drain failure (set by the transport's
        # drain task, surfaced through rebalance-status): a dead shard
        # worker mid-migration must not strand status pollers in an
        # endless "active" loop with no explanation.
        self.reshard_error: str | None = None

    def close(self) -> None:
        """Release serving resources (shard worker processes); idempotent."""
        closer = getattr(self.searcher, "close", None)
        if closer is not None:
            closer()

    def register_acceptor(self) -> MetricsRegistry:
        """A fresh per-acceptor registry, tracked for the metrics merge.

        Each acceptor loop counts its own connections and request lines
        into its registry (single-writer, so no locking on the hot path);
        :meth:`metrics_payload` merges them with
        :func:`~repro.obs.metrics.merge_snapshots` and exposes the raw
        per-acceptor snapshots so a skewed kernel load-balance is visible.
        """
        registry = MetricsRegistry()
        with self._lock:
            self.acceptor_registries.append(registry)
        return registry

    # ------------------------------------------------------------------
    # Query path (used directly and by the batcher)
    # ------------------------------------------------------------------
    def build_query_key(self, payload: dict) -> QueryKey:
        """Validate a search/top-k request and return its cache/batch key.

        All per-request validation happens here — before the request joins
        a batch — so one malformed request can never fail the batch it
        shares an execution with.
        """
        op = payload.get("op")
        self._check_kernel_field(payload)
        query = _require_str(payload, "query")
        if op == "search":
            tau = payload.get("tau")
            tau = self.searcher.max_tau if tau is None else validate_threshold(tau)
            if tau > self.searcher.max_tau:
                raise InvalidThresholdError(tau)
            return ("search", query, tau)
        if op == "top-k":
            k = _require_int(payload, "k", minimum=1)
            limit = payload.get("max_tau")
            limit = (self.searcher.max_tau if limit is None
                     else min(validate_threshold(limit), self.searcher.max_tau))
            return ("top-k", query, k, limit)
        raise ValueError(f"not a query op: {op!r}")

    def _check_kernel_field(self, payload: dict) -> None:
        """Validate an optional ``kernel`` request field.

        A request may name the kernel it expects; naming any kernel other
        than the one this server serves is rejected (one server, one
        kernel — the ``kernels`` op tells clients which).  The field never
        reaches the query key: within one service it is an assertion, not
        a parameter.
        """
        requested = payload.get("kernel")
        if requested is None:
            return
        if not isinstance(requested, str):
            raise ValueError(
                f"field 'kernel' must be a string, got {requested!r}")
        check_kernel_match(self.searcher.kernel, requested)

    def build_batch_keys(self, payload: dict) -> list[QueryKey]:
        """Validate a ``search-batch`` request into per-query search keys.

        The request carries ``queries`` (a list of strings) and an optional
        scalar ``tau`` applied to every query.  Batch size is bounded by
        :attr:`~repro.config.ServiceConfig.max_query_batch` so one request
        line cannot monopolise the server.  Validation happens before the
        keys reach the batcher, mirroring :meth:`build_query_key`.

        Kernel fields follow the pinned mixed-batch semantics of
        :func:`~repro.core.kernel.check_batch_kernels`: a scalar
        ``kernel`` (or a per-query ``kernels`` list) must name the served
        kernel, and a ``kernels`` list naming two different kernels is
        rejected outright — the whole batch fails before any query runs.
        """
        queries = self._validate_batch_queries(payload)
        tau = payload.get("tau")
        return [self.build_query_key({"op": "search", "query": query,
                                      "tau": tau})
                for query in queries]

    def build_top_k_batch_keys(self, payload: dict) -> list[QueryKey]:
        """Validate a ``top-k-batch`` request into per-query top-k keys.

        The request carries ``queries``, a shared ``k`` (required, >= 1) and
        an optional scalar ``max_tau`` applied to every query.  Batch size,
        kernel fields, and mixed-batch rejection follow
        :meth:`build_batch_keys` exactly; each query becomes the same
        ``("top-k", query, k, limit)`` key the scalar ``top-k`` op builds,
        so the cache and the sharded epoch-vector widening are shared
        between the two entry points.
        """
        queries = self._validate_batch_queries(payload)
        k = payload.get("k")
        max_tau = payload.get("max_tau")
        return [self.build_query_key({"op": "top-k", "query": query,
                                      "k": k, "max_tau": max_tau})
                for query in queries]

    def _validate_batch_queries(self, payload: dict) -> list[str]:
        queries = payload.get("queries")
        if (not isinstance(queries, list)
                or not all(isinstance(query, str) for query in queries)):
            raise ValueError(
                f"field 'queries' must be a list of strings, got {queries!r}")
        limit = self.config.max_query_batch
        if limit and len(queries) > limit:
            raise ValueError(f"batch of {len(queries)} queries exceeds "
                             f"max_query_batch={limit}")
        self._check_kernel_field(payload)
        kernels = payload.get("kernels")
        if kernels is not None:
            if (not isinstance(kernels, list)
                    or not all(name is None or isinstance(name, str)
                               for name in kernels)):
                raise ValueError(f"field 'kernels' must be a list of kernel "
                                 f"names, got {kernels!r}")
            if len(kernels) != len(queries):
                raise ValueError(f"got {len(queries)} queries but "
                                 f"{len(kernels)} kernel names")
            check_batch_kernels(self.searcher.kernel, kernels)
        return queries

    def execute_queries(self, keys: Sequence[QueryKey],
                        ) -> list[tuple[list[SearchMatch], bool]]:
        """Answer a batch of validated query keys in one pass.

        Returns ``(matches, cached)`` per key.  This is the
        :class:`~repro.service.batcher.RequestBatcher` execute hook: no
        mutation can interleave with the call, so every answer in a batch
        reflects the same collection snapshot.  Cache misses of kind
        ``search`` are answered by **one** grouped ``search_many()`` index
        pass over the whole batch (duplicates probed once, same-length
        queries sharing their selection windows) instead of one pass per
        unique query; top-k misses are grouped by ``(k, limit)`` and each
        group widens tau in lockstep through one ``search_top_k_many()``
        pass, retiring satisfied queries between rounds.

        Cache keying depends on the serving backend.  Unsharded, the plain
        query key is presented together with the scalar epoch and a
        mutation invalidates the cache wholesale (any insert can change any
        answer).  Sharded, the key is widened with the **composite epoch
        vector** of exactly the shards the query probes (a pure function of
        the query and threshold): a mutation bumps one shard's epoch, so
        entries depending on that shard simply stop matching and age out of
        the LRU, while entries over the other shards keep hitting.

        Duplicate keys within one batch are answered by copying the first
        occurrence's answer and counted as ``cache.coalesced`` — they
        never consult the cache, so a coalesced batch of one popular query
        records one miss (or one hit), not one per duplicate.
        """
        with self._lock:
            return self._execute_queries_locked(keys)

    def _execute_queries_locked(self, keys: Sequence[QueryKey],
                                ) -> list[tuple[list[SearchMatch], bool]]:
        epoch_token = getattr(self.searcher, "epoch_token", None)
        epoch = self.searcher.epoch
        answers: list[tuple[list[SearchMatch], bool] | None] = [None] * len(keys)
        pending: list[tuple[int, QueryKey, QueryKey, int]] = []
        pending_top_k: list[tuple[int, QueryKey, QueryKey, int]] = []
        leaders: dict[QueryKey, int] = {}
        duplicates: list[tuple[int, int]] = []
        for position, key in enumerate(keys):
            self.queries_served += 1
            leader = leaders.get(key)
            if leader is not None:
                # Same key, same snapshot: the answer is the leader's.
                self.cache.note_coalesced()
                duplicates.append((position, leader))
                continue
            leaders[key] = position
            if epoch_token is None:
                cache_key, cache_epoch = key, epoch
            else:
                cache_key, cache_epoch = key + (epoch_token(key),), 0
            cached = self.cache.get(cache_key, cache_epoch)
            if cached is not None:
                answers[position] = (cached, True)
                continue
            if key[0] == "search":
                pending.append((position, key, cache_key, cache_epoch))
            else:
                pending_top_k.append((position, key, cache_key, cache_epoch))
        if pending:
            search_many = getattr(self.searcher, "search_many", None)
            if search_many is not None:
                batches = search_many([key[1] for _, key, _, _ in pending],
                                      tau=[key[2] for _, key, _, _ in pending])
            else:  # duck-typed searcher without a batch path
                batches = [self.searcher.search(key[1], key[2])
                           for _, key, _, _ in pending]
            for (position, _, cache_key, cache_epoch), matches in zip(
                    pending, batches):
                self.cache.put(cache_key, cache_epoch, matches)
                answers[position] = (matches, False)
        if pending_top_k:
            top_k_many = getattr(self.searcher, "search_top_k_many", None)
            groups: dict[tuple[int, int],
                         list[tuple[int, QueryKey, QueryKey, int]]] = {}
            for entry in pending_top_k:
                groups.setdefault((entry[1][2], entry[1][3]), []).append(entry)
            for (k, limit), entries in groups.items():
                if top_k_many is not None:
                    # Each (k, limit) group widens tau in lockstep through
                    # one batch-aware pass instead of one pass per query.
                    batches = top_k_many(
                        [key[1] for _, key, _, _ in entries], k, limit)
                else:  # duck-typed searcher without a batch top-k path
                    batches = [self.searcher.search_top_k(key[1], key[2],
                                                          key[3])
                               for _, key, _, _ in entries]
                for (position, _, cache_key, cache_epoch), matches in zip(
                        entries, batches):
                    self.cache.put(cache_key, cache_epoch, matches)
                    answers[position] = (matches, False)
        for position, leader in duplicates:
            answers[position] = answers[leader]
        return answers  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def handle_request(self, payload: object) -> dict:
        """Map one request object to one response object (never raises).

        Every request dispatched here is recorded into :attr:`metrics`
        (request count, latency histogram, error count — all keyed by op)
        via :meth:`record_request`; the TCP transport's query fast paths
        bypass this method and record themselves, so each request is
        counted exactly once whichever way it enters.
        """
        if not isinstance(payload, dict):
            return {"ok": False, "error": "request must be a JSON object"}
        op = payload.get("op")
        started = time.perf_counter()
        with self._lock:
            response = self._dispatch(payload, op)
        query = payload.get("query")
        self.record_request(op, time.perf_counter() - started,
                            bool(response.get("ok")),
                            query=query if isinstance(query, str) else None)
        return response

    def record_request(self, op: object, seconds: float, ok: bool, *,
                       query: str | None = None) -> None:
        """Record one finished request into the service metrics.

        The counter increment and the histogram observation share the op
        name, so ``requests.<op>`` always equals the matching latency
        histogram's total count — the invariant the smoke script asserts.
        Ops outside :data:`ALL_OPS` are pooled under ``"unknown"``, keeping
        metric cardinality bounded against garbage input.  Requests slower
        than :attr:`~repro.config.ServiceConfig.slow_query_ms` also emit a
        structured slow-query log event.
        """
        name = op if isinstance(op, str) and op in ALL_OPS else "unknown"
        with self._lock:
            self.metrics.inc(f"requests.{name}")
            self.metrics.observe(f"latency_seconds.{name}", seconds)
            if not ok:
                self.metrics.inc(f"errors.{name}")
        threshold = self.config.slow_query_ms
        if threshold and seconds * 1000.0 >= threshold:
            log_slow_query(op=name, seconds=seconds, threshold_ms=threshold,
                           ok=ok, query=query)

    def _dispatch(self, payload: dict, op: object) -> dict:
        try:
            if op in QUERY_OPS:
                key = self.build_query_key(payload)
                matches, cached = self.execute_queries([key])[0]
                return self._query_response(matches, cached)
            if op == BATCH_OP:
                keys = self.build_batch_keys(payload)
                answers = self.execute_queries(keys)
                return self._batch_response(answers, self.searcher.epoch)
            if op == TOP_K_BATCH_OP:
                keys = self.build_top_k_batch_keys(payload)
                answers = self.execute_queries(keys)
                return self._batch_response(answers, self.searcher.epoch)
            if op == "insert":
                text = _require_str(payload, "text")
                record_id = (None if payload.get("id") is None
                             else _require_int(payload, "id"))
                new_id = self.searcher.insert(text, id=record_id)
                return {"ok": True, "id": new_id, "epoch": self.searcher.epoch}
            if op == "delete":
                record_id = _require_int(payload, "id")
                deleted = self.searcher.delete(record_id)
                return {"ok": True, "deleted": deleted,
                        "epoch": self.searcher.epoch}
            if op == "compact":
                purged = self.searcher.compact()
                return {"ok": True, "purged": purged,
                        "epoch": self.searcher.epoch}
            if op in RESHARD_OPS:
                router = self._require_router(op)
                drain = payload.get("drain", True)
                if not isinstance(drain, bool):
                    raise ValueError(
                        f"field 'drain' must be a boolean, got {drain!r}")
                status = (router.add_shard(drain=drain) if op == "add-shard"
                          else router.remove_shard(drain=drain))
                # Cleared only now: a *rejected* resize (e.g. a migration
                # already in flight) must not erase the record of why the
                # previous drain failed.
                self.reshard_error = None
                return {"ok": True, "status": status,
                        "epoch": self.searcher.epoch}
            if op == "rebalance-status":
                router = self._require_router(op)
                status = router.rebalance_status()
                if self.reshard_error is not None:
                    status["error"] = self.reshard_error
                return {"ok": True, "status": status,
                        "epoch": self.searcher.epoch}
            if op == "stats":
                return {"ok": True, **self.stats()}
            if op == "metrics":
                return self.metrics_payload()
            if op == "explain":
                self._check_kernel_field(payload)
                query = _require_str(payload, "query")
                report = self.searcher.explain(query, payload.get("tau"))
                return {"ok": True, "explain": report,
                        "epoch": self.searcher.epoch}
            if op == "kernels":
                return {"ok": True,
                        "serving": self.searcher.kernel.name,
                        "kernels": describe_kernels(),
                        "epoch": self.searcher.epoch}
            if op == "ping":
                return {"ok": True, "pong": True, "epoch": self.searcher.epoch}
            if op == "shutdown":
                return {"ok": False,
                        "error": "shutdown is handled by the TCP transport, "
                                 "not the service core"}
            return {"ok": False,
                    "error": f"unknown op {op!r}; expected one of "
                             f"{', '.join(ALL_OPS)}"}
        except (ValueError, TypeError, ServiceError) as error:
            # ServiceError covers serving-infrastructure failures (e.g. a
            # dead shard worker): the contract is one error response per
            # bad request, never an exception up through the transport.
            return {"ok": False, "error": str(error)}

    def _require_router(self, op: str) -> ShardRouter:
        """The sharded searcher, or a clear error for unsharded services."""
        if not isinstance(self.searcher, ShardRouter):
            raise ServiceError(
                f"op {op!r} requires a sharded service; start the server "
                f"with shards >= 2 (ServiceConfig.shards / serve --shards)")
        return self.searcher

    def migration_step(self) -> dict:
        """Run one bounded resharding step; return the rebalance status.

        The hook the TCP transport's background drain task uses to move an
        in-flight migration forward between answering queries.
        """
        with self._lock:
            return self._require_router("migration-step").migration_step()

    def rebalance_status(self) -> dict:
        """The router's rebalance status (for tests and the drain task)."""
        with self._lock:
            return self._require_router("rebalance-status").rebalance_status()

    def _query_response(self, matches: list[SearchMatch], cached: bool) -> dict:
        return {"ok": True, "matches": [match.to_dict() for match in matches],
                "cached": cached, "epoch": self.searcher.epoch}

    @staticmethod
    def _batch_response(answers: Sequence[tuple[list[SearchMatch], bool]],
                        epoch: int) -> dict:
        return {"ok": True,
                "results": [[match.to_dict() for match in matches]
                            for matches, _ in answers],
                "cached": [cached for _, cached in answers],
                "epoch": epoch}

    def _cache_snapshot(self) -> dict:
        """The query cache's counters and occupancy as a registry snapshot."""
        registry = MetricsRegistry()
        cache_stats = self.cache.stats.as_dict()
        for name in ("hits", "misses", "evictions", "invalidations",
                     "coalesced"):
            registry.inc(f"cache_{name}", cache_stats[name])
        registry.set_gauge("cache_size", len(self.cache))
        registry.set_gauge("cache_capacity", self.cache.capacity)
        return registry.snapshot()

    def metrics_payload(self) -> dict:
        """The ``metrics`` op response: one merged registry snapshot.

        Merges three sources with
        :func:`~repro.obs.metrics.merge_snapshots`: the service-level
        request metrics (:attr:`metrics`), the query cache's counters, and
        the engine's filter funnel — read from the searcher's
        :class:`~repro.types.JoinStatistics` directly when unsharded, or
        scatter-gathered and summed across the fleet by
        :meth:`ShardRouter.metrics_snapshot
        <repro.service.sharding.ShardRouter.metrics_snapshot>` when
        sharded, in which case the per-shard snapshots are also exposed
        under ``shards.per_shard``.

        With read replicas the router's replica section is re-exported as
        registry metrics — ``replica_reads``/``replica_fallbacks``
        counters plus ``replica_lag_max``/``replicas_alive``/
        ``replicas_total`` gauges — and with an acceptor pool the
        per-acceptor registries join the merge, their raw snapshots
        exposed under ``acceptors.per_acceptor``.
        """
        with self._lock:
            return self._metrics_payload_locked()

    def _metrics_payload_locked(self) -> dict:
        uptime = time.monotonic() - self.started_monotonic
        self.metrics.set_gauge("uptime_seconds", uptime)
        searcher = self.searcher
        payload: dict = {"ok": True, "uptime_seconds": uptime,
                         "epoch": searcher.epoch}
        if isinstance(searcher, ShardRouter):
            shard_metrics = searcher.metrics_snapshot()
            engine = shard_metrics["merged"]
            payload["shards"] = {"count": searcher.num_shards,
                                 "per_shard": shard_metrics["per_shard"]}
        else:
            engine = funnel_snapshot(searcher.statistics,
                                     memory=searcher.index_memory(),
                                     kernel=searcher.kernel.name)
        sources = [self.metrics.snapshot(), self._cache_snapshot(), engine]
        replicas = (shard_metrics.get("replicas")
                    if isinstance(searcher, ShardRouter) else None)
        if replicas is not None:
            payload["shards"]["replicas"] = replicas
            replica_registry = MetricsRegistry()
            replica_registry.inc("replica_reads", replicas["replica_reads"])
            replica_registry.inc("replica_fallbacks",
                                 replicas["replica_fallbacks"])
            replica_registry.set_gauge("replica_lag_max",
                                       replicas["replica_lag_max"])
            replica_registry.set_gauge("replicas_alive",
                                       replicas["replicas_alive"])
            replica_registry.set_gauge("replicas_total",
                                       replicas["replicas_total"])
            sources.append(replica_registry.snapshot())
        if self.acceptor_registries:
            per_acceptor = [registry.snapshot()
                            for registry in self.acceptor_registries]
            payload["acceptors"] = {"count": len(per_acceptor),
                                    "per_acceptor": per_acceptor}
            sources.extend(per_acceptor)
        payload["merged"] = merge_snapshots(sources)
        return payload

    def stats(self) -> dict:
        """Service-level counters (the ``stats`` op payload minus ``ok``).

        ``index`` carries the columnar store's memory figures (record and
        posting counts, ``approximate_bytes``); under sharding they are
        fleet-wide sums, with the per-shard breakdown under
        ``shards.memory``.  ``requests_by_op`` and ``errors`` come from the
        request metrics (only ops seen since startup appear);
        ``queries_served`` keeps counting individual queries, including
        every member of a batch, so it is not the sum of
        ``requests_by_op``.
        """
        with self._lock:
            return self._stats_locked()

    def _stats_locked(self) -> dict:
        searcher = self.searcher
        if isinstance(searcher, ShardRouter):
            # One status scatter covers tombstones, statistics, and memory;
            # going through the properties separately would scatter thrice.
            summary = searcher.status_summary()
            tombstones = summary["tombstones"]
            statistics = summary["statistics"]
            memory = summary["memory"]
        else:
            tombstones = searcher.tombstone_count
            statistics = searcher.statistics
            memory = searcher.index_memory()
        cache = self.cache.stats.as_dict()
        cache["capacity"] = self.cache.capacity
        cache["size"] = len(self.cache)
        payload = {
            "size": len(searcher),
            "epoch": searcher.epoch,
            "tombstones": tombstones,
            "kernel": searcher.kernel.name,
            "max_tau": searcher.max_tau,
            "uptime_seconds": time.monotonic() - self.started_monotonic,
            "queries_served": self.queries_served,
            "requests_by_op": self.metrics.counters_with_prefix("requests."),
            "errors": sum(
                self.metrics.counters_with_prefix("errors.").values()),
            "cache": cache,
            "index": memory,
            "index_entries": statistics.index_entries,
            "index_bytes": statistics.index_bytes,
        }
        if isinstance(searcher, ShardRouter):
            payload["shards"] = {
                "count": searcher.num_shards,
                "policy": searcher.policy.name,
                "backend": searcher.backend,
                # Placement balance: live rows and columnar bytes per shard.
                "sizes": searcher.shard_sizes(),
                "bytes": [shard.get("approximate_bytes", 0)
                          for shard in summary["shard_memory"]],
                "epoch_vector": list(searcher.epoch_vector),
                "memory": summary["shard_memory"],
                "rows_migrated": searcher.rows_migrated_total,
                "rebalance": searcher.rebalance_status(),
            }
            if searcher.replicas_per_shard:
                # Per-replica freshness and liveness (the ``admin status``
                # replica rows): applied epoch, lag behind the primary,
                # and whether the replica is still being served from.
                payload["shards"]["replicas_per_shard"] = (
                    searcher.replicas_per_shard)
                payload["shards"]["replicas"] = searcher.replica_status()
                payload["shards"]["replica_reads"] = searcher.replica_reads
                payload["shards"]["replica_fallbacks"] = (
                    searcher.replica_fallbacks)
        return payload


class SimilarityServer:
    """Asyncio JSON-lines TCP transport around a :class:`SimilarityService`.

    With ``service.config.acceptors > 1`` the primary server (the one the
    caller starts) spawns the extra acceptors itself: each is another
    ``SimilarityServer`` over the *same* service, running in a daemon
    thread with its own event loop and request batcher, bound to the same
    already-chosen port with ``SO_REUSEPORT`` so the kernel spreads
    incoming connections across the pool.  Stopping the primary stops the
    pool; a ``shutdown`` op arriving on any acceptor does the same.

    Examples
    --------
    >>> import asyncio
    >>> async def demo():
    ...     server = SimilarityServer(SimilarityService(["vldb"]), port=0)
    ...     host, port = await server.start()
    ...     await server.stop()
    ...     return host
    >>> asyncio.run(demo())
    '127.0.0.1'
    """

    def __init__(self, service: SimilarityService, *, host: str | None = None,
                 port: int | None = None, acceptor_id: int = 0,
                 on_shutdown: Callable[[], None] | None = None,
                 _reuse_port: bool = False) -> None:
        self.service = service
        config = service.config
        self.host = config.host if host is None else host
        self.port = config.port if port is None else port
        self.batcher = RequestBatcher(service.execute_queries,
                                      max_batch=config.max_batch,
                                      window=config.batch_window)
        self.acceptor_id = acceptor_id
        self.acceptor_metrics = service.register_acceptor()
        self.address: tuple[str, int] | None = None
        self._server: asyncio.AbstractServer | None = None
        self._stopped: asyncio.Event | None = None
        self._reshard_task: "asyncio.Task | None" = None
        # Pool plumbing.  Primary only: the loops/servers/threads of the
        # extra acceptors it spawned.  Extras only: on_shutdown points back
        # at the primary's request_stop, so a shutdown op arriving on any
        # acceptor tears the whole pool down.
        self._on_shutdown = on_shutdown
        self._reuse_port = _reuse_port
        self._loop: asyncio.AbstractEventLoop | None = None
        self._extra_acceptors: list[
            tuple[asyncio.AbstractEventLoop, "SimilarityServer"]] = []
        self._acceptor_threads: list[threading.Thread] = []

    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start accepting connections; return ``(host, port)``.

        With ``port=0`` the operating system picks the port; the bound
        address is stored in :attr:`address`.  When the service config
        asks for an acceptor pool, the extra acceptors are spawned here —
        after the bind, so they can share the concrete port.
        """
        if self._server is not None:
            raise ServiceError("server is already running")
        self._stopped = asyncio.Event()
        self._loop = asyncio.get_running_loop()
        acceptors = 1 if self.acceptor_id else self.service.config.acceptors
        reuse_port = self._reuse_port or acceptors > 1
        if reuse_port and not hasattr(socket, "SO_REUSEPORT"):
            warnings.warn(
                "SO_REUSEPORT is unavailable on this platform; serving "
                "with a single acceptor", RuntimeWarning, stacklevel=2)
            acceptors, reuse_port = 1, False
        self._server = await asyncio.start_server(self._handle_connection,
                                                  self.host, self.port,
                                                  limit=STREAM_LIMIT,
                                                  reuse_port=reuse_port)
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        for index in range(1, acceptors):
            self._spawn_acceptor(index)
        return self.address

    def _spawn_acceptor(self, index: int) -> None:
        """Start one extra acceptor loop in a daemon thread; wait for bind."""
        ready = threading.Event()
        failures: list[BaseException] = []
        thread = threading.Thread(
            target=lambda: asyncio.run(
                self._acceptor_main(index, ready, failures)),
            name=f"similarity-acceptor-{index}", daemon=True)
        self._acceptor_threads.append(thread)
        thread.start()
        if not ready.wait(timeout=10):
            raise ServiceError(f"acceptor {index} failed to start within 10s")
        if failures:
            raise ServiceError(
                f"acceptor {index} failed to start: {failures[0]}")

    async def _acceptor_main(self, index: int, ready: threading.Event,
                             failures: list[BaseException]) -> None:
        assert self.address is not None
        server = SimilarityServer(
            self.service, host=self.address[0], port=self.address[1],
            acceptor_id=index, on_shutdown=self.request_stop,
            _reuse_port=True)
        try:
            await server.start()
        except BaseException as error:  # noqa: BLE001 - reported to spawner
            failures.append(error)
            ready.set()
            return
        self._extra_acceptors.append((asyncio.get_running_loop(), server))
        ready.set()
        await server.serve_forever()

    def request_stop(self) -> None:
        """Thread-safe shutdown trigger (used by the extra acceptors)."""
        loop = self._loop
        if loop is not None:
            loop.call_soon_threadsafe(
                lambda: asyncio.ensure_future(self.stop()))

    async def serve_forever(self) -> None:
        """Block until :meth:`stop` is called (or a shutdown op arrives)."""
        if self._stopped is None:
            raise ServiceError("server was never started")
        await self._stopped.wait()

    async def stop(self) -> None:
        """Stop accepting connections and release the socket.

        An in-flight background reshard drain is cancelled — the router's
        migration state is process-local, so there is nothing to hand
        over; a restarted server simply rebuilds placement from scratch.
        On the primary this also stops every extra acceptor it spawned
        and joins their threads.
        """
        if self._reshard_task is not None:
            self._reshard_task.cancel()
            self._reshard_task = None
        extras, self._extra_acceptors = self._extra_acceptors, []
        for loop, server in extras:
            try:
                asyncio.run_coroutine_threadsafe(
                    server.stop(), loop).result(timeout=10)
            except (RuntimeError, TimeoutError):  # pragma: no cover
                pass  # loop already gone; the daemon thread dies with us
        threads, self._acceptor_threads = self._acceptor_threads, []
        for thread in threads:
            thread.join(timeout=10)
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        if self._stopped is not None:
            self._stopped.set()

    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        # Per-acceptor accounting: each acceptor loop is the only writer
        # of its registry, so these bumps need no lock; the merged view
        # (and the kernel's SO_REUSEPORT load-balance) shows up under
        # ``acceptors.per_acceptor`` in the metrics payload.
        self.acceptor_metrics.inc("acceptor_connections")
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # A request line beyond STREAM_LIMIT; the rest of the
                    # line is unread, so framing is lost — answer with one
                    # error and hang up rather than misparse what follows.
                    writer.write(json.dumps(
                        {"ok": False,
                         "error": f"request line exceeds {STREAM_LIMIT} "
                                  f"bytes"}).encode("utf-8") + b"\n")
                    await writer.drain()
                    break
                if not line:
                    break
                stripped = line.strip()
                if not stripped:
                    continue
                self.acceptor_metrics.inc("acceptor_requests")
                stopping = False
                try:
                    payload = json.loads(stripped.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError) as error:
                    response = {"ok": False, "error": f"invalid JSON: {error}"}
                else:
                    op = payload.get("op") if isinstance(payload, dict) else None
                    if op in QUERY_OPS:
                        response = await self._handle_query(payload)
                    elif op in (BATCH_OP, TOP_K_BATCH_OP):
                        response = await self._handle_batch(payload)
                    elif op in RESHARD_OPS:
                        response = self._handle_reshard(payload)
                    elif op == "shutdown":
                        response = {"ok": True, "stopping": True}
                        stopping = True
                    else:
                        response = self.service.handle_request(payload)
                writer.write(json.dumps(response).encode("utf-8") + b"\n")
                await writer.drain()
                if stopping:
                    if self._on_shutdown is not None:
                        # Extra acceptor: route the shutdown through the
                        # primary so the whole pool stops, not just us.
                        self._on_shutdown()
                    else:
                        asyncio.get_running_loop().create_task(self.stop())
                    break
        except ConnectionResetError:  # client vanished mid-request
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    def _handle_reshard(self, payload: dict) -> dict:
        """Start a fleet resize; drain it in the background.

        The response is written as soon as the migration is planned (the
        ``status`` field says how many rows will move); a background task
        then runs one bounded :meth:`SimilarityService.migration_step` per
        event-loop turn, so queries, mutations, and ``rebalance-status``
        polls keep being served while records stream between shards —
        zero-downtime resharding.  A second resize request while one is in
        flight is answered with an error by the router.
        """
        response = self.service.handle_request({**payload, "drain": False})
        if response.get("ok") and response.get("status", {}).get("active"):
            self._reshard_task = asyncio.get_running_loop().create_task(
                self._drain_reshard())
        return response

    async def _drain_reshard(self) -> None:
        try:
            while self.service.migration_step()["active"]:
                # Yield between bounded steps: queued queries run here.
                await asyncio.sleep(0)
        except asyncio.CancelledError:  # pragma: no cover - server stopping
            raise
        except Exception as error:  # noqa: BLE001 - dead worker mid-drain
            # Record the failure so rebalance-status pollers (the CLI's
            # reshard loop among them) see an ``error`` field instead of
            # an ``active`` migration that never finishes.  The migration
            # stays marked active — the fleet genuinely is mid-move and
            # queries surface the underlying worker failure themselves.
            self.service.reshard_error = (
                f"background reshard drain failed: {error}")

    async def _handle_query(self, payload: dict) -> dict:
        started = time.perf_counter()
        response = await self._execute_query(payload)
        query = payload.get("query")
        # Query ops bypass handle_request (they go through the batcher),
        # so the transport records them itself — exactly once per request.
        self.service.record_request(
            payload.get("op"), time.perf_counter() - started,
            bool(response.get("ok")),
            query=query if isinstance(query, str) else None)
        return response

    async def _execute_query(self, payload: dict) -> dict:
        try:
            key = self.service.build_query_key(payload)
        except (ValueError, TypeError) as error:
            return {"ok": False, "error": str(error)}
        try:
            matches, cached = await self.batcher.submit(key)
        except (ValueError, TypeError, ServiceError) as error:
            # The batcher forwards execution failures (e.g. a dead shard
            # worker) to every waiter; answer with an error line instead of
            # letting the exception tear down the connection.
            return {"ok": False, "error": str(error)}
        return self.service._query_response(matches, cached)

    async def _handle_batch(self, payload: dict) -> dict:
        """Answer one ``search-batch`` or ``top-k-batch`` request line.

        Every query joins the shared :class:`RequestBatcher` batch — so a
        batch request coalesces with whatever concurrent single queries are
        in flight, and the drain answers them all with one grouped
        ``search_many()`` (or ``(k, limit)``-grouped ``search_top_k_many()``)
        pass through the serving core.

        Snapshot semantics: answers within one batcher drain share a
        collection snapshot, so a request of up to ``config.max_batch``
        queries is normally answered atomically.  A larger request spans
        several drains, between which concurrent mutations may commit —
        individual answers are each exact for some recent snapshot, but
        the batch as a whole (and its single ``epoch`` field, read after
        the last drain) is not guaranteed to be one snapshot.
        """
        started = time.perf_counter()
        response = await self._execute_batch(payload)
        self.service.record_request(payload.get("op"),
                                    time.perf_counter() - started,
                                    bool(response.get("ok")))
        return response

    async def _execute_batch(self, payload: dict) -> dict:
        build_keys = (self.service.build_top_k_batch_keys
                      if payload.get("op") == TOP_K_BATCH_OP
                      else self.service.build_batch_keys)
        try:
            keys = build_keys(payload)
        except (ValueError, TypeError) as error:
            return {"ok": False, "error": str(error)}
        try:
            answers = await asyncio.gather(
                *(self.batcher.submit(key) for key in keys))
        except (ValueError, TypeError, ServiceError) as error:
            return {"ok": False, "error": str(error)}
        return self.service._batch_response(answers,
                                            self.service.searcher.epoch)


async def run_service(strings: Iterable[str | StringRecord],
                      config: ServiceConfig = DEFAULT_SERVICE_CONFIG,
                      *, on_ready: "Callable[[tuple[str, int]], None] | None" = None,
                      ) -> None:
    """Build the service, serve until stopped (the CLI ``serve`` backend).

    ``on_ready`` is called with the bound ``(host, port)`` once the socket
    is listening — the hook the CLI uses to announce the actual port when
    serving on ``port=0``.
    """
    service = SimilarityService(strings, config)
    server: SimilarityServer | None = None
    try:
        server = SimilarityServer(service)
        address = await server.start()
        if on_ready is not None:
            on_ready(address)
        await server.serve_forever()
    finally:
        # Entered as soon as the service exists: a failed start() (port in
        # use) must still shut the shard workers down, not leak them.
        if server is not None:
            await server.stop()
        service.close()


class BackgroundServer:
    """Run a similarity server in a daemon thread (sync-world harness).

    Used by the CLI smoke script and the synchronous-client tests::

        with BackgroundServer(["vldb", "pvldb"], config) as (host, port):
            with ServiceClient(host, port) as client:
                client.search("vldb", tau=1)

    The context manager guarantees the socket is bound before the body
    runs and the server thread is joined on exit.
    """

    def __init__(self, strings: Iterable[str | StringRecord] = (),
                 config: ServiceConfig | None = None) -> None:
        if config is None:
            config = ServiceConfig(port=0)
        self.config = config
        self._strings = list(strings)
        self._ready = threading.Event()
        self._address: list[tuple[str, int]] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: SimilarityServer | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        service = SimilarityService(self._strings, self.config)
        try:
            self._server = SimilarityServer(service)
            address = await self._server.start()
            self._address.append(address)
            self._ready.set()
            await self._server.serve_forever()
        finally:
            # As in run_service: a failed bind must not leak shard workers.
            if self._server is not None:
                await self._server.stop()
            service.close()

    @property
    def service(self) -> SimilarityService | None:
        """The underlying service (for white-box assertions in tests)."""
        return self._server.service if self._server is not None else None

    def __enter__(self) -> tuple[str, int]:
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise ServiceError("background server failed to start within 10s")
        return self._address[0]

    def __exit__(self, *exc_info: object) -> None:
        if self._loop is not None and self._server is not None:
            try:
                asyncio.run_coroutine_threadsafe(
                    self._server.stop(), self._loop).result(timeout=10)
            except RuntimeError:  # loop already closed
                pass
        self._thread.join(timeout=10)
