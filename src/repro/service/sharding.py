"""Sharded serving tier: an elastic fleet of shard workers.

One :class:`~repro.service.dynamic.DynamicSearcher` runs every index pass on
a single thread, so a busy server saturates one core.  This module scales
the serving layer the classic way — partition the collection:

* A **placement map** (:mod:`repro.service.placement`) assigns every record
  to exactly one of ``N`` shards and every query to the subset of shards it
  must probe.  ``hash`` is a consistent-hashing ring (uniform load,
  scatter-all queries, resizes move ~1/N of the records), ``length`` places
  by splittable length bands (a query only touches the shards whose bands
  intersect ``[|q| − τ, |q| + τ]``), ``modulo`` is the legacy ``id % N``
  map.
* Each shard owns a full private :class:`DynamicSearcher` over its records.
  Shards run either **in-process** (the ``thread`` backend — the calling
  thread drives each shard directly; the right choice for tests, 1-CPU
  boxes, and as the scatter-gather reference implementation) or as
  **fork-spawned worker processes** (the ``process`` backend) that receive
  their :class:`ShardContext` through fork-time copy-on-write memory — the
  same "hand the worker an explicit context, pickle nothing" pattern as
  :class:`repro.core.parallel.WorkerContext` — and serve ops over a pipe.
* :class:`ShardRouter` scatter-gathers ``search``/``search_top_k`` across
  the shards a query can touch and merges under the canonical
  ``(distance, id)`` ordering.  Because the shards partition the id space,
  the merged result list is **element identical** to a single unsharded
  :class:`DynamicSearcher` over the same records (property-tested on random
  interleavings of insert/delete/search/resize).  Top-k merges the
  per-shard top-k lists: any global top-k member must be in its own shard's
  top-k, so the union provably covers the global answer.

Live resharding
---------------
:meth:`ShardRouter.add_shard` and :meth:`ShardRouter.remove_shard` resize
the fleet **without stopping the service**.  A resize diffs the old and new
placement maps into a migration plan — which record ids move from which
donor shard to which recipient — and executes it in bounded batches
(``migration_batch`` records per step) so queries keep being answered
between steps:

* A **copy step** extracts one batch of records from its donor and inserts
  them into the recipient.  Until the matching **release step** deletes
  them from the donor, those records are *dual-present*; queries probe the
  union of the old and new maps' probe sets and the ``(distance, id)``
  merge deduplicates by id, so answers stay element-identical to an
  unsharded searcher throughout (the property tests drive searches between
  every step).
* Mutations keep flowing during a migration: inserts place by the **new**
  map, deletes route to the record's current shard (and eagerly remove a
  dual-present donor copy so it cannot resurface).
* When the plan is drained the donors are compacted — tombstoned store
  rows are physically released, so per-shard row counts return to balance
  — and a retiring shard's worker (``remove_shard``) is closed.

Mutations route to the owning shard and bump only that shard's epoch.  The
router mirrors the per-shard epochs in :attr:`ShardRouter.epoch_vector`;
:meth:`ShardRouter.epoch_token` returns the placement generation plus the
epochs of exactly the shards a query key probes, which the serving core
folds into its cache key — a mutation on one shard invalidates exactly the
cached queries that probe it, and a resize (which changes probe sets) bumps
the generation so no cached answer can outlive a placement change.

Read replicas
-------------
``replicas_per_shard=N`` gives every shard ``N`` **read replicas**: extra
workers built from the same :class:`ShardContext` (fork-time copy-on-write
for the process backend, exactly like the primaries) that each hold a full
copy of their shard's index.  The primary keeps an epoch-tagged mutation
log (:meth:`DynamicSearcher.mutation_log_tail
<repro.service.dynamic.DynamicSearcher.mutation_log_tail>`); after every
mutation the router ships the log tail to the shard's replicas, which
replay it and report their ``applied_epoch`` back.

Freshness is enforced with the machinery that already keys the query
cache: a read (``search``/``search-many``/``top-k``) may be served by a
replica **only** when its applied epoch equals the router's epoch mirror
for that shard — the same per-shard epoch that :meth:`ShardRouter.
epoch_token` folds into cache keys.  A lagging, dead, or diverged replica
is silently bypassed in favour of the primary (and a replica that fails
mid-read is marked dead and the read retried on the primary), so
replicated answers are element-identical to an unsharded searcher under
any interleaving of mutations, resizes, and replica faults — a stale
answer is structurally impossible, the replicas only ever *add* capacity.
Writes always route to the primary.  Reads rotate across the fresh
replicas (and their primary) via
:class:`~repro.service.placement.ReplicaReadSchedule`; every worker
endpoint carries its own lock held across one send/recv exchange, so
multiple caller threads can drive reads against different endpoints of
the same shard concurrently — the mechanism behind the replica read
throughput benchmark (``benchmarks/bench_replica_throughput.py``).
"""

from __future__ import annotations

import multiprocessing
import threading
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from ..config import (DEFAULT_KERNEL, SHARD_BACKENDS, SHARD_POLICIES,
                      PartitionStrategy)
from ..core.kernel import (SimilarityKernel, check_batch_kernels,
                           resolve_kernel)
from ..core.parallel import available_workers
from ..exceptions import ConfigurationError, InvalidThresholdError, ServiceError
from ..obs.metrics import funnel_snapshot, merge_snapshots
from ..obs.trace import merge_explain_reports
from ..search.searcher import SearchMatch, resolve_query_taus
from ..types import JoinStatistics, StringRecord, as_records
from .dynamic import DynamicSearcher, coerce_insert_record
from .placement import (PlacementMap, ReplicaReadSchedule,
                        make_placement_map)

#: Backwards-compatible alias: placement used to be configured through
#: ``make_shard_policy`` before it grew into :mod:`repro.service.placement`.
make_shard_policy = make_placement_map


def resolve_shard_backend(backend: str) -> str:
    """Resolve the ``shard_backend`` knob to ``"process"`` or ``"thread"``.

    ``process`` requires the ``fork`` start method (the shard contexts ride
    into the workers copy-on-write; with ``spawn`` they would be pickled).
    ``auto`` picks ``process`` only when fork exists, more than one CPU is
    available — on a 1-CPU box worker processes pay IPC and scheduling
    costs for pure time-slicing, so in-process shards are strictly better —
    and the calling process is single-threaded: forking with live threads
    (e.g. from a :class:`~repro.service.server.BackgroundServer` thread)
    can deadlock the child on locks the other threads held at fork time,
    which is why CPython deprecates it.  An explicit ``"process"`` is
    honoured regardless, for callers who know their threads hold no locks.
    """
    if backend not in SHARD_BACKENDS:
        raise ConfigurationError(
            f"shard_backend must be one of {SHARD_BACKENDS}, got {backend!r}")
    fork_available = "fork" in multiprocessing.get_all_start_methods()
    if backend == "process" and not fork_available:
        raise ConfigurationError(
            "shard_backend 'process' requires the fork start method, which "
            "this platform does not provide; use 'thread' or 'auto'")
    if backend != "auto":
        return backend
    return ("process" if fork_available and available_workers() > 1
            and threading.active_count() == 1 else "thread")


# ----------------------------------------------------------------------
# Shard workers
# ----------------------------------------------------------------------
@dataclass(slots=True)
class ShardContext:
    """Everything one shard worker needs to build its private index.

    The sharded analogue of :class:`repro.core.parallel.WorkerContext`: the
    router builds one context per shard and hands it to the worker — through
    fork-time copy-on-write memory for process shards (nothing is pickled),
    as a plain argument for in-process shards.
    """

    records: list[StringRecord]
    max_tau: int
    partition: PartitionStrategy
    compact_interval: int
    kernel: str = DEFAULT_KERNEL
    #: True on a shard primary with read replicas: the primary keeps the
    #: epoch-tagged mutation log its replicas catch up from.  Replicas are
    #: built from the same context with this flag stripped.
    log_mutations: bool = False

    def build(self) -> DynamicSearcher:
        return DynamicSearcher(self.records, max_tau=self.max_tau,
                               partition=self.partition,
                               compact_interval=self.compact_interval,
                               kernel=self.kernel,
                               log_mutations=self.log_mutations)


def _apply_shard_op(searcher: DynamicSearcher, op: str, args: object) -> object:
    """Execute one router op against a shard's searcher (both backends)."""
    if op == "search":
        query, tau = args
        return searcher.search(query, tau)
    if op == "search-many":
        return searcher.search_many([query for query, _ in args],
                                    tau=[tau for _, tau in args])
    if op == "top-k":
        query, k, limit = args
        return searcher.search_top_k(query, k, limit)
    if op == "top-k-many":
        queries, k, limit = args
        return searcher.search_top_k_many(list(queries), k, limit)
    if op == "insert":
        return searcher.insert(args)
    if op == "delete":
        return searcher.delete(args)
    if op == "extract":
        # Migration copy step: the live records among the planned ids (a
        # record deleted since planning is silently skipped).
        return searcher.get_many(args)
    if op == "insert-many":
        return searcher.insert_many(args)
    if op == "delete-many":
        return searcher.delete_many(args)
    if op == "compact":
        return searcher.compact()
    if op == "records":
        return searcher.records
    if op == "status":
        return {"size": len(searcher),
                "tombstones": searcher.tombstone_count,
                "statistics": searcher.statistics,
                "memory": searcher.index_memory()}
    if op == "metrics":
        # A registry snapshot is a plain dict, so it survives the process
        # backend's pipe unchanged and merges in the router.
        return funnel_snapshot(searcher.statistics,
                               memory=searcher.index_memory(),
                               kernel=searcher.kernel.name)
    if op == "explain":
        query, tau = args
        return searcher.explain(query, tau)
    if op == "log-tail":
        # Primary only: the mutation entries a replica needs to catch up.
        return searcher.mutation_log_tail(args)
    if op == "log-trim":
        # Primary only: every replica passed this epoch, drop the prefix.
        return searcher.trim_mutation_log(args)
    if op == "apply-log":
        # Replica only: replay a primary log tail; the standard reply
        # epoch then reports the replica's new applied epoch.
        return searcher.apply_mutations(args)
    raise ServiceError(f"unknown shard op {op!r}")


class _InProcessShard:
    """Thread-backend shard: the calling thread drives the searcher directly.

    ``send``/``recv`` mimic the pipe protocol of :class:`_ProcessShard` so
    the router's scatter-gather code is backend-agnostic; errors are carried
    to ``recv`` exactly like a pipe reply would carry them.
    """

    backend = "thread"

    def __init__(self, context: ShardContext) -> None:
        self._searcher = context.build()
        self._reply: tuple[str, object, int] | None = None
        self._closed = False
        # Serialises one send/recv exchange per caller thread; see
        # _scatter_each for the acquisition discipline.
        self.lock = threading.Lock()

    def send(self, op: str, args: object) -> None:
        if self._closed:
            # Mirror the process backend's broken pipe: a stopped worker
            # fails at send time, so replica fault handling is
            # backend-agnostic.
            raise ServiceError("shard worker is closed")
        try:
            result = _apply_shard_op(self._searcher, op, args)
        except Exception as error:  # noqa: BLE001 - re-raised by recv()
            self._reply = ("error", error, self._searcher.epoch)
        else:
            self._reply = ("ok", result, self._searcher.epoch)

    def recv(self) -> tuple[object, int]:
        assert self._reply is not None, "recv() before send()"
        status, payload, epoch = self._reply
        self._reply = None
        if status == "error":
            raise payload  # type: ignore[misc]
        return payload, epoch

    def close(self) -> None:
        self._closed = True


def _shard_worker_main(conn, context: ShardContext) -> None:
    """Process-backend worker loop: build the shard index, serve ops.

    Every reply carries the shard's current epoch so the router's mirror
    stays exact even when a delete triggers an automatic compaction inside
    the worker (which moves the epoch twice in one op).
    """
    searcher = context.build()
    try:
        while True:
            try:
                op, args = conn.recv()
            except (EOFError, OSError):
                break
            if op == "close":
                break
            try:
                result = _apply_shard_op(searcher, op, args)
            except Exception as error:  # noqa: BLE001 - forwarded to router
                try:
                    conn.send(("error", error, searcher.epoch))
                except Exception:  # unpicklable exception object
                    conn.send(("error", ServiceError(repr(error)),
                               searcher.epoch))
            else:
                conn.send(("ok", result, searcher.epoch))
    finally:
        conn.close()


class _ProcessShard:
    """Process-backend shard: a fork-spawned worker serving ops over a pipe."""

    backend = "process"

    def __init__(self, context: ShardContext, mp_context) -> None:
        self.lock = threading.Lock()
        self._conn, child_conn = mp_context.Pipe()
        self._process = mp_context.Process(
            target=_shard_worker_main, args=(child_conn, context), daemon=True)
        self._process.start()
        child_conn.close()

    def send(self, op: str, args: object) -> None:
        try:
            self._conn.send((op, args))
        except (BrokenPipeError, OSError) as error:
            raise ServiceError(f"shard worker died: {error}") from error

    def recv(self) -> tuple[object, int]:
        try:
            status, payload, epoch = self._conn.recv()
        except (EOFError, OSError) as error:
            raise ServiceError(f"shard worker died: {error}") from error
        if status == "error":
            raise payload  # type: ignore[misc]
        return payload, epoch

    def close(self) -> None:
        try:
            self._conn.send(("close", None))
        except (BrokenPipeError, OSError):
            pass
        self._conn.close()
        self._process.join(timeout=5)
        if self._process.is_alive():  # pragma: no cover - stuck worker
            self._process.terminate()
            self._process.join(timeout=5)


# ----------------------------------------------------------------------
# Read replicas
# ----------------------------------------------------------------------
@dataclass(slots=True)
class _ReplicaState:
    """One read replica of a shard: its worker plus replication progress.

    ``applied_epoch`` is the epoch the replica's index reached by
    replaying the primary's mutation log; the replica may serve reads only
    while it equals the router's epoch mirror for the shard.  ``alive``
    goes (permanently) False when the worker fails or is stopped — a dead
    replica is never read from and never synced again, the primary simply
    carries its share of the read load.
    """

    worker: object  # _InProcessShard | _ProcessShard
    applied_epoch: int = 0
    alive: bool = True


#: Ops a fresh replica may serve.  Everything else — mutations, migration
#: plumbing, status/metrics/records introspection — routes to the primary.
_READ_OPS = frozenset({"search", "search-many", "top-k", "top-k-many"})

#: Ops that move a shard's epoch: after one of these lands on a primary,
#: the router ships the new mutation-log tail to that shard's replicas.
_MUTATING_OPS = frozenset(
    {"insert", "delete", "insert-many", "delete-many", "compact"})


# ----------------------------------------------------------------------
# Live migration state
# ----------------------------------------------------------------------
@dataclass(slots=True)
class _LiveMigration:
    """One in-flight fleet resize: the bounded-batch migration plan.

    ``copies`` holds the pending copy steps ``(donor, recipient, ids)``;
    each executed copy appends a matching release step ``(donor, ids)`` to
    ``releases``.  ``dual`` tracks the copied-but-not-released ids (and
    their donor shard): those records are physically present on two shards,
    which the router's merges deduplicate and its deletes clean up eagerly.
    """

    kind: str  # "add-shard" | "remove-shard"
    old_policy: PlacementMap
    retiring: int | None  # shard worker to close once the plan is drained
    copies: deque  # of (donor, recipient, list[record_id])
    donors: frozenset[int]
    rows_total: int
    releases: deque = field(default_factory=deque)  # of (donor, list[id])
    dual: dict = field(default_factory=dict)  # record id -> donor shard
    rows_copied: int = 0
    rows_released: int = 0


# ----------------------------------------------------------------------
# Router
# ----------------------------------------------------------------------
class ShardRouter:
    """Scatter-gather facade over an elastic fleet of shard workers.

    Duck-types the :class:`DynamicSearcher` surface the serving core uses
    (``search``/``search_top_k``/``insert``/``delete``/``compact``/
    ``epoch``/``statistics``/``len``), so :class:`SimilarityService` serves
    a sharded collection through the exact same dispatch code.  Results are
    element-identical to a single unsharded searcher over the same records
    — including while an :meth:`add_shard`/:meth:`remove_shard` migration
    is in flight.

    Record ids must be unique across the initial collection (auto-numbered
    plain strings always are); a duplicate raises ``ValueError``, since two
    live records sharing an id could land on different shards and break the
    merge.

    Parameters
    ----------
    strings:
        Initial collection, partitioned across the shards by ``policy``.
    shards:
        Number of shard workers (>= 1; 1 is a degenerate single shard).
    max_tau:
        Largest per-query threshold, forwarded to every shard index.
    policy:
        ``"hash"`` (consistent-hashing ring, scatter-all), ``"length"``
        (length bands, queries touch only intersecting shards), or
        ``"modulo"`` (legacy ``id % N``).
    backend:
        ``"thread"`` (in-process), ``"process"`` (fork workers), or
        ``"auto"`` (process on multi-core fork platforms, thread elsewhere).
    migration_batch:
        Records one live-resharding step moves between two shards (bounds
        how long a step blocks queries).
    replicas_per_shard:
        Read replicas per shard (>= 0; 0 — the default — disables
        replication entirely).  See the module docstring's *Read
        replicas* section for the freshness contract.

    Examples
    --------
    >>> router = ShardRouter(["vldb", "pvldb", "icde"], shards=2, max_tau=1,
    ...                      backend="thread")
    >>> [m.text for m in router.search("vldb", tau=1)]
    ['vldb', 'pvldb']
    >>> router.add_shard()["shards"]
    3
    >>> [m.text for m in router.search("vldb", tau=1)]
    ['vldb', 'pvldb']
    >>> router.close()
    """

    def __init__(self, strings: Iterable[str | StringRecord] = (), *,
                 shards: int, max_tau: int,
                 partition: PartitionStrategy = PartitionStrategy.EVEN,
                 compact_interval: int = 64, policy: str = "hash",
                 backend: str = "auto", migration_batch: int = 256,
                 kernel: str | SimilarityKernel | None = None,
                 replicas_per_shard: int = 0) -> None:
        if isinstance(shards, bool) or not isinstance(shards, int) or shards < 1:
            raise ConfigurationError(
                f"shards must be a positive integer, got {shards!r}")
        if (isinstance(migration_batch, bool)
                or not isinstance(migration_batch, int) or migration_batch < 1):
            raise ConfigurationError(
                f"migration_batch must be a positive integer, "
                f"got {migration_batch!r}")
        if (isinstance(replicas_per_shard, bool)
                or not isinstance(replicas_per_shard, int)
                or replicas_per_shard < 0):
            raise ConfigurationError(
                f"replicas_per_shard must be a non-negative integer, "
                f"got {replicas_per_shard!r}")
        self.kernel = resolve_kernel(kernel)
        self.max_tau = self.kernel.validate_tau(max_tau)
        self.num_shards = shards
        self.policy = make_placement_map(policy, shards, self.max_tau)
        self.backend = resolve_shard_backend(backend)
        self.migration_batch = migration_batch
        self._partition = partition
        self._compact_interval = compact_interval

        per_shard: list[list[StringRecord]] = [[] for _ in range(shards)]
        self._shard_of: dict[int, int] = {}  # live record id -> shard index
        # live record id -> partition key under the kernel (text length for
        # edit distance, token-set size for token-jaccard).
        self._length_of: dict[int, int] = {}
        self._length_counts: dict[int, int] = {}  # live key -> record count
        self._next_id = 0
        for record in as_records(strings):
            if record.id in self._shard_of:
                raise ValueError(
                    f"duplicate id {record.id} in the initial collection: "
                    f"sharded results are only exact over unique ids")
            key = self.kernel.record_key(record.text)
            shard = self.policy.place(record.id, key)
            per_shard[shard].append(record)
            self._track_live(record.id, key, shard)

        self._mp_context = (multiprocessing.get_context("fork")
                            if self.backend == "process" else None)
        self.replicas_per_shard = replicas_per_shard
        contexts = [ShardContext(records=bucket, max_tau=self.max_tau,
                                 partition=partition,
                                 compact_interval=compact_interval,
                                 kernel=self.kernel.name,
                                 log_mutations=replicas_per_shard > 0)
                    for bucket in per_shard]
        self._shards = [self._spawn(context) for context in contexts]
        # Per-shard replica pools (empty lists when replication is off,
        # so every indexing path stays uniform).
        self._replicas: list[list[_ReplicaState]] = [
            self._spawn_replicas(context) for context in contexts]
        self._read_schedule = ReplicaReadSchedule()
        # Guards the read-schedule cursors and replica counters — the only
        # router state concurrent reader threads mutate besides the
        # per-worker locks.
        self._read_lock = threading.Lock()
        self._replication_paused = False
        self.replica_reads = 0
        self.replica_fallbacks = 0
        self._epochs = [0] * shards
        # Epochs of retired shards fold into the base so the scalar epoch
        # stays monotone across remove_shard.
        self._epoch_base = 0
        # Placement generation: bumped when a migration starts and when it
        # finishes, i.e. whenever any query's probe set may change.  Part
        # of every cache token, so cached answers never survive a resize.
        self._generation = 0
        self._migration: _LiveMigration | None = None
        self._last_migration: dict = {}
        self.rows_migrated_total = 0
        self._closed = False

    def _spawn(self, context: ShardContext):
        if self.backend == "process":
            return _ProcessShard(context, self._mp_context)
        return _InProcessShard(context)

    def _spawn_replicas(self, context: ShardContext) -> list[_ReplicaState]:
        """Spawn the replica pool for one shard (its primary's context).

        Replicas build from the same records — copy-on-write under the
        process backend — but never log mutations themselves: they are
        consumers of the primary's log, not producers.
        """
        replica_context = replace(context, log_mutations=False)
        return [_ReplicaState(self._spawn(replica_context))
                for _ in range(self.replicas_per_shard)]

    def _track_live(self, record_id: int, length: int, shard: int) -> None:
        self._shard_of[record_id] = shard
        self._length_of[record_id] = length
        self._length_counts[length] = self._length_counts.get(length, 0) + 1
        self._next_id = max(self._next_id, record_id + 1)

    def _untrack_live(self, record_id: int) -> None:
        del self._shard_of[record_id]
        length = self._length_of.pop(record_id)
        remaining = self._length_counts[length] - 1
        if remaining:
            self._length_counts[length] = remaining
        else:
            del self._length_counts[length]

    # ------------------------------------------------------------------
    # Scatter-gather plumbing
    # ------------------------------------------------------------------
    def _scatter(self, targets: Sequence[int], op: str,
                 args: object) -> list:
        """Send one op (same args) to every target shard; collect replies."""
        return self._scatter_each(targets, op, [args] * len(targets))

    def _scatter_each(self, targets: Sequence[int], op: str,
                      args_list: Sequence[object]) -> list:
        """Send one op with per-shard args, then collect every reply.

        ``args_list`` is aligned with ``targets`` (the batch executor
        sends each shard only the sub-batch of queries that probe it).
        Both phases run to completion before any error is re-raised: a
        failed send (dead worker) must not stop the reply of an
        already-sent shard from being drained — a process shard's pipe
        must never hold an unread reply, or the next op on that shard
        would silently read this op's stale answer.  Process shards
        overlap their work across the scatter; in-process shards execute
        inline at ``send`` time.

        Read ops may be served by a fresh replica instead of the primary
        (:meth:`_read_endpoint`); a replica that fails mid-exchange is
        marked dead and the read retried on its primary — reads are pure,
        so the retry is safe and the caller never observes the fault.
        Every endpoint's lock is held from its send to its recv.  Because
        ``targets`` is ascending and every endpoint belongs to exactly one
        shard, all threads acquire endpoint locks in shard order —
        concurrent scatters cannot deadlock, they only queue per endpoint.

        After a mutating op the affected shards' replicas are synced
        (unless replication is paused), so replicas regain freshness —
        and with it read eligibility — immediately.
        """
        first_error: Exception | None = None
        serve_from_replica = op in _READ_OPS and self.replicas_per_shard > 0
        # Aligned with targets: (endpoint worker, _ReplicaState | None for
        # a primary, send succeeded).
        exchanges: list[tuple[object, _ReplicaState | None, bool]] = []
        for shard, args in zip(targets, args_list):
            if serve_from_replica:
                worker, replica = self._read_endpoint(shard)
            else:
                worker, replica = self._shards[shard], None
            worker.lock.acquire()
            try:
                worker.send(op, args)
            except Exception as error:  # noqa: BLE001 - handled below
                worker.lock.release()
                if replica is not None:
                    # Dead replica: demote it and re-send on the primary.
                    self._mark_replica_dead(replica)
                    worker, replica = self._shards[shard], None
                    worker.lock.acquire()
                    try:
                        worker.send(op, args)
                    except Exception as primary_error:  # noqa: BLE001
                        worker.lock.release()
                        if first_error is None:
                            first_error = primary_error
                        exchanges.append((worker, None, False))
                        continue
                    exchanges.append((worker, None, True))
                    continue
                if first_error is None:
                    first_error = error
                exchanges.append((worker, None, False))
                continue
            exchanges.append((worker, replica, True))
        payloads: list = []
        for (worker, replica, was_sent), shard, args in zip(
                exchanges, targets, args_list):
            if not was_sent:
                payloads.append(None)
                continue
            try:
                payload, epoch = worker.recv()
            except Exception as error:  # noqa: BLE001 - handled below
                worker.lock.release()
                if replica is not None:
                    self._mark_replica_dead(replica)
                    try:
                        payloads.append(self._primary_retry(shard, op, args))
                    except Exception as retry_error:  # noqa: BLE001
                        if first_error is None:
                            first_error = retry_error
                        payloads.append(None)
                    continue
                if first_error is None:
                    first_error = error
                payloads.append(None)
            else:
                worker.lock.release()
                if replica is None:
                    self._epochs[shard] = epoch
                else:
                    replica.applied_epoch = epoch
                payloads.append(payload)
        if first_error is not None:
            raise first_error
        if op in _MUTATING_OPS and self.replicas_per_shard > 0:
            for shard in dict.fromkeys(targets):
                self._sync_replicas(shard)
        return payloads

    def _primary_retry(self, shard: int, op: str, args: object) -> object:
        """Re-run one read on the shard primary after a replica fault."""
        worker = self._shards[shard]
        with worker.lock:
            worker.send(op, args)
            payload, epoch = worker.recv()
        self._epochs[shard] = epoch
        return payload

    def _call(self, shard: int, op: str, args: object) -> object:
        return self._scatter((shard,), op, args)[0]

    # ------------------------------------------------------------------
    # Read replicas
    # ------------------------------------------------------------------
    def _read_endpoint(self, shard: int,
                       ) -> tuple[object, _ReplicaState | None]:
        """The worker that should serve a read on ``shard`` right now.

        Eligible replicas are the alive ones whose applied epoch equals
        the router's epoch mirror — the same per-shard epoch
        :meth:`epoch_token` folds into cache keys, here acting as the
        replica-freshness token.  The read schedule rotates across them;
        with none eligible the primary serves (counted as a fallback when
        the shard does have replicas configured).
        """
        pool = self._replicas[shard]
        if pool:
            current = self._epochs[shard]
            fresh = [index for index, replica in enumerate(pool)
                     if replica.alive and replica.applied_epoch == current]
            with self._read_lock:
                choice = self._read_schedule.choose(shard, fresh)
                if choice is not None:
                    self.replica_reads += 1
                else:
                    self.replica_fallbacks += 1
            if choice is not None:
                return pool[choice].worker, pool[choice]
        return self._shards[shard], None

    def _mark_replica_dead(self, replica: _ReplicaState) -> None:
        replica.alive = False
        with self._read_lock:
            self.replica_fallbacks += 1

    def _sync_replicas(self, shard: int) -> None:
        """Ship the primary's mutation-log tail to the shard's replicas.

        Called after every mutation that lands on ``shard``.  Each stale
        replica replays exactly the entries past its own applied epoch;
        a replica that fails (or whose replay detects divergence) is
        marked dead, never served from again.  Afterwards the log is
        trimmed to the slowest alive replica's epoch, keeping it bounded
        by replication lag.  A no-op while replication is paused — the
        lag-injection hook the property tests use — and for shards
        without replicas.
        """
        pool = self._replicas[shard]
        if not pool or self._replication_paused:
            return
        target_epoch = self._epochs[shard]
        stale = [replica for replica in pool
                 if replica.alive and replica.applied_epoch < target_epoch]
        if stale:
            oldest = min(replica.applied_epoch for replica in stale)
            entries = self._call(shard, "log-tail", oldest)
            for replica in stale:
                tail = [entry for entry in entries
                        if entry[0] > replica.applied_epoch]
                try:
                    with replica.worker.lock:
                        replica.worker.send("apply-log", tail)
                        _, epoch = replica.worker.recv()
                except Exception:  # noqa: BLE001 - replica is demoted
                    self._mark_replica_dead(replica)
                    continue
                replica.applied_epoch = epoch
        floor = min((replica.applied_epoch
                     for replica in pool if replica.alive),
                    default=target_epoch)
        self._call(shard, "log-trim", floor)

    def pause_replication(self) -> None:
        """Stop shipping mutations to replicas until :meth:`resume_replication`.

        Mutations keep flowing to the primaries; replicas simply fall
        behind, lose read eligibility, and every read falls back to the
        primaries.  This is the lag-injection hook: the property suite
        uses it to prove that an arbitrarily stale replica is bypassed,
        never served.
        """
        self._replication_paused = True

    def resume_replication(self) -> None:
        """Resume replication and catch every shard's replicas up now."""
        self._replication_paused = False
        for shard in range(self.num_shards):
            self._sync_replicas(shard)

    def stop_replica(self, shard: int, index: int) -> None:
        """Stop one replica worker and mark it dead (fault injection).

        The shard keeps answering reads exactly — from its remaining
        fresh replicas and its primary — and ``replica_status`` reports
        the stopped replica as degraded.
        """
        replica = self._replicas[shard][index]
        replica.alive = False
        replica.worker.close()

    def replica_status(self) -> list[list[dict]]:
        """Per-shard replica health: applied epoch, lag, liveness.

        ``lag`` measures mutation epochs the replica is behind its
        primary; a fresh replica reads 0.  Feeds ``admin status``'s
        replica rows and the service's replica metrics.
        """
        return [[{"applied_epoch": replica.applied_epoch,
                  "lag": max(0, self._epochs[shard] - replica.applied_epoch),
                  "alive": replica.alive}
                 for replica in pool]
                for shard, pool in enumerate(self._replicas)]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._shard_of)

    @property
    def epoch(self) -> int:
        """Scalar mutation counter: retired plus live per-shard epochs.

        Monotone — each shard epoch only grows, and a removed shard's
        final epoch folds into a base term instead of vanishing — and
        moved by every mutation, so it serves the wire protocol's
        ``epoch`` field; cache keys use the finer-grained
        :meth:`epoch_token` instead.
        """
        return self._epoch_base + sum(self._epochs)

    @property
    def epoch_vector(self) -> tuple[int, ...]:
        """Per-shard mutation counters, in shard order."""
        return tuple(self._epochs)

    @property
    def generation(self) -> int:
        """Placement generation: bumped whenever probe sets may change."""
        return self._generation

    def epoch_token(self, key: tuple) -> tuple[int, ...]:
        """Cache-key part: generation plus the probed shards' epochs.

        ``key`` is a serving-core query key — ``("search", query, tau)`` or
        ``("top-k", query, k, limit)``.  Within one placement generation
        the probe set is a pure function of the query and threshold, so
        the token needs only the epochs, in shard order: a mutation on any
        probed shard changes the token (and thereby misses the cache),
        while mutations on unrelated shards leave it — and every cached
        answer that only probes other shards — intact.  The leading
        generation term changes when a resize starts or finishes, so no
        cached answer can be served across a placement change it did not
        see.
        """
        tau = key[2] if key[0] == "search" else key[3]
        targets = self._probe_targets(key[1], tau)
        return (self._generation,
                *(self._epochs[shard] for shard in targets))

    @property
    def tombstone_count(self) -> int:
        """Deleted records still physically present across all shards."""
        return self.status_summary()["tombstones"]

    @property
    def records(self) -> list[StringRecord]:
        """The live records across all shards, ordered by id (a snapshot).

        During a migration a moving record is briefly present on both its
        donor and its recipient; the two copies are identical and are
        collapsed here, exactly as the query merges collapse them.
        """
        gathered = self._scatter(range(self.num_shards), "records", None)
        merged = {record.id: record
                  for bucket in gathered for record in bucket}
        return [merged[record_id] for record_id in sorted(merged)]

    @property
    def statistics(self) -> JoinStatistics:
        """Aggregated per-shard :class:`JoinStatistics` (computed on demand)."""
        return self.status_summary()["statistics"]

    def shard_status(self) -> list[dict]:
        """Per-shard ``{"size", "tombstones", "statistics"}`` snapshots."""
        return self._scatter(range(self.num_shards), "status", None)

    def status_summary(self) -> dict:
        """Fleet-wide tombstones, merged statistics, and memory in one scatter.

        The single aggregation point over :meth:`shard_status` — callers
        needing several of these values (the service ``stats`` op) pay one
        round of shard IPC instead of one per property.  ``memory`` sums
        the per-shard columnar-index figures; ``shard_memory`` keeps the
        per-shard breakdown for the sharded ``stats`` payload.
        """
        tombstones = 0
        merged = JoinStatistics()
        memory: dict[str, int] = {}
        shard_memory: list[dict[str, int]] = []
        for status in self.shard_status():
            tombstones += status["tombstones"]
            merged = merged.merge(status["statistics"])
            shard_memory.append(status["memory"])
            for field_name, value in status["memory"].items():
                memory[field_name] = memory.get(field_name, 0) + value
        return {"tombstones": tombstones, "statistics": merged,
                "memory": memory, "shard_memory": shard_memory}

    def index_memory(self) -> dict[str, int]:
        """Summed per-shard columnar-index memory figures (one scatter)."""
        return self.status_summary()["memory"]

    def metrics_snapshot(self) -> dict:
        """Fleet-wide engine funnel metrics in one scatter.

        Each shard renders its :class:`~repro.types.JoinStatistics` (plus
        columnar index memory) as a registry snapshot — a plain dict that
        rides the process backend's pipe unchanged — and the router sums
        them with :func:`~repro.obs.metrics.merge_snapshots`, following the
        :meth:`status_summary` one-scatter aggregation pattern.  Returns
        ``{"merged": ..., "per_shard": [...]}`` so the ``metrics`` wire op
        can expose both the fleet total and the per-shard breakdown.  With
        read replicas configured a ``"replicas"`` section is added:
        routing counters (``replica_reads``/``replica_fallbacks``), the
        worst alive replica's lag, and the alive/total population — the
        numbers behind the ``replica_lag_max`` gauge the serving layer
        exports.
        """
        per_shard = self._scatter(range(self.num_shards), "metrics", None)
        snapshot = {"merged": merge_snapshots(per_shard),
                    "per_shard": per_shard}
        if self.replicas_per_shard > 0:
            status = self.replica_status()
            flat = [entry for pool in status for entry in pool]
            snapshot["replicas"] = {
                "replica_reads": self.replica_reads,
                "replica_fallbacks": self.replica_fallbacks,
                "replica_lag_max": max(
                    (entry["lag"] for entry in flat if entry["alive"]),
                    default=0),
                "replicas_alive": sum(
                    1 for entry in flat if entry["alive"]),
                "replicas_total": len(flat),
            }
        return snapshot

    def shard_sizes(self) -> list[int]:
        """Number of live records per shard (placement balance check)."""
        sizes = [0] * self.num_shards
        for shard in self._shard_of.values():
            sizes[shard] += 1
        return sizes

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, text: str | StringRecord, *, id: int | None = None) -> int:
        """Add one string to its owning shard; return its id.

        Same id semantics as :meth:`DynamicSearcher.insert`: auto-assigned
        one above the largest ever seen unless given, inserting a live id
        raises ``ValueError``, re-using a tombstoned id is allowed.  While
        a migration is in flight, placement follows the **new** map — the
        fleet layout the migration is moving towards.
        """
        record = coerce_insert_record(text, id, self._next_id)
        if record.id in self._shard_of:
            raise ValueError(f"id {record.id} is already in the collection")
        key = self.kernel.record_key(record.text)
        shard = self.policy.place(record.id, key)
        self._call(shard, "insert", record)
        self._track_live(record.id, key, shard)
        return record.id

    def delete(self, record_id: int) -> bool:
        """Tombstone one record on its owning shard; False when not live.

        A record that is dual-present mid-migration (copied to its
        recipient, not yet released from its donor) is deleted from both
        shards, so the donor copy cannot resurface in later searches.
        """
        shard = self._shard_of.get(record_id)
        if shard is None:
            return False
        deleted = self._call(shard, "delete", record_id)
        if deleted:
            self._untrack_live(record_id)
            migration = self._migration
            if migration is not None:
                donor = migration.dual.pop(record_id, None)
                if donor is not None:
                    self._call(donor, "delete", record_id)
        return bool(deleted)

    def compact(self) -> int:
        """Compact every shard; return the total number of purged postings."""
        return sum(self._scatter(range(self.num_shards), "compact", None))

    # ------------------------------------------------------------------
    # Live resharding
    # ------------------------------------------------------------------
    def add_shard(self, *, drain: bool = True) -> dict:
        """Grow the fleet by one empty shard and rebalance onto it.

        Starts a live migration from the current placement map to the same
        map resized over ``num_shards + 1`` workers.  With ``drain=True``
        (default) the whole plan executes before returning; with
        ``drain=False`` it is left in flight for :meth:`migration_step` —
        queries and mutations remain fully available either way.  Returns
        :meth:`rebalance_status`.
        """
        self._require_idle()
        context = ShardContext(records=[], max_tau=self.max_tau,
                               partition=self._partition,
                               compact_interval=self._compact_interval,
                               kernel=self.kernel.name,
                               log_mutations=self.replicas_per_shard > 0)
        self._shards.append(self._spawn(context))
        # The new shard's replicas start empty at epoch 0 — exactly the
        # primary's state — so they are fresh (and read-eligible) from
        # the first moment.
        self._replicas.append(self._spawn_replicas(context))
        self._epochs.append(0)
        self.num_shards += 1
        self._start_migration("add-shard",
                              self.policy.resized(self.num_shards),
                              retiring=None)
        if drain:
            self.drain_migration()
        return self.rebalance_status()

    def remove_shard(self, shard: int | None = None, *,
                     drain: bool = True) -> dict:
        """Shrink the fleet by retiring its highest-numbered shard.

        Streams every record off the retiring shard (and, under the
        ``length`` policy, re-deals the remaining bands) before closing its
        worker.  Only the last shard can be retired: lower shard indices
        must stay stable because the placement maps address shards by
        index.  ``drain`` as in :meth:`add_shard`.
        """
        self._require_idle()
        if self.num_shards <= 1:
            raise ServiceError("cannot remove the only shard")
        last = self.num_shards - 1
        if shard is not None and shard != last:
            raise ServiceError(
                f"only the highest-numbered shard can be removed "
                f"(got {shard}, expected {last}); lower shard indices must "
                f"stay stable for the placement map")
        self._start_migration("remove-shard", self.policy.resized(last),
                              retiring=last)
        if drain:
            self.drain_migration()
        return self.rebalance_status()

    def migration_step(self) -> dict:
        """Run one bounded migration action; return :meth:`rebalance_status`.

        Either copies one batch of records from a donor to its recipient
        (after which those records are dual-present and queries dedupe
        them) or releases one already-copied batch from its donor.  A
        no-op when no migration is active.  The last step compacts the
        donors — physically releasing the moved rows from their record
        stores — and, for ``remove-shard``, closes the retiring worker.
        """
        migration = self._migration
        if migration is None:
            return self.rebalance_status()
        if migration.copies:
            donor, recipient, planned = migration.copies.popleft()
            # Re-validate the plan against the present: skip records the
            # caller deleted since planning, and records whose placement
            # changed again (a tombstoned id re-inserted with a new length
            # is already where the new map wants it).
            ids = [record_id for record_id in planned
                   if self._shard_of.get(record_id) == donor
                   and self.policy.place(
                       record_id, self._length_of[record_id]) == recipient]
            if ids:
                records = self._call(donor, "extract", ids)
                self._call(recipient, "insert-many", records)
                moved = []
                for record in records:
                    moved.append(record.id)
                    self._shard_of[record.id] = recipient
                    migration.dual[record.id] = donor
                migration.rows_copied += len(moved)
                migration.releases.append((donor, moved))
        elif migration.releases:
            donor, copied = migration.releases.popleft()
            pending = [record_id for record_id in copied
                       if migration.dual.pop(record_id, None) is not None]
            if pending:
                self._call(donor, "delete-many", pending)
            migration.rows_released += len(pending)
        if not migration.copies and not migration.releases:
            self._finish_migration()
        return self.rebalance_status()

    def drain_migration(self) -> dict:
        """Run migration steps until no migration is active."""
        while self._migration is not None:
            self.migration_step()
        return self.rebalance_status()

    def rebalance_status(self) -> dict:
        """Progress of the in-flight (or summary of the last) migration."""
        status = {
            "active": self._migration is not None,
            "shards": self.num_shards,
            "policy": self.policy.name,
            "generation": self._generation,
            "rows_migrated_total": self.rows_migrated_total,
        }
        migration = self._migration
        if migration is not None:
            status.update(
                kind=migration.kind, rows_total=migration.rows_total,
                rows_copied=migration.rows_copied,
                rows_released=migration.rows_released,
                steps_left=len(migration.copies) + len(migration.releases))
        else:
            status.update(self._last_migration)
        return status

    def _require_idle(self) -> None:
        if self._migration is not None:
            raise ServiceError(
                "a resharding migration is already in flight; poll "
                "rebalance-status until it completes")

    def _start_migration(self, kind: str, new_policy: PlacementMap,
                         retiring: int | None) -> None:
        """Diff old vs new placement into bounded copy batches; activate."""
        moves: dict[tuple[int, int], list[int]] = {}
        for record_id, shard in self._shard_of.items():
            target = new_policy.place(record_id, self._length_of[record_id])
            if target != shard:
                moves.setdefault((shard, target), []).append(record_id)
        copies: deque = deque()
        rows_total = 0
        for donor, recipient in sorted(moves):
            ids = sorted(moves[(donor, recipient)])
            rows_total += len(ids)
            for start in range(0, len(ids), self.migration_batch):
                copies.append((donor, recipient,
                               ids[start:start + self.migration_batch]))
        old_policy, self.policy = self.policy, new_policy
        self._generation += 1
        self._migration = _LiveMigration(
            kind=kind, old_policy=old_policy, retiring=retiring,
            copies=copies, donors=frozenset(donor for donor, _ in moves),
            rows_total=rows_total)
        if not copies:
            self._finish_migration()

    def _finish_migration(self) -> None:
        migration = self._migration
        assert migration is not None
        assert not migration.dual, "dual-present records left behind"
        donors = sorted(migration.donors)
        if donors:
            # Purge the donors' migration tombstones so the moved rows are
            # physically released and per-shard row counts re-balance now,
            # not at some future compaction.
            self._scatter(donors, "compact", None)
        if migration.retiring is not None:
            donor = migration.retiring
            assert donor == self.num_shards - 1
            self._shards[donor].close()
            del self._shards[donor]
            for replica in self._replicas[donor]:
                replica.worker.close()
            del self._replicas[donor]
            self._read_schedule.reset(donor)
            self._epoch_base += self._epochs[donor]
            del self._epochs[donor]
            self.num_shards -= 1
        self.rows_migrated_total += migration.rows_copied
        self._generation += 1
        self._migration = None
        self._last_migration = {
            "kind": migration.kind, "rows_total": migration.rows_total,
            "rows_copied": migration.rows_copied,
            "rows_released": migration.rows_released}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _probe_targets(self, query: str, tau: int) -> tuple[int, ...]:
        """Shards a query must scatter to right now (possibly none).

        The kernel turns the query into an inclusive partition-key window
        (``[|q| − τ, |q| + τ]`` for edit distance, the Jaccard size filter
        for token sets); the probe set is empty when no live record's key
        falls inside it — a match is impossible on the key filter alone,
        so the query is answered ``[]`` without touching any shard (the
        empty-band fast path of the ``length`` policy, valid for every
        policy).  During a migration the old and new maps' probe sets are
        unioned: an unmoved record is still covered by the old map, a
        moved one by the new.
        """
        counts = self._length_counts
        lo, hi = self.kernel.probe_key_range(query, tau)
        if hi - lo + 1 > len(counts):
            alive = any(lo <= key <= hi for key in counts)
        else:
            alive = any(key in counts for key in range(lo, hi + 1))
        if not alive:
            return ()
        targets = self.policy.probe_key_span(lo, hi)
        migration = self._migration
        if migration is not None:
            union = set(targets)
            union.update(migration.old_policy.probe_key_span(lo, hi))
            targets = tuple(sorted(union))
        return targets

    def _merge(self, gathered: Iterable[Sequence[SearchMatch]],
               ) -> list[SearchMatch]:
        """Merge per-shard result lists under ``(distance, id)``.

        Outside a migration the shards partition the id space, so plain
        concatenation loses nothing and duplicates nothing.  During a
        migration a dual-present record is probed on both its donor and
        its recipient with identical ``(distance, id, text)``; the merge
        drops the second copy, keeping results element-identical to an
        unsharded searcher.
        """
        merged = [match for bucket in gathered for match in bucket]
        merged.sort(key=SearchMatch.sort_key)
        if self._migration is not None:
            seen: set[int] = set()
            merged = [match for match in merged
                      if match.id not in seen and not seen.add(match.id)]
        return merged

    def search(self, query: str, tau: int | None = None) -> list[SearchMatch]:
        """Scatter a threshold search, merge under ``(distance, id)``."""
        tau = self.max_tau if tau is None else self.kernel.validate_tau(tau)
        if tau > self.max_tau:
            raise InvalidThresholdError(tau)
        targets = self._probe_targets(query, tau)
        if not targets:
            return []
        gathered = self._scatter(targets, "search", (query, tau))
        return self._merge(gathered)

    def explain(self, query: str, tau: int | None = None) -> dict:
        """Scatter a traced probe; merge the per-shard explain reports.

        Each probed shard runs :meth:`DynamicSearcher.explain
        <repro.service.dynamic.DynamicSearcher.explain>` and the reports
        are merged with :func:`~repro.obs.trace.merge_explain_reports`:
        funnel and per-length counters are summed, matches follow the same
        ``(distance, id)`` merge (with mid-migration id dedup) as
        :meth:`search`, and the raw per-shard reports are kept under
        ``"shards"``.  A query whose probe set is empty returns a zeroed
        report without touching any shard — mirroring the :meth:`search`
        fast path.
        """
        tau = self.max_tau if tau is None else self.kernel.validate_tau(tau)
        if tau > self.max_tau:
            raise InvalidThresholdError(tau)
        targets = self._probe_targets(query, tau)
        if not targets:
            return merge_explain_reports(query, tau, [])
        gathered = self._scatter(targets, "explain", (query, tau))
        return merge_explain_reports(query, tau, gathered)

    def search_many(self, queries: Sequence[str],
                    tau: int | Sequence[int | None] | None = None,
                    kernel: "str | Sequence[str | None] | None" = None,
                    ) -> list[list[SearchMatch]]:
        """Answer a batch of threshold searches in one scatter round.

        Each shard receives only the sub-batch of queries whose probe set
        includes it (a pure function of query length and threshold under
        the placement map), runs its own grouped
        :meth:`DynamicSearcher.search_many
        <repro.service.dynamic.DynamicSearcher.search_many>` pass, and the
        router merges the per-shard answers under the canonical
        ``(distance, id)`` ordering.  Results are element-identical to the
        unsharded batch (and therefore to per-query :meth:`search` calls);
        queries whose probe set is empty stay ``[]`` without scattering.
        ``kernel`` follows the rejection semantics of
        :func:`~repro.service.dynamic.check_batch_kernels`.
        """
        check_batch_kernels(self.kernel, kernel)
        taus = resolve_query_taus(queries, tau, self.max_tau)
        sub_batches: dict[int, list[tuple[int, str, int]]] = {}
        for position, (query, query_tau) in enumerate(zip(queries, taus)):
            for shard in self._probe_targets(query, query_tau):
                sub_batches.setdefault(shard, []).append(
                    (position, query, query_tau))
        per_query: list[list[SearchMatch]] = [[] for _ in queries]
        targets = sorted(sub_batches)
        if targets:
            gathered = self._scatter_each(
                targets, "search-many",
                [tuple((query, query_tau)
                       for _, query, query_tau in sub_batches[shard])
                 for shard in targets])
            for shard, bucket in zip(targets, gathered):
                for (position, _, _), matches in zip(sub_batches[shard],
                                                     bucket):
                    per_query[position].append(matches)
        return [self._merge(buckets) for buckets in per_query]

    def search_top_k(self, query: str, k: int,
                     max_tau: int | None = None) -> list[SearchMatch]:
        """Merge the per-shard top-k lists into the global top-k.

        Exact by a standard argument: if a match is among the global k
        closest, fewer than k matches beat it anywhere — so fewer than k
        beat it in its own shard, and it appears in that shard's local
        top-k.  The union of the local top-k lists therefore contains the
        global top-k, and the canonical ``(distance, id)`` sort makes the
        selection deterministic and identical to the unsharded searcher.
        (A dual-present record mid-migration contributes two identical
        copies; the merge dedupes them before the cut to ``k``.)
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        limit = self.max_tau if max_tau is None else min(
            self.kernel.validate_tau(max_tau), self.max_tau)
        targets = self._probe_targets(query, limit)
        if not targets:
            return []
        gathered = self._scatter(targets, "top-k", (query, k, limit))
        return self._merge(gathered)[:k]

    def search_top_k_many(self, queries: Sequence[str], k: int,
                          max_tau: int | None = None,
                          kernel: "str | Sequence[str | None] | None" = None,
                          ) -> list[list[SearchMatch]]:
        """Batch :meth:`search_top_k` in one scatter round.

        Each shard receives only the sub-batch of queries whose probe set
        (at the widening *limit*) includes it and widens its local batch in
        lockstep via :meth:`DynamicSearcher.search_top_k_many
        <repro.service.dynamic.DynamicSearcher.search_top_k_many>`; the
        router merges each query's per-shard local top-k lists and cuts to
        ``k`` — exact by the same union argument as :meth:`search_top_k`,
        and element-identical to sequential per-query top-k calls.
        Queries whose probe set is empty stay ``[]`` without scattering.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        check_batch_kernels(self.kernel, kernel)
        limit = self.max_tau if max_tau is None else min(
            self.kernel.validate_tau(max_tau), self.max_tau)
        sub_batches: dict[int, list[tuple[int, str]]] = {}
        for position, query in enumerate(queries):
            for shard in self._probe_targets(query, limit):
                sub_batches.setdefault(shard, []).append((position, query))
        per_query: list[list[Sequence[SearchMatch]]] = [[] for _ in queries]
        targets = sorted(sub_batches)
        if targets:
            gathered = self._scatter_each(
                targets, "top-k-many",
                [(tuple(query for _, query in sub_batches[shard]), k, limit)
                 for shard in targets])
            for shard, bucket in zip(targets, gathered):
                for (position, _), matches in zip(sub_batches[shard], bucket):
                    per_query[position].append(matches)
        return [self._merge(buckets)[:k] for buckets in per_query]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the shard workers (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            shard.close()
        for pool in self._replicas:
            for replica in pool:
                replica.worker.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ShardRouter(shards={self.num_shards}, "
                f"policy={self.policy.name!r}, backend={self.backend!r}, "
                f"live={len(self)}, max_tau={self.max_tau})")
