"""Sharded serving tier: partition the live collection across shard workers.

One :class:`~repro.service.dynamic.DynamicSearcher` runs every index pass on
a single thread, so a busy server saturates one core.  This module scales
the serving layer the classic way — partition the collection:

* A **shard policy** maps every record to exactly one of ``N`` shards.
  ``hash`` places by ``id % N`` (uniform load, every query scatters to all
  shards); ``length`` places by length band (records within ``max_tau`` of
  each other's length usually co-locate, so a query only touches the shards
  whose bands intersect ``[|q| − τ, |q| + τ]`` — and a mutation on one shard
  leaves queries that never probe it cacheable).
* Each shard owns a full private :class:`DynamicSearcher` over its records.
  Shards run either **in-process** (the ``thread`` backend — the calling
  thread drives each shard directly; the right choice for tests, 1-CPU
  boxes, and as the scatter-gather reference implementation) or as
  **fork-spawned worker processes** (the ``process`` backend) that receive
  their :class:`ShardContext` through fork-time copy-on-write memory — the
  same "hand the worker an explicit context, pickle nothing" pattern as
  :class:`repro.core.parallel.WorkerContext` — and serve ops over a pipe.
* :class:`ShardRouter` scatter-gathers ``search``/``search_top_k`` across
  the shards a query can touch and merges under the canonical
  ``(distance, id)`` ordering.  Because the shards partition the id space,
  the merge needs no deduplication and the result list is **element
  identical** to a single unsharded :class:`DynamicSearcher` over the same
  records (property-tested on random interleavings of insert/delete/search).
  Top-k merges the per-shard top-k lists: any global top-k member must be in
  its own shard's top-k, so the union provably covers the global answer.

Mutations route to the owning shard and bump only that shard's epoch.  The
router mirrors the per-shard epochs in :attr:`ShardRouter.epoch_vector`;
:meth:`ShardRouter.epoch_token` returns the slice of that vector a given
query key depends on, which the serving core folds into its cache key — a
mutation on one shard invalidates exactly the cached queries that probe it,
without dropping (or rebuilding) entries that only touch other shards.
"""

from __future__ import annotations

import multiprocessing
import threading
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..config import (SHARD_BACKENDS, SHARD_POLICIES, PartitionStrategy,
                      validate_threshold)
from ..core.parallel import available_workers
from ..exceptions import ConfigurationError, InvalidThresholdError, ServiceError
from ..search.searcher import SearchMatch, resolve_query_taus
from ..types import JoinStatistics, StringRecord, as_records
from .dynamic import DynamicSearcher, coerce_insert_record


def resolve_shard_backend(backend: str) -> str:
    """Resolve the ``shard_backend`` knob to ``"process"`` or ``"thread"``.

    ``process`` requires the ``fork`` start method (the shard contexts ride
    into the workers copy-on-write; with ``spawn`` they would be pickled).
    ``auto`` picks ``process`` only when fork exists, more than one CPU is
    available — on a 1-CPU box worker processes pay IPC and scheduling
    costs for pure time-slicing, so in-process shards are strictly better —
    and the calling process is single-threaded: forking with live threads
    (e.g. from a :class:`~repro.service.server.BackgroundServer` thread)
    can deadlock the child on locks the other threads held at fork time,
    which is why CPython deprecates it.  An explicit ``"process"`` is
    honoured regardless, for callers who know their threads hold no locks.
    """
    if backend not in SHARD_BACKENDS:
        raise ConfigurationError(
            f"shard_backend must be one of {SHARD_BACKENDS}, got {backend!r}")
    fork_available = "fork" in multiprocessing.get_all_start_methods()
    if backend == "process" and not fork_available:
        raise ConfigurationError(
            "shard_backend 'process' requires the fork start method, which "
            "this platform does not provide; use 'thread' or 'auto'")
    if backend != "auto":
        return backend
    return ("process" if fork_available and available_workers() > 1
            and threading.active_count() == 1 else "thread")


# ----------------------------------------------------------------------
# Placement policies
# ----------------------------------------------------------------------
class HashShardPolicy:
    """Uniform placement by record id; every query scatters to all shards."""

    name = "hash"

    def __init__(self, shards: int, max_tau: int) -> None:
        self.shards = shards

    def place(self, record_id: int, length: int) -> int:
        """Owning shard of a record (by id, lengths ignored)."""
        return record_id % self.shards

    def probe_shards(self, query_length: int, tau: int) -> tuple[int, ...]:
        """Shards a query of ``query_length`` at ``tau`` may find matches in."""
        return tuple(range(self.shards))


class LengthShardPolicy:
    """Length-band placement: co-locate strings of similar length.

    Records are grouped into bands of ``max_tau + 1`` consecutive lengths
    (the widest spread two strings within ``max_tau`` of each other can
    have), and bands are dealt round-robin across the shards.  A query at
    threshold ``tau`` only probes the shards whose bands intersect
    ``[|q| − τ, |q| + τ]`` — at most ``2`` bands for ``tau ≤ max_tau``, so
    usually 1–2 shards instead of all of them.
    """

    name = "length"

    def __init__(self, shards: int, max_tau: int) -> None:
        self.shards = shards
        self.band_width = max_tau + 1

    def place(self, record_id: int, length: int) -> int:
        """Owning shard of a record (by length band, ids ignored)."""
        return (length // self.band_width) % self.shards

    def probe_shards(self, query_length: int, tau: int) -> tuple[int, ...]:
        """Shards whose length bands intersect the query's length window."""
        first = max(0, query_length - tau) // self.band_width
        last = (query_length + tau) // self.band_width
        if last - first + 1 >= self.shards:
            return tuple(range(self.shards))
        return tuple(sorted({band % self.shards
                             for band in range(first, last + 1)}))


def make_shard_policy(name: str, shards: int,
                      max_tau: int) -> HashShardPolicy | LengthShardPolicy:
    """Instantiate the policy for ``name`` (``"hash"`` or ``"length"``)."""
    if name == "hash":
        return HashShardPolicy(shards, max_tau)
    if name == "length":
        return LengthShardPolicy(shards, max_tau)
    raise ConfigurationError(
        f"shard_policy must be one of {SHARD_POLICIES}, got {name!r}")


# ----------------------------------------------------------------------
# Shard workers
# ----------------------------------------------------------------------
@dataclass(slots=True)
class ShardContext:
    """Everything one shard worker needs to build its private index.

    The sharded analogue of :class:`repro.core.parallel.WorkerContext`: the
    router builds one context per shard and hands it to the worker — through
    fork-time copy-on-write memory for process shards (nothing is pickled),
    as a plain argument for in-process shards.
    """

    records: list[StringRecord]
    max_tau: int
    partition: PartitionStrategy
    compact_interval: int

    def build(self) -> DynamicSearcher:
        return DynamicSearcher(self.records, max_tau=self.max_tau,
                               partition=self.partition,
                               compact_interval=self.compact_interval)


def _apply_shard_op(searcher: DynamicSearcher, op: str, args: object) -> object:
    """Execute one router op against a shard's searcher (both backends)."""
    if op == "search":
        query, tau = args
        return searcher.search(query, tau)
    if op == "search-many":
        return searcher.search_many([query for query, _ in args],
                                    tau=[tau for _, tau in args])
    if op == "top-k":
        query, k, limit = args
        return searcher.search_top_k(query, k, limit)
    if op == "insert":
        return searcher.insert(args)
    if op == "delete":
        return searcher.delete(args)
    if op == "compact":
        return searcher.compact()
    if op == "records":
        return searcher.records
    if op == "status":
        return {"size": len(searcher),
                "tombstones": searcher.tombstone_count,
                "statistics": searcher.statistics,
                "memory": searcher.index_memory()}
    raise ServiceError(f"unknown shard op {op!r}")


class _InProcessShard:
    """Thread-backend shard: the calling thread drives the searcher directly.

    ``send``/``recv`` mimic the pipe protocol of :class:`_ProcessShard` so
    the router's scatter-gather code is backend-agnostic; errors are carried
    to ``recv`` exactly like a pipe reply would carry them.
    """

    backend = "thread"

    def __init__(self, context: ShardContext) -> None:
        self._searcher = context.build()
        self._reply: tuple[str, object, int] | None = None

    def send(self, op: str, args: object) -> None:
        try:
            result = _apply_shard_op(self._searcher, op, args)
        except Exception as error:  # noqa: BLE001 - re-raised by recv()
            self._reply = ("error", error, self._searcher.epoch)
        else:
            self._reply = ("ok", result, self._searcher.epoch)

    def recv(self) -> tuple[object, int]:
        assert self._reply is not None, "recv() before send()"
        status, payload, epoch = self._reply
        self._reply = None
        if status == "error":
            raise payload  # type: ignore[misc]
        return payload, epoch

    def close(self) -> None:
        pass


def _shard_worker_main(conn, context: ShardContext) -> None:
    """Process-backend worker loop: build the shard index, serve ops.

    Every reply carries the shard's current epoch so the router's mirror
    stays exact even when a delete triggers an automatic compaction inside
    the worker (which moves the epoch twice in one op).
    """
    searcher = context.build()
    try:
        while True:
            try:
                op, args = conn.recv()
            except (EOFError, OSError):
                break
            if op == "close":
                break
            try:
                result = _apply_shard_op(searcher, op, args)
            except Exception as error:  # noqa: BLE001 - forwarded to router
                try:
                    conn.send(("error", error, searcher.epoch))
                except Exception:  # unpicklable exception object
                    conn.send(("error", ServiceError(repr(error)),
                               searcher.epoch))
            else:
                conn.send(("ok", result, searcher.epoch))
    finally:
        conn.close()


class _ProcessShard:
    """Process-backend shard: a fork-spawned worker serving ops over a pipe."""

    backend = "process"

    def __init__(self, context: ShardContext, mp_context) -> None:
        self._conn, child_conn = mp_context.Pipe()
        self._process = mp_context.Process(
            target=_shard_worker_main, args=(child_conn, context), daemon=True)
        self._process.start()
        child_conn.close()

    def send(self, op: str, args: object) -> None:
        try:
            self._conn.send((op, args))
        except (BrokenPipeError, OSError) as error:
            raise ServiceError(f"shard worker died: {error}") from error

    def recv(self) -> tuple[object, int]:
        try:
            status, payload, epoch = self._conn.recv()
        except (EOFError, OSError) as error:
            raise ServiceError(f"shard worker died: {error}") from error
        if status == "error":
            raise payload  # type: ignore[misc]
        return payload, epoch

    def close(self) -> None:
        try:
            self._conn.send(("close", None))
        except (BrokenPipeError, OSError):
            pass
        self._conn.close()
        self._process.join(timeout=5)
        if self._process.is_alive():  # pragma: no cover - stuck worker
            self._process.terminate()
            self._process.join(timeout=5)


# ----------------------------------------------------------------------
# Router
# ----------------------------------------------------------------------
class ShardRouter:
    """Scatter-gather facade over ``N`` shard workers.

    Duck-types the :class:`DynamicSearcher` surface the serving core uses
    (``search``/``search_top_k``/``insert``/``delete``/``compact``/
    ``epoch``/``statistics``/``len``), so :class:`SimilarityService` serves
    a sharded collection through the exact same dispatch code.  Results are
    element-identical to a single unsharded searcher over the same records.

    Record ids must be unique across the initial collection (auto-numbered
    plain strings always are); a duplicate raises ``ValueError``, since two
    live records sharing an id could land on different shards and break the
    no-deduplication merge.

    Parameters
    ----------
    strings:
        Initial collection, partitioned across the shards by ``policy``.
    shards:
        Number of shard workers (>= 1; 1 is a degenerate single shard).
    max_tau:
        Largest per-query threshold, forwarded to every shard index.
    policy:
        ``"hash"`` (uniform, scatter-all) or ``"length"`` (length bands,
        queries touch only intersecting shards).
    backend:
        ``"thread"`` (in-process), ``"process"`` (fork workers), or
        ``"auto"`` (process on multi-core fork platforms, thread elsewhere).

    Examples
    --------
    >>> router = ShardRouter(["vldb", "pvldb", "icde"], shards=2, max_tau=1,
    ...                      backend="thread")
    >>> [m.text for m in router.search("vldb", tau=1)]
    ['vldb', 'pvldb']
    >>> router.close()
    """

    def __init__(self, strings: Iterable[str | StringRecord] = (), *,
                 shards: int, max_tau: int,
                 partition: PartitionStrategy = PartitionStrategy.EVEN,
                 compact_interval: int = 64, policy: str = "hash",
                 backend: str = "auto") -> None:
        if isinstance(shards, bool) or not isinstance(shards, int) or shards < 1:
            raise ConfigurationError(
                f"shards must be a positive integer, got {shards!r}")
        self.max_tau = validate_threshold(max_tau)
        self.num_shards = shards
        self.policy = make_shard_policy(policy, shards, self.max_tau)
        self.backend = resolve_shard_backend(backend)

        per_shard: list[list[StringRecord]] = [[] for _ in range(shards)]
        self._shard_of: dict[int, int] = {}  # live record id -> shard index
        self._next_id = 0
        for record in as_records(strings):
            if record.id in self._shard_of:
                raise ValueError(
                    f"duplicate id {record.id} in the initial collection: "
                    f"sharded results are only exact over unique ids")
            shard = self.policy.place(record.id, record.length)
            per_shard[shard].append(record)
            self._shard_of[record.id] = shard
            self._next_id = max(self._next_id, record.id + 1)

        contexts = [ShardContext(records=bucket, max_tau=self.max_tau,
                                 partition=partition,
                                 compact_interval=compact_interval)
                    for bucket in per_shard]
        if self.backend == "process":
            mp_context = multiprocessing.get_context("fork")
            self._shards: list = [_ProcessShard(context, mp_context)
                                  for context in contexts]
        else:
            self._shards = [_InProcessShard(context) for context in contexts]
        self._epochs = [0] * shards
        self._closed = False

    # ------------------------------------------------------------------
    # Scatter-gather plumbing
    # ------------------------------------------------------------------
    def _scatter(self, targets: Sequence[int], op: str,
                 args: object) -> list:
        """Send one op (same args) to every target shard; collect replies."""
        return self._scatter_each(targets, op, [args] * len(targets))

    def _scatter_each(self, targets: Sequence[int], op: str,
                      args_list: Sequence[object]) -> list:
        """Send one op with per-shard args, then collect every reply.

        ``args_list`` is aligned with ``targets`` (the batch executor
        sends each shard only the sub-batch of queries that probe it).
        Both phases run to completion before any error is re-raised: a
        failed send (dead worker) must not stop the reply of an
        already-sent shard from being drained — a process shard's pipe
        must never hold an unread reply, or the next op on that shard
        would silently read this op's stale answer.  Process shards
        overlap their work across the scatter; in-process shards execute
        inline at ``send`` time.
        """
        first_error: Exception | None = None
        sent: set[int] = set()
        for shard, args in zip(targets, args_list):
            try:
                self._shards[shard].send(op, args)
            except Exception as error:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = error
            else:
                sent.add(shard)
        payloads: list = []
        for shard in targets:
            if shard not in sent:
                payloads.append(None)
                continue
            try:
                payload, epoch = self._shards[shard].recv()
            except Exception as error:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = error
                payloads.append(None)
            else:
                self._epochs[shard] = epoch
                payloads.append(payload)
        if first_error is not None:
            raise first_error
        return payloads

    def _call(self, shard: int, op: str, args: object) -> object:
        return self._scatter((shard,), op, args)[0]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._shard_of)

    @property
    def epoch(self) -> int:
        """Scalar mutation counter: the sum of the per-shard epochs.

        Monotone (each shard epoch only grows) and moved by every mutation,
        so it serves the wire protocol's ``epoch`` field; cache keys use the
        finer-grained :meth:`epoch_token` instead.
        """
        return sum(self._epochs)

    @property
    def epoch_vector(self) -> tuple[int, ...]:
        """Per-shard mutation counters, in shard order."""
        return tuple(self._epochs)

    def epoch_token(self, key: tuple) -> tuple[int, ...]:
        """Epochs of the shards a query key depends on (the cache key part).

        ``key`` is a serving-core query key — ``("search", query, tau)`` or
        ``("top-k", query, k, limit)``.  The shard set is a pure function of
        the query and threshold, so the token needs only the epochs, in
        shard order: a mutation on any probed shard changes the token (and
        thereby misses the cache), while mutations on unrelated shards leave
        it — and every cached answer that only probes other shards — intact.
        """
        tau = key[2] if key[0] == "search" else key[3]
        targets = self.policy.probe_shards(len(key[1]), tau)
        return tuple(self._epochs[shard] for shard in targets)

    @property
    def tombstone_count(self) -> int:
        """Deleted records still physically present across all shards."""
        return self.status_summary()["tombstones"]

    @property
    def records(self) -> list[StringRecord]:
        """The live records across all shards, ordered by id (a snapshot)."""
        gathered = self._scatter(range(self.num_shards), "records", None)
        merged = [record for bucket in gathered for record in bucket]
        return sorted(merged, key=lambda record: record.id)

    @property
    def statistics(self) -> JoinStatistics:
        """Aggregated per-shard :class:`JoinStatistics` (computed on demand)."""
        return self.status_summary()["statistics"]

    def shard_status(self) -> list[dict]:
        """Per-shard ``{"size", "tombstones", "statistics"}`` snapshots."""
        return self._scatter(range(self.num_shards), "status", None)

    def status_summary(self) -> dict:
        """Fleet-wide tombstones, merged statistics, and memory in one scatter.

        The single aggregation point over :meth:`shard_status` — callers
        needing several of these values (the service ``stats`` op) pay one
        round of shard IPC instead of one per property.  ``memory`` sums
        the per-shard columnar-index figures; ``shard_memory`` keeps the
        per-shard breakdown for the sharded ``stats`` payload.
        """
        tombstones = 0
        merged = JoinStatistics()
        memory: dict[str, int] = {}
        shard_memory: list[dict[str, int]] = []
        for status in self.shard_status():
            tombstones += status["tombstones"]
            merged = merged.merge(status["statistics"])
            shard_memory.append(status["memory"])
            for field, value in status["memory"].items():
                memory[field] = memory.get(field, 0) + value
        return {"tombstones": tombstones, "statistics": merged,
                "memory": memory, "shard_memory": shard_memory}

    def index_memory(self) -> dict[str, int]:
        """Summed per-shard columnar-index memory figures (one scatter)."""
        return self.status_summary()["memory"]

    def shard_sizes(self) -> list[int]:
        """Number of live records per shard (placement balance check)."""
        sizes = [0] * self.num_shards
        for shard in self._shard_of.values():
            sizes[shard] += 1
        return sizes

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, text: str | StringRecord, *, id: int | None = None) -> int:
        """Add one string to its owning shard; return its id.

        Same id semantics as :meth:`DynamicSearcher.insert`: auto-assigned
        one above the largest ever seen unless given, inserting a live id
        raises ``ValueError``, re-using a tombstoned id is allowed.
        """
        record = coerce_insert_record(text, id, self._next_id)
        if record.id in self._shard_of:
            raise ValueError(f"id {record.id} is already in the collection")
        shard = self.policy.place(record.id, record.length)
        self._call(shard, "insert", record)
        self._shard_of[record.id] = shard
        self._next_id = max(self._next_id, record.id + 1)
        return record.id

    def delete(self, record_id: int) -> bool:
        """Tombstone one record on its owning shard; False when not live."""
        shard = self._shard_of.get(record_id)
        if shard is None:
            return False
        deleted = self._call(shard, "delete", record_id)
        if deleted:
            del self._shard_of[record_id]
        return bool(deleted)

    def compact(self) -> int:
        """Compact every shard; return the total number of purged postings."""
        return sum(self._scatter(range(self.num_shards), "compact", None))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def search(self, query: str, tau: int | None = None) -> list[SearchMatch]:
        """Scatter a threshold search, merge under ``(distance, id)``.

        The shards partition the id space, so concatenating the per-shard
        result lists loses nothing and duplicates nothing; the merged list
        is element-identical to an unsharded :class:`DynamicSearcher`.
        """
        tau = self.max_tau if tau is None else validate_threshold(tau)
        if tau > self.max_tau:
            raise InvalidThresholdError(tau)
        targets = self.policy.probe_shards(len(query), tau)
        gathered = self._scatter(targets, "search", (query, tau))
        merged = [match for bucket in gathered for match in bucket]
        merged.sort(key=SearchMatch.sort_key)
        return merged

    def search_many(self, queries: Sequence[str],
                    tau: int | Sequence[int | None] | None = None,
                    ) -> list[list[SearchMatch]]:
        """Answer a batch of threshold searches in one scatter round.

        Each shard receives only the sub-batch of queries whose probe set
        includes it (a pure function of query length and threshold under
        the placement policy), runs its own grouped
        :meth:`DynamicSearcher.search_many
        <repro.service.dynamic.DynamicSearcher.search_many>` pass, and the
        router merges the per-shard answers under the canonical
        ``(distance, id)`` ordering.  Results are element-identical to the
        unsharded batch (and therefore to per-query :meth:`search` calls).
        """
        taus = resolve_query_taus(queries, tau, self.max_tau)
        sub_batches: dict[int, list[tuple[int, str, int]]] = {}
        for position, (query, query_tau) in enumerate(zip(queries, taus)):
            for shard in self.policy.probe_shards(len(query), query_tau):
                sub_batches.setdefault(shard, []).append(
                    (position, query, query_tau))
        merged: list[list[SearchMatch]] = [[] for _ in queries]
        targets = sorted(sub_batches)
        if targets:
            gathered = self._scatter_each(
                targets, "search-many",
                [tuple((query, query_tau)
                       for _, query, query_tau in sub_batches[shard])
                 for shard in targets])
            for shard, bucket in zip(targets, gathered):
                for (position, _, _), matches in zip(sub_batches[shard],
                                                     bucket):
                    merged[position].extend(matches)
        for matches in merged:
            matches.sort(key=SearchMatch.sort_key)
        return merged

    def search_top_k(self, query: str, k: int,
                     max_tau: int | None = None) -> list[SearchMatch]:
        """Merge the per-shard top-k lists into the global top-k.

        Exact by a standard argument: if a match is among the global k
        closest, fewer than k matches beat it anywhere — so fewer than k
        beat it in its own shard, and it appears in that shard's local
        top-k.  The union of the local top-k lists therefore contains the
        global top-k, and the canonical ``(distance, id)`` sort makes the
        selection deterministic and identical to the unsharded searcher.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        limit = self.max_tau if max_tau is None else min(
            validate_threshold(max_tau), self.max_tau)
        targets = self.policy.probe_shards(len(query), limit)
        gathered = self._scatter(targets, "top-k", (query, k, limit))
        merged = [match for bucket in gathered for match in bucket]
        merged.sort(key=SearchMatch.sort_key)
        return merged[:k]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the shard workers (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            shard.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ShardRouter(shards={self.num_shards}, "
                f"policy={self.policy.name!r}, backend={self.backend!r}, "
                f"live={len(self)}, max_tau={self.max_tau})")
