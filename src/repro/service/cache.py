"""LRU query-result cache keyed on the query and invalidated by epoch.

Online similarity traffic is heavily repetitive — the same popular lookups
arrive over and over — while the collection mutates comparatively rarely.
:class:`QueryCache` exploits that asymmetry: results are cached under an
arbitrary hashable key (the service uses ``("search", query, tau)`` and
``("top-k", query, k, limit)``) and the whole cache is dropped the moment
the caller presents a different **epoch** (the mutation counter of
:class:`~repro.service.dynamic.DynamicSearcher`).  Whole-cache invalidation
is deliberate: a single insert can change the answer of *any* query, so
per-entry invalidation would need the inverse of the similarity predicate —
exactly the problem the index solves — and a stale answer is never worth
that complexity in an exact system.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Sequence

from ..search.searcher import SearchMatch


@dataclass(slots=True)
class CacheStats:
    """Hit/miss accounting for one :class:`QueryCache`.

    ``coalesced`` counts queries answered by sharing another query's
    execution in the same batch (duplicate keys deduplicated by the
    serving core) — they are neither hits nor misses, because the cache
    was never consulted for them.  Counting them as misses would deflate
    the hit rate even though only one index pass ran; keeping them out of
    both sides keeps ``hit_rate`` a property of the cache alone.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    coalesced: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when the cache has never been consulted)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict[str, int | float]:
        """Counters plus the derived ``hit_rate`` (the only float value)."""
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "coalesced": self.coalesced,
                "hit_rate": round(self.hit_rate, 4)}


class QueryCache:
    """Bounded LRU cache of query results with epoch-based invalidation.

    Parameters
    ----------
    capacity:
        Maximum number of cached results; ``0`` disables the cache (every
        :meth:`get` misses, every :meth:`put` is a no-op), which is how the
        throughput benchmark measures the uncached baseline.

    Examples
    --------
    >>> cache = QueryCache(capacity=2)
    >>> cache.put(("search", "vldb", 1), epoch=0, matches=[])
    >>> cache.get(("search", "vldb", 1), epoch=0)
    []
    >>> cache.get(("search", "vldb", 1), epoch=1) is None  # mutation
    True
    """

    def __init__(self, capacity: int = 1024) -> None:
        if isinstance(capacity, bool) or not isinstance(capacity, int) or capacity < 0:
            raise ValueError(f"capacity must be a non-negative integer, "
                             f"got {capacity!r}")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: OrderedDict[Hashable, list[SearchMatch]] = OrderedDict()
        self._epoch: int | None = None

    def __len__(self) -> int:
        return len(self._entries)

    def _check_epoch(self, epoch: int) -> None:
        if self._epoch != epoch:
            if self._entries:
                self.stats.invalidations += 1
                self._entries.clear()
            self._epoch = epoch

    def get(self, key: Hashable, epoch: int) -> list[SearchMatch] | None:
        """Return the cached result for ``key`` at ``epoch``, or ``None``.

        A changed epoch clears the cache before the lookup, so a hit is
        always consistent with the current collection.  Hits are moved to
        the most-recently-used position.
        """
        self._check_epoch(epoch)
        cached = self._entries.get(key)
        if cached is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return list(cached)

    def put(self, key: Hashable, epoch: int,
            matches: Sequence[SearchMatch]) -> None:
        """Store ``matches`` under ``key``, evicting the LRU entry if full."""
        if self.capacity == 0:
            return
        self._check_epoch(epoch)
        self._entries[key] = list(matches)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def note_coalesced(self, count: int = 1) -> None:
        """Record queries answered by sharing a duplicate's execution.

        Deliberately independent of :attr:`capacity`: coalescing is a
        property of the batch executor, so it is counted even when the
        cache itself is disabled.
        """
        self.stats.coalesced += count

    def clear(self) -> None:
        """Drop every entry (counts as an invalidation when non-empty)."""
        if self._entries:
            self.stats.invalidations += 1
        self._entries.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"QueryCache(size={len(self._entries)}, "
                f"capacity={self.capacity}, epoch={self._epoch})")
