"""Placement maps: which shard owns a record, which shards a query probes.

Before this module the placement logic lived as two ad-hoc policy classes
inside :mod:`repro.service.sharding`; pulling it out into a first-class
:class:`PlacementMap` abstraction is what makes the shard fleet *elastic*.
A placement map answers three questions, and nothing else:

* :meth:`~PlacementMap.place` — the shard that owns a record, a pure
  function of ``(record_id, length)``.
* :meth:`~PlacementMap.probe_shards` — the shards a query of a given
  length/threshold could find matches in (a superset of ``place`` over
  every length in ``[|q| − τ, |q| + τ]`` — the soundness contract the
  test suite checks for every map).
* :meth:`~PlacementMap.resized` — the *same kind* of map over a different
  fleet size.  Live resharding diffs the old and new maps record by record
  to build its migration plan, so the quality of a map is measured by how
  few records change owner on a resize.

Three maps implement the contract:

``hash``
    A consistent-hashing ring (:class:`ConsistentHashPlacementMap`): every
    shard owns :data:`VNODES` pseudo-random points on a 64-bit ring and a
    record belongs to the shard owning the first point at or after
    ``mix64(id)``.  Growing the fleet from ``N`` to ``N + 1`` shards only
    reassigns the records that fall into the new shard's arcs — an
    expected ``1/(N+1)`` of the collection, against the ``N/(N+1)`` a
    modulo map would move.  Queries scatter to every shard.
``length``
    Splittable length bands (:class:`LengthBandPlacementMap`): records are
    grouped into bands of ``max_tau + 1`` consecutive lengths (the widest
    spread two strings within ``max_tau`` can have) and bands are dealt
    round-robin.  A query only probes the shards whose bands intersect its
    length window, so small-τ queries touch 1–2 shards instead of all.  On
    a resize the bands are re-dealt over the new fleet — band membership
    never changes, only which shard serves a band.
``modulo``
    The legacy ``id % N`` map (:class:`ModuloPlacementMap`), kept for
    comparison and for workloads with dense, caller-controlled ids.  A
    resize reassigns almost every record — the benchmark's cautionary
    baseline.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Sequence

from ..config import SHARD_POLICIES
from ..exceptions import ConfigurationError

#: Virtual ring points per shard for the ``hash`` map.  More points smooth
#: the per-shard load (relative imbalance ~ 1/sqrt(VNODES)) at the cost of
#: a larger ring; 64 keeps placement O(log(64·N)) and imbalance under ~15%.
VNODES = 64

_MASK64 = (1 << 64) - 1


def mix64(value: int) -> int:
    """SplitMix64 finaliser: scramble an integer into a 64-bit ring point.

    Python's builtin ``hash`` is identity on small ints (and salted on
    strings), so record ids — typically dense and sequential — need an
    explicit mixer to spread uniformly over the ring.  Deterministic
    across processes, which the fork-spawned shard workers rely on.
    """
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


class PlacementMap:
    """Base class: a pure mapping from records (and queries) to shards."""

    name: str = ""

    def __init__(self, shards: int, max_tau: int) -> None:
        if isinstance(shards, bool) or not isinstance(shards, int) or shards < 1:
            raise ConfigurationError(
                f"shards must be a positive integer, got {shards!r}")
        self.num_shards = shards
        self.max_tau = max_tau

    def place(self, record_id: int, length: int) -> int:
        """Owning shard of a record (pure in ``record_id`` and ``length``).

        ``length`` is the record's *partition key* under the served
        similarity kernel — the character length for edit distance, the
        token-set size for token-jaccard (the parameter keeps its
        historical name; any non-negative integer key works).
        """
        raise NotImplementedError

    def probe_key_span(self, lo: int, hi: int) -> tuple[int, ...]:
        """Shards holding records whose partition key lies in ``[lo, hi]``.

        The kernel computes the inclusive key window a query can match
        (:meth:`SimilarityKernel.probe_key_range
        <repro.core.kernel.SimilarityKernel.probe_key_range>`); the map
        answers which shards own any key in it — a superset of
        :meth:`place` over every key in the window (the soundness
        contract the test suite checks for every map).
        """
        raise NotImplementedError

    def probe_shards(self, query_length: int, tau: int) -> tuple[int, ...]:
        """Shards a query of ``query_length`` at ``tau`` may find matches in.

        Edit-distance convenience wrapper over :meth:`probe_key_span`
        (the key window of an ED probe is ``[|q| − τ, |q| + τ]``).
        """
        return self.probe_key_span(max(0, query_length - tau),
                                   query_length + tau)

    def resized(self, shards: int) -> "PlacementMap":
        """The same kind of map over a fleet of ``shards`` workers."""
        return type(self)(shards, self.max_tau)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{type(self).__name__}(shards={self.num_shards}, "
                f"max_tau={self.max_tau})")


class ConsistentHashPlacementMap(PlacementMap):
    """Consistent-hashing ring: a resize moves ~1/N of the records.

    Each shard owns :data:`VNODES` points on a 64-bit ring (the mixed hash
    of ``(shard, replica)``); a record belongs to the shard owning the
    first point at or after ``mix64(id)``, wrapping past the top.  Because
    resizing only adds or removes one shard's points, ownership changes
    are confined to the arcs adjacent to those points — the property the
    resharding migration plan (and its ``≤ ~2/N`` rows-moved acceptance
    test) is built on.  Lengths are ignored, so every query scatters to
    all shards.
    """

    name = "hash"

    def __init__(self, shards: int, max_tau: int) -> None:
        super().__init__(shards, max_tau)
        # Domain separation: ring-point inputs are odd, record-key inputs
        # even (mix64 is a bijection, so the two families can never
        # collide).  Without it, a record whose id equals a point's raw
        # input would sit exactly on that point and the dense sequential
        # ids real collections use would all pile onto shard 0.
        ring = [(mix64(((shard * VNODES + replica) << 1) | 1), shard)
                for shard in range(shards) for replica in range(VNODES)]
        ring.sort()
        self._points = [point for point, _ in ring]
        self._owners = [shard for _, shard in ring]

    def place(self, record_id: int, length: int) -> int:
        position = bisect_left(self._points, mix64(record_id << 1))
        if position == len(self._points):  # wrap past the top of the ring
            position = 0
        return self._owners[position]

    def probe_key_span(self, lo: int, hi: int) -> tuple[int, ...]:
        return tuple(range(self.num_shards))


class LengthBandPlacementMap(PlacementMap):
    """Length-band placement: co-locate strings of similar length.

    Records are grouped into bands of ``max_tau + 1`` consecutive lengths
    and bands are dealt round-robin across the shards.  A query at
    threshold ``tau`` only probes the shards whose bands intersect
    ``[|q| − τ, |q| + τ]`` — at most 2 bands for ``tau ≤ max_tau``, so
    usually 1–2 shards instead of all of them.  Bands are the splittable/
    mergeable unit of elasticity: a resize re-deals the bands over the new
    fleet (band membership of a record never changes), so the migration
    plan moves whole bands between shards.
    """

    name = "length"

    def __init__(self, shards: int, max_tau: int) -> None:
        super().__init__(shards, max_tau)
        self.band_width = max_tau + 1

    def place(self, record_id: int, length: int) -> int:
        return (length // self.band_width) % self.num_shards

    def probe_key_span(self, lo: int, hi: int) -> tuple[int, ...]:
        first = max(0, lo) // self.band_width
        last = max(0, hi) // self.band_width
        if last - first + 1 >= self.num_shards:
            return tuple(range(self.num_shards))
        return tuple(sorted({band % self.num_shards
                             for band in range(first, last + 1)}))


class ModuloPlacementMap(PlacementMap):
    """The legacy ``id % N`` map: uniform, but a resize moves ~everything.

    Kept as an explicit policy (``"modulo"``) for workloads with dense
    caller-controlled ids and as the baseline the consistent-hash ring is
    measured against: changing ``N`` reassigns an expected ``N/(N+1)`` of
    the records, so elastic fleets should prefer ``"hash"``.
    """

    name = "modulo"

    def place(self, record_id: int, length: int) -> int:
        return record_id % self.num_shards

    def probe_key_span(self, lo: int, hi: int) -> tuple[int, ...]:
        return tuple(range(self.num_shards))


_PLACEMENT_MAPS: dict[str, type[PlacementMap]] = {
    ConsistentHashPlacementMap.name: ConsistentHashPlacementMap,
    LengthBandPlacementMap.name: LengthBandPlacementMap,
    ModuloPlacementMap.name: ModuloPlacementMap,
}

assert set(_PLACEMENT_MAPS) == set(SHARD_POLICIES), \
    "placement maps and config.SHARD_POLICIES drifted apart"


def make_placement_map(name: str, shards: int, max_tau: int) -> PlacementMap:
    """Instantiate the placement map registered under ``name``."""
    try:
        map_type = _PLACEMENT_MAPS[name]
    except KeyError:
        raise ConfigurationError(
            f"shard_policy must be one of {SHARD_POLICIES}, "
            f"got {name!r}") from None
    return map_type(shards, max_tau)


class ReplicaReadSchedule:
    """Round-robin rotation over a shard's eligible read endpoints.

    The placement map decides *which shards* a query probes; with read
    replicas each probed shard additionally has several physical endpoints
    able to serve the read — the primary plus every replica whose applied
    epoch matches the router's epoch mirror (the freshness token; a stale
    replica is never eligible).  This schedule spreads consecutive reads
    across those endpoints with a per-shard cursor, so a shard's replicas
    share its read load evenly instead of the first fresh one taking all
    of it.

    The eligible set is recomputed by the router per read (freshness and
    liveness change under mutations and faults); the schedule only owns
    the rotation state, which is why it lives with the other placement
    decisions rather than inside the router's scatter-gather plumbing.
    """

    def __init__(self) -> None:
        self._cursors: dict[int, int] = {}

    def choose(self, shard: int, candidates: Sequence[int]) -> int | None:
        """Pick one of ``candidates`` (replica indices), rotating per shard.

        Returns ``None`` when ``candidates`` is empty — the router falls
        back to the shard primary.  The cursor advances on every call,
        even across changing candidate sets, so a replica returning to
        freshness re-enters the rotation immediately.
        """
        if not candidates:
            return None
        cursor = self._cursors.get(shard, 0)
        self._cursors[shard] = cursor + 1
        return candidates[cursor % len(candidates)]

    def reset(self, shard: int | None = None) -> None:
        """Drop the rotation state of ``shard`` (or of every shard)."""
        if shard is None:
            self._cursors.clear()
        else:
            self._cursors.pop(shard, None)
