"""Bounded-memory similarity self-join over length-sorted partitions.

The key observation is the length filter: strings whose lengths differ by
more than ``τ`` can never be similar.  Sorting the input by length and
cutting it into consecutive partitions therefore localises all results to
(a) pairs inside one partition and (b) pairs between two partitions whose
length ranges overlap within ``τ`` — which, for reasonably sized partitions,
means only a handful of neighbouring partitions each.

The driver keeps one "left" partition in memory at a time, self-joins it,
then R–S-joins it against each later partition that is still within the
length window.  Peak memory is two partitions plus one segment index,
independent of the total input size.  Because every partition pair is an
independent job, the same plan parallelises trivially; ``processes > 1``
runs the partition jobs in a ``multiprocessing`` pool.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Iterable, Iterator, Sequence

from ..config import JoinConfig, validate_threshold
from ..core.join import PassJoin
from ..exceptions import PassJoinError
from ..types import (JoinResult, JoinStatistics, SimilarPair, StringRecord,
                     as_records)


def _length_partitions(records: Sequence[StringRecord],
                       partition_size: int) -> list[list[StringRecord]]:
    """Cut length-sorted records into consecutive partitions."""
    ordered = sorted(records, key=lambda record: (record.length, record.text))
    return [list(ordered[start:start + partition_size])
            for start in range(0, len(ordered), partition_size)]


def _self_join_job(args: tuple[Sequence[StringRecord], int, JoinConfig | None]
                   ) -> list[SimilarPair]:
    records, tau, config = args
    return PassJoin(tau, config).self_join(records).pairs


def _cross_join_job(args: tuple[Sequence[StringRecord], Sequence[StringRecord],
                                int, JoinConfig | None]) -> list[SimilarPair]:
    left, right, tau, config = args
    pairs = PassJoin(tau, config).join(left, right).pairs
    # Record ids are global, so normalise the orientation like the self join.
    return [SimilarPair(left_id=min(pair.left_id, pair.right_id),
                        right_id=max(pair.left_id, pair.right_id),
                        distance=pair.distance,
                        left=pair.left if pair.left_id < pair.right_id else pair.right,
                        right=pair.right if pair.left_id < pair.right_id else pair.left)
            for pair in pairs]


class PartitionedSelfJoin:
    """Self join whose memory footprint is bounded by the partition size.

    Parameters
    ----------
    tau:
        Edit-distance threshold.
    partition_size:
        Maximum number of strings held in one partition (two partitions are
        resident during cross joins).
    config:
        Optional :class:`~repro.config.JoinConfig` forwarded to every
        partition job.
    processes:
        Number of worker processes.  ``1`` (default) runs in-process;
        larger values distribute partition jobs over a multiprocessing pool.
    """

    def __init__(self, tau: int, partition_size: int = 10000,
                 config: JoinConfig | None = None, processes: int = 1) -> None:
        self.tau = validate_threshold(tau)
        if partition_size <= 0:
            raise PassJoinError(
                f"partition_size must be positive, got {partition_size}")
        if processes <= 0:
            raise PassJoinError(f"processes must be positive, got {processes}")
        self.partition_size = partition_size
        self.config = config
        self.processes = processes

    # ------------------------------------------------------------------
    def plan(self, records: Sequence[StringRecord]) -> list[tuple[int, int]]:
        """Return the (i, j) partition jobs the join would run (i == j: self).

        Mostly useful for tests and for sizing a parallel run; partitions are
        numbered in length order.
        """
        partitions = _length_partitions(records, self.partition_size)
        jobs: list[tuple[int, int]] = []
        for i, left in enumerate(partitions):
            if not left:
                continue
            jobs.append((i, i))
            left_max = left[-1].length
            for j in range(i + 1, len(partitions)):
                right = partitions[j]
                if not right:
                    continue
                if right[0].length - left_max > self.tau:
                    break
                jobs.append((i, j))
        return jobs

    # ------------------------------------------------------------------
    def iter_pairs(self, strings: Iterable[str | StringRecord]) -> Iterator[SimilarPair]:
        """Yield similar pairs partition by partition (bounded memory)."""
        records = as_records(strings)
        partitions = _length_partitions(records, self.partition_size)
        jobs = self.plan(records)
        job_args = []
        for i, j in jobs:
            if i == j:
                job_args.append(("self", (partitions[i], self.tau, self.config)))
            else:
                job_args.append(("cross", (partitions[i], partitions[j],
                                           self.tau, self.config)))

        if self.processes == 1:
            for kind, args in job_args:
                worker = _self_join_job if kind == "self" else _cross_join_job
                yield from worker(args)
            return

        with multiprocessing.Pool(self.processes) as pool:
            self_jobs = [args for kind, args in job_args if kind == "self"]
            cross_jobs = [args for kind, args in job_args if kind == "cross"]
            for pairs in pool.imap_unordered(_self_join_job, self_jobs):
                yield from pairs
            for pairs in pool.imap_unordered(_cross_join_job, cross_jobs):
                yield from pairs

    def join(self, strings: Iterable[str | StringRecord]) -> JoinResult:
        """Run the partitioned join and collect the results."""
        started = time.perf_counter()
        records = as_records(strings)
        pairs = list(self.iter_pairs(records))
        stats = JoinStatistics(num_strings=len(records), num_results=len(pairs),
                               total_seconds=time.perf_counter() - started)
        return JoinResult(pairs=pairs, statistics=stats)


def partitioned_self_join(strings: Iterable[str | StringRecord], tau: int,
                          partition_size: int = 10000,
                          processes: int = 1) -> JoinResult:
    """Convenience wrapper around :class:`PartitionedSelfJoin`."""
    return PartitionedSelfJoin(tau, partition_size,
                               processes=processes).join(strings)
