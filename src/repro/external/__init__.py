"""Out-of-core (partitioned) similarity joins.

The paper focuses on the case where the segment index fits in memory and
leaves "dealing with a very large dataset" as future work (Section 3.2).
This package provides that extension: the input is split into length-sorted
partitions of bounded size, each partition is self-joined, and partition
pairs whose length ranges are within ``τ`` of each other are joined with the
R–S join — so at most two partitions are resident at any time, and results
stream out as they are found.

* :class:`PartitionedSelfJoin` — bounded-memory self join over an iterable
  or a file of strings.
* :func:`partitioned_self_join` — convenience wrapper returning a
  :class:`~repro.types.JoinResult`.
"""

from .partitioned import PartitionedSelfJoin, partitioned_self_join

__all__ = ["PartitionedSelfJoin", "partitioned_self_join"]
