"""Build-once / query-many approximate similarity search.

:class:`PassJoinSearcher` indexes a string collection for a maximum
threshold ``max_tau`` under a pluggable
:class:`~repro.core.kernel.SimilarityKernel`.  With the default
``edit-distance`` kernel this is the Pass-Join partition scheme: a query
string ``q`` with a per-query threshold ``tau ≤ max_tau`` is answered by
probing the segment indices of every length in ``[|q| − tau, |q| + tau]``
with the multi-match-aware substring selection and a pluggable
verification kernel (the extension-based verifier by default; see
:class:`~repro.config.VerificationMethod` for the alternatives).  The
``token-jaccard`` kernel answers the same surface with prefix-filter
signatures over token sets instead (see :mod:`repro.core.kernel`).

Why a query threshold below the index threshold stays correct: the index
partitions every string into ``max_tau + 1`` segments.  If
``ed(r, q) ≤ tau ≤ max_tau``, then by the pigeonhole principle (Lemma 1
applied with ``max_tau``) ``q`` contains a substring matching one of ``r``'s
``max_tau + 1`` segments, and the selection windows — computed with the
*index's* ``max_tau`` — cover that substring.  Probing with the smaller
``tau`` only affects the verification bound, never the candidate coverage.
(The token-jaccard analogue: index prefixes are sized for the loosest
similarity ``max_tau`` admits, so tighter query thresholds only shorten
the *query* prefix.)

Strings the kernel cannot index (too short to partition; token-less) are
kept in a side pool and verified against every query that passes the
length filter, exactly as in the join driver.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence

from ..config import PartitionStrategy, VerificationMethod, validate_threshold
from ..core.kernel import (SimilarityKernel, check_batch_kernels,
                           resolve_kernel)
from ..exceptions import InvalidThresholdError
from ..obs.trace import ProbeTrace, build_explain_report
from ..types import JoinStatistics, StringRecord, as_records


def resolve_query_taus(queries: Sequence[str],
                       tau: int | Sequence[int | None] | None,
                       max_tau: int) -> list[int]:
    """Resolve a ``search_many`` threshold argument to one tau per query.

    ``tau`` may be a single value applied to every query (``None`` means
    ``max_tau``) or a sequence aligned with ``queries`` whose entries are
    again ints or ``None``.  Every resolved threshold is validated against
    ``max_tau`` — shared by all three batch searchers so their threshold
    semantics cannot drift apart.
    """
    def resolve_one(value: int | None) -> int:
        resolved = max_tau if value is None else validate_threshold(value)
        if resolved > max_tau:
            raise InvalidThresholdError(resolved)
        return resolved

    if tau is None or isinstance(tau, int):
        return [resolve_one(tau)] * len(queries)
    taus = list(tau)
    if len(taus) != len(queries):
        raise ValueError(f"got {len(queries)} queries but {len(taus)} "
                         f"thresholds")
    return [resolve_one(value) for value in taus]


def wrap_batch_matches(raw: Sequence[Sequence[tuple[StringRecord, int]]],
                       stats: JoinStatistics) -> list[list["SearchMatch"]]:
    """Turn a kernel backend's batch-probe output into result lists.

    One sorted ``SearchMatch`` list per query, counted into
    ``stats.num_results`` — shared by every batch searcher (like
    :func:`resolve_query_taus`) so their result shaping cannot drift apart.
    """
    results: list[list[SearchMatch]] = []
    for matches in raw:
        found = sorted((SearchMatch(distance, record.id, record.text)
                        for record, distance in matches),
                       key=SearchMatch.sort_key)
        stats.num_results += len(found)
        results.append(found)
    return results


@dataclass(frozen=True, slots=True, order=True)
class SearchMatch:
    """One search hit: the indexed record's id, text, and distance."""

    distance: int
    id: int
    text: str = ""

    def sort_key(self) -> tuple[int, int]:
        """Canonical result ordering: ``(distance, id)``.

        Record ids are unique within a collection, so this key is total —
        every search and top-k result list is deterministic regardless of
        index build order, posting order, or which process produced it.
        """
        return (self.distance, self.id)

    def to_dict(self) -> dict[str, int | str]:
        """Stable wire representation used by the service protocol."""
        return {"id": self.id, "distance": self.distance, "text": self.text}

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "SearchMatch":
        """Rebuild a match from :meth:`to_dict` output (wire round-trip).

        Raises ``ValueError`` on malformed payloads so transport code can
        turn them into protocol errors instead of attribute crashes.
        """
        try:
            distance = payload["distance"]
            record_id = payload["id"]
        except (TypeError, KeyError) as exc:
            raise ValueError(f"malformed SearchMatch payload: {payload!r}") from exc
        text = payload.get("text", "")
        if (isinstance(distance, bool) or not isinstance(distance, int)
                or isinstance(record_id, bool) or not isinstance(record_id, int)
                or not isinstance(text, str)):
            raise ValueError(f"malformed SearchMatch payload: {payload!r}")
        return cls(distance=distance, id=record_id, text=text)


class PassJoinSearcher:
    """Approximate similarity search over a fixed collection.

    Parameters
    ----------
    strings:
        The collection to index (plain strings or
        :class:`~repro.types.StringRecord` objects with caller-chosen ids).
    max_tau:
        Largest threshold any future query may use, under the kernel's
        semantics.  Larger values make the index bigger (more signatures
        per string) and individual queries slightly slower, but allow
        looser searches.
    partition:
        Partition strategy for the edit-distance kernel (the paper's even
        scheme by default).
    verification:
        Verification kernel used by the edit-distance kernel to check
        candidates (a :class:`~repro.config.VerificationMethod` or its
        string name).  Defaults to the extension verifier;
        ``"myers-batch"`` pays off on verification-heavy workloads with
        long shared inverted lists.
    kernel:
        Similarity kernel — a registered name or a
        :class:`~repro.core.kernel.SimilarityKernel` instance; defaults
        to ``edit-distance``.

    Examples
    --------
    >>> searcher = PassJoinSearcher(["vldb", "pvldb", "sigmod"], max_tau=2)
    >>> [match.text for match in searcher.search("vldbj", tau=2)]
    ['vldb', 'pvldb']
    """

    def __init__(self, strings: Iterable[str | StringRecord], max_tau: int,
                 partition: PartitionStrategy = PartitionStrategy.EVEN,
                 verification: VerificationMethod | str =
                 VerificationMethod.EXTENSION,
                 kernel: str | SimilarityKernel | None = None) -> None:
        self.kernel = resolve_kernel(kernel)
        self.max_tau = self.kernel.validate_tau(max_tau)
        self.verification = (verification
                            if isinstance(verification, VerificationMethod)
                            else VerificationMethod(str(verification)))
        self.statistics = JoinStatistics()
        self._records = as_records(strings)
        self.statistics.num_strings = len(self._records)
        self._backend = self.kernel.make_backend(
            self.max_tau, partition=partition, verification=self.verification,
            seed=self._records, keep_sorted=False)
        for record in sorted(self._records, key=lambda r: (r.length, r.text)):
            self.statistics.num_indexed_segments += self._backend.add(record)
        self.statistics.index_entries = self._backend.entry_count()
        self.statistics.index_bytes = self._backend.approximate_bytes()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> Sequence[StringRecord]:
        """The indexed records (in their original order)."""
        return self._records

    @property
    def _index(self):
        """The backend's signature index (edit-distance kernel only)."""
        return self._backend.index

    @property
    def _short_pool(self) -> list[StringRecord]:
        """Records the kernel cannot index (too short; token-less)."""
        return list(self._backend.short_pool.values())

    @property
    def _selector(self):
        """The backend's substring selector (edit-distance kernel only)."""
        return self._backend.selector

    # ------------------------------------------------------------------
    def search(self, query: str, tau: int | None = None) -> list[SearchMatch]:
        """Return every indexed string within ``tau`` of ``query``.

        ``tau`` defaults to the index's ``max_tau`` and must not exceed it.
        Results are sorted by (distance, id).
        """
        tau = self.max_tau if tau is None else self.kernel.validate_tau(tau)
        if tau > self.max_tau:
            raise InvalidThresholdError(tau)
        stats = self.statistics
        matches = self._backend.probe(query, tau, stats=stats)
        found = sorted((SearchMatch(distance, record.id, record.text)
                        for record, distance in matches),
                       key=SearchMatch.sort_key)
        stats.num_results += len(found)
        return found

    def explain(self, query: str, tau: int | None = None) -> dict[str, Any]:
        """Run one traced probe and return the per-stage funnel breakdown.

        The probe executes the exact :meth:`search` pipeline, but against a
        *private* :class:`~repro.types.JoinStatistics` (production counters
        stay untouched) and with a :class:`~repro.obs.trace.ProbeTrace`
        threaded through the engine.  The report (a plain JSON-ready dict)
        carries the filter funnel, a per-indexed-length breakdown with the
        partition layout and selection windows, the verifier kernel and its
        counters, stage wall times, and the matches themselves —
        ``funnel.accepted`` always equals ``num_matches``, which equals
        what :meth:`search` returns for the same arguments.
        """
        tau = self.max_tau if tau is None else self.kernel.validate_tau(tau)
        if tau > self.max_tau:
            raise InvalidThresholdError(tau)
        stats = JoinStatistics()
        verifier = self._backend.new_verifier(tau, stats)
        trace = ProbeTrace()
        started = time.perf_counter()
        raw = self._backend.probe(query, tau, stats=stats, trace=trace,
                                  verifier=verifier)
        total_seconds = time.perf_counter() - started
        matches = sorted((SearchMatch(distance, record.id, record.text)
                          for record, distance in raw),
                         key=SearchMatch.sort_key)
        return build_explain_report(
            query=query, tau=tau, verifier=verifier, trace=trace,
            stats=stats, matches=matches, total_seconds=total_seconds)

    def search_many(self, queries: Sequence[str],
                    tau: int | Sequence[int | None] | None = None,
                    kernel: "str | Sequence[str | None] | None" = None,
                    ) -> list[list[SearchMatch]]:
        """Answer a batch of queries in one grouped index pass.

        ``tau`` is a single threshold for the whole batch or a sequence of
        per-query thresholds (``None`` entries default to ``max_tau``).
        Returns one result list per query, aligned with ``queries`` — each
        element-identical to what :meth:`search` returns for that query,
        but duplicates in the batch are executed once and (for the
        edit-distance kernel) queries of the same length share one
        selection-window computation per indexed length (see
        :func:`repro.core.engine.probe_many`).  ``kernel`` (scalar or
        per-query) must name this searcher's kernel; a batch naming two
        different kernels is rejected (see
        :func:`repro.service.dynamic.check_batch_kernels`).
        """
        check_batch_kernels(self.kernel, kernel)
        taus = resolve_query_taus(queries, tau, self.max_tau)
        stats = self.statistics
        raw = self._backend.probe_many(list(zip(queries, taus)), stats=stats)
        return wrap_batch_matches(raw, stats)

    # ------------------------------------------------------------------
    def search_top_k(self, query: str, k: int,
                     max_tau: int | None = None) -> list[SearchMatch]:
        """Return the ``k`` indexed strings closest to ``query``.

        The threshold is grown from 0 upwards (each round reuses the same
        index) until ``k`` matches are found or ``max_tau`` (default: the
        index's ``max_tau``) is reached.  Results follow the canonical
        ``(distance, id)`` ordering of :meth:`SearchMatch.sort_key`, so ties
        at the cut-off distance are broken by record id — deterministic
        across processes, index builds, and serving replicas.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        limit = self.max_tau if max_tau is None else min(
            self.kernel.validate_tau(max_tau), self.max_tau)
        best: list[SearchMatch] = []
        for tau in range(0, limit + 1):
            best = self.search(query, tau)
            if len(best) >= k:
                break
        return best[:k]

    def search_top_k_many(self, queries: Sequence[str], k: int,
                          max_tau: int | None = None,
                          kernel: "str | Sequence[str | None] | None" = None,
                          ) -> list[list[SearchMatch]]:
        """Batch :meth:`search_top_k`: widen tau in lockstep across queries.

        Every round runs one :func:`~repro.core.engine.probe_many` pass
        over the queries that still have fewer than ``k`` matches, so the
        whole batch shares selection windows (and the persistent window
        cache) per tau round instead of re-probing per query; queries that
        reach ``k`` matches retire from later rounds.  Each result list is
        element-identical to ``search_top_k(query, k, max_tau)`` — the
        property-test contract.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        check_batch_kernels(self.kernel, kernel)
        limit = self.max_tau if max_tau is None else min(
            self.kernel.validate_tau(max_tau), self.max_tau)
        stats = self.statistics
        best: list[list[SearchMatch]] = [[] for _ in queries]
        active = list(range(len(queries)))
        for tau in range(0, limit + 1):
            if not active:
                break
            raw = self._backend.probe_many(
                [(queries[position], tau) for position in active], stats=stats)
            wrapped = wrap_batch_matches(raw, stats)
            still_unsatisfied: list[int] = []
            for position, found in zip(active, wrapped):
                best[position] = found
                if len(found) < k:
                    still_unsatisfied.append(position)
            active = still_unsatisfied
        return [found[:k] for found in best]

    def contains_within(self, query: str, tau: int | None = None) -> bool:
        """True when at least one indexed string is within ``tau`` of ``query``."""
        return bool(self.search(query, tau))


def search_all(strings: Iterable[str | StringRecord],
               queries: Sequence[str], tau: int) -> dict[str, list[SearchMatch]]:
    """Index ``strings`` once and search every query at threshold ``tau``."""
    searcher = PassJoinSearcher(strings, max_tau=tau)
    return {query: searcher.search(query, tau) for query in queries}


def iter_matches(searcher: PassJoinSearcher, queries: Iterable[str],
                 tau: int | None = None) -> Iterator[tuple[str, SearchMatch]]:
    """Yield ``(query, match)`` pairs for a stream of queries (lazy batch search)."""
    for query in queries:
        for match in searcher.search(query, tau):
            yield query, match
