"""Approximate string search on top of the Pass-Join segment index.

The paper's framework is symmetric: the same segment index that drives the
join also answers *search* queries ("find every indexed string within edit
distance τ of this query").  This package packages that as a reusable,
build-once / query-many index:

* :class:`PassJoinSearcher` — index a collection once, then run any number
  of :meth:`~PassJoinSearcher.search` queries, each with its own threshold
  up to the index's maximum.
* :func:`search_all` — convenience batch search.

This is the "approximate string searching" problem the related-work section
distinguishes from joins (Section 7); supporting it from the same index is a
natural extension that downstream users of a similarity-join library almost
always need (e.g. online entity lookup after an offline deduplication).
"""

from .searcher import PassJoinSearcher, SearchMatch, search_all

__all__ = ["PassJoinSearcher", "SearchMatch", "search_all"]
