"""String normalisation helpers for data-cleaning pipelines.

Edit distance is sensitive to superficial variation — letter case, runs of
whitespace, accents, punctuation — that a data-cleaning pipeline usually
wants to ignore before joining.  The paper (like most of the similarity-join
literature) assumes its inputs are already normalised; this module provides
the standard normalisations so users can reproduce that preprocessing, while
keeping the join itself operating on exact characters.

The central entry point is :func:`normalize`, driven by a
:class:`NormalizationConfig`; :func:`normalize_all` maps it over a
collection while preserving the original strings for reporting.
"""

from __future__ import annotations

import re
import unicodedata
from dataclasses import dataclass
from typing import Iterable, Sequence

_WHITESPACE_RUN = re.compile(r"\s+")
_PUNCTUATION = re.compile(r"[^\w\s]", re.UNICODE)


@dataclass(frozen=True, slots=True)
class NormalizationConfig:
    """Which normalisations :func:`normalize` applies, in documented order.

    Attributes
    ----------
    lowercase:
        Case-fold the string (``str.casefold``, stronger than ``lower``).
    collapse_whitespace:
        Strip leading/trailing whitespace and collapse internal runs to a
        single space.
    strip_accents:
        Decompose to NFKD and drop combining marks ("é" → "e").
    remove_punctuation:
        Drop every character that is neither alphanumeric nor whitespace.
    """

    lowercase: bool = True
    collapse_whitespace: bool = True
    strip_accents: bool = False
    remove_punctuation: bool = False


DEFAULT_NORMALIZATION = NormalizationConfig()


def strip_accents(text: str) -> str:
    """Remove combining marks after NFKD decomposition.

    >>> strip_accents("Crème Brûlée")
    'Creme Brulee'
    """
    decomposed = unicodedata.normalize("NFKD", text)
    return "".join(ch for ch in decomposed if not unicodedata.combining(ch))


def collapse_whitespace(text: str) -> str:
    """Trim the string and collapse internal whitespace runs to one space.

    >>> collapse_whitespace("  guoliang \\t li ")
    'guoliang li'
    """
    return _WHITESPACE_RUN.sub(" ", text).strip()


def remove_punctuation(text: str) -> str:
    """Drop punctuation/symbol characters (keeps letters, digits, whitespace).

    >>> remove_punctuation("li, g.; deng, d.")
    'li g deng d'
    """
    return _PUNCTUATION.sub("", text)


def normalize(text: str,
              config: NormalizationConfig = DEFAULT_NORMALIZATION) -> str:
    """Apply the configured normalisations to one string.

    The order is: accent stripping, punctuation removal, case folding,
    whitespace collapsing — so that e.g. punctuation replaced by nothing
    cannot leave double spaces behind.

    >>> normalize("  Guoliang   LI ")
    'guoliang li'
    """
    result = text
    if config.strip_accents:
        result = strip_accents(result)
    if config.remove_punctuation:
        result = remove_punctuation(result)
    if config.lowercase:
        result = result.casefold()
    if config.collapse_whitespace:
        result = collapse_whitespace(result)
    return result


def normalize_all(strings: Iterable[str],
                  config: NormalizationConfig = DEFAULT_NORMALIZATION
                  ) -> list[str]:
    """Normalise every string of a collection (order preserved)."""
    return [normalize(text, config) for text in strings]


def normalization_map(strings: Sequence[str],
                      config: NormalizationConfig = DEFAULT_NORMALIZATION
                      ) -> dict[str, list[str]]:
    """Group the original strings by their normalised form.

    Groups with more than one member are exact duplicates after
    normalisation — worth reporting before even running a similarity join.
    """
    groups: dict[str, list[str]] = {}
    for text in strings:
        groups.setdefault(normalize(text, config), []).append(text)
    return groups
