"""Rendering experiment tables as text and Markdown.

The paper reports its evaluation as figures (line plots) and tables; this
module renders the same data as aligned text tables, which is what the CLI
prints and what ``EXPERIMENTS.md`` embeds.
"""

from __future__ import annotations

from typing import Any, Iterable

from .harness import ExperimentTable


def _format_value(value: Any) -> str:
    """Format one cell: floats get 4 significant digits, the rest ``str``."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.4g}"
    if isinstance(value, int) and abs(value) >= 10000:
        return f"{value:,}"
    return str(value)


def format_table(table: ExperimentTable, markdown: bool = False) -> str:
    """Render one table as aligned plain text or GitHub-flavoured Markdown."""
    headers = list(table.columns)
    body = [[_format_value(row.get(column, "")) for column in headers]
            for row in table.rows]
    widths = [max(len(header), *(len(line[i]) for line in body)) if body else len(header)
              for i, header in enumerate(headers)]

    lines: list[str] = []
    if markdown:
        lines.append("| " + " | ".join(header.ljust(width)
                                       for header, width in zip(headers, widths)) + " |")
        lines.append("|" + "|".join("-" * (width + 2) for width in widths) + "|")
        for row in body:
            lines.append("| " + " | ".join(cell.ljust(width)
                                           for cell, width in zip(row, widths)) + " |")
    else:
        lines.append(f"== {table.title} ({table.key}) ==")
        lines.append("  ".join(header.ljust(width)
                               for header, width in zip(headers, widths)))
        lines.append("  ".join("-" * width for width in widths))
        for row in body:
            lines.append("  ".join(cell.ljust(width)
                                   for cell, width in zip(row, widths)))
        if table.notes:
            lines.append(f"note: {table.notes}")
    return "\n".join(lines)


def tables_to_markdown(tables: Iterable[ExperimentTable]) -> str:
    """Render several tables as a Markdown document fragment."""
    sections: list[str] = []
    for table in tables:
        sections.append(f"### {table.title} (`{table.key}`)\n")
        sections.append(format_table(table, markdown=True))
        if table.notes:
            sections.append(f"\n*{table.notes}*")
        sections.append("")
    return "\n".join(sections)
