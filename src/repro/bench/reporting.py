"""Rendering experiment tables as text, Markdown, and JSON trajectories.

The paper reports its evaluation as figures (line plots) and tables; this
module renders the same data as aligned text tables, which is what the CLI
prints and what ``EXPERIMENTS.md`` embeds.

It also makes performance a *tracked artifact*: :func:`append_bench_run`
appends one machine-readable run (environment header, headline metrics,
optionally full tables) to a ``BENCH_<name>.json`` trajectory file that
benchmark scripts emit and CI uploads, so speedups asserted today stay
comparable against the measurements of every past revision.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Any, Iterable, Mapping

from ..exceptions import ExperimentError
from ..types import JoinStatistics
from .harness import ExperimentTable, available_cpus

#: Version of the BENCH_*.json trajectory layout.
BENCH_SCHEMA = 1
#: Runs kept per trajectory file; older runs rotate out oldest-first.
BENCH_KEEP_RUNS = 50

#: :class:`~repro.types.JoinStatistics` counters that make up the filter
#: funnel, in pipeline order (each stage can only shrink the stream).
FUNNEL_METRIC_FIELDS = ("num_selected_substrings", "num_index_probes",
                        "num_postings_scanned", "num_candidates",
                        "num_verifications", "num_accepted")


def funnel_metrics(statistics: JoinStatistics) -> dict[str, int]:
    """The filter-funnel counters of ``statistics`` as a flat mapping.

    Benchmark scripts merge this into the headline ``metrics`` of their
    :func:`bench_run_payload` so ``BENCH_*.json`` trajectories track
    candidate-count regressions — a filter change that suddenly lets 10x
    more candidates through to the verifier — alongside raw speedups.
    """
    return {field: getattr(statistics, field)
            for field in FUNNEL_METRIC_FIELDS}


def _format_value(value: Any) -> str:
    """Format one cell: floats get 4 significant digits, the rest ``str``."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.4g}"
    if isinstance(value, int) and abs(value) >= 10000:
        return f"{value:,}"
    return str(value)


def format_table(table: ExperimentTable, markdown: bool = False) -> str:
    """Render one table as aligned plain text or GitHub-flavoured Markdown."""
    headers = list(table.columns)
    body = [[_format_value(row.get(column, "")) for column in headers]
            for row in table.rows]
    widths = [max(len(header), *(len(line[i]) for line in body)) if body else len(header)
              for i, header in enumerate(headers)]

    lines: list[str] = []
    if markdown:
        lines.append("| " + " | ".join(header.ljust(width)
                                       for header, width in zip(headers, widths)) + " |")
        lines.append("|" + "|".join("-" * (width + 2) for width in widths) + "|")
        for row in body:
            lines.append("| " + " | ".join(cell.ljust(width)
                                           for cell, width in zip(row, widths)) + " |")
    else:
        lines.append(f"== {table.title} ({table.key}) ==")
        lines.append("  ".join(header.ljust(width)
                               for header, width in zip(headers, widths)))
        lines.append("  ".join("-" * width for width in widths))
        for row in body:
            lines.append("  ".join(cell.ljust(width)
                                   for cell, width in zip(row, widths)))
        if table.notes:
            lines.append(f"note: {table.notes}")
    return "\n".join(lines)


def tables_to_markdown(tables: Iterable[ExperimentTable]) -> str:
    """Render several tables as a Markdown document fragment."""
    sections: list[str] = []
    for table in tables:
        sections.append(f"### {table.title} (`{table.key}`)\n")
        sections.append(format_table(table, markdown=True))
        if table.notes:
            sections.append(f"\n*{table.notes}*")
        sections.append("")
    return "\n".join(sections)


# ----------------------------------------------------------------------
# Machine-readable performance trajectories (BENCH_*.json)
# ----------------------------------------------------------------------
def table_to_dict(table: ExperimentTable) -> dict[str, Any]:
    """One table as a JSON-ready mapping (keys mirror the dataclass)."""
    return {
        "key": table.key,
        "title": table.title,
        "columns": list(table.columns),
        "rows": [dict(row) for row in table.rows],
        "notes": table.notes,
    }


def bench_run_payload(metrics: Mapping[str, Any], *,
                      tables: Iterable[ExperimentTable] = (),
                      notes: str = "") -> dict[str, Any]:
    """Assemble one benchmark run: environment header + headline metrics.

    ``metrics`` carries the numbers a trajectory reader plots or gates on
    (seconds, speedups, result counts); ``tables`` optionally embeds the
    full experiment tables for forensic comparisons between runs.
    """
    payload: dict[str, Any] = {
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpus": available_cpus(),
        "metrics": dict(metrics),
    }
    if notes:
        payload["notes"] = notes
    table_dicts = [table_to_dict(table) for table in tables]
    if table_dicts:
        payload["tables"] = table_dicts
    return payload


def append_bench_run(path: str | Path, name: str, run: Mapping[str, Any],
                     keep: int = BENCH_KEEP_RUNS) -> dict[str, Any]:
    """Append ``run`` to the ``BENCH_<name>.json`` trajectory at ``path``.

    The file holds ``{"schema": 1, "bench": name, "runs": [...]}`` with the
    oldest runs rotated out beyond ``keep``.  A corrupt or foreign file is
    an :class:`ExperimentError`, not a silent overwrite — a trajectory that
    quietly restarted would read as a perf cliff.  Returns the document
    written (handy for tests and for printing a summary).
    """
    path = Path(path)
    document: dict[str, Any] = {"schema": BENCH_SCHEMA, "bench": name,
                                "runs": []}
    if path.exists():
        try:
            existing = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise ExperimentError(
                f"cannot extend benchmark trajectory {path}: {exc}") from exc
        if (not isinstance(existing, dict)
                or existing.get("schema") != BENCH_SCHEMA
                or existing.get("bench") != name
                or not isinstance(existing.get("runs"), list)):
            raise ExperimentError(
                f"benchmark trajectory {path} does not look like a "
                f"schema-{BENCH_SCHEMA} {name!r} trajectory; refusing to "
                f"overwrite it")
        document["runs"] = existing["runs"]
    document["runs"].append(dict(run))
    if keep > 0:
        document["runs"] = document["runs"][-keep:]
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n",
                    encoding="utf-8")
    return document


def bench_trajectory_path(directory: str | Path, name: str) -> Path:
    """Canonical trajectory filename for benchmark ``name`` (BENCH_<name>.json)."""
    safe = name.replace("-", "_")
    return Path(directory) / f"BENCH_{safe}.json"
