"""Experiment harness primitives.

The harness is deliberately small: an :class:`ExperimentTable` is a named
list of row dictionaries (one per parameter combination), a :class:`Timer`
measures wall-clock time, and :func:`scaled` applies a global scale factor
to dataset sizes so the same experiment code serves both the quick
``pytest-benchmark`` runs and larger standalone reproductions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from ..exceptions import ExperimentError


@dataclass(slots=True)
class ExperimentTable:
    """The result of one experiment: a titled table of rows.

    Attributes
    ----------
    key:
        Stable identifier, e.g. ``"figure12"`` or ``"table3"``.
    title:
        Human-readable title, e.g. ``"Numbers of selected substrings"``.
    columns:
        Column order for rendering; every row must provide these keys.
    rows:
        One mapping per measured configuration.
    notes:
        Free-form notes (scale factors, substitutions, expected shape).
    """

    key: str
    title: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, **values: Any) -> None:
        """Append a row, checking it carries exactly the declared columns.

        Undeclared keys are rejected, not silently stored: a typo'd column
        name would otherwise survive every run and only surface as a hole
        in the rendered report (or worse, not at all).
        """
        missing = [column for column in self.columns if column not in values]
        if missing:
            raise ExperimentError(
                f"experiment {self.key}: row is missing columns {missing}")
        unknown = [key for key in values if key not in self.columns]
        if unknown:
            raise ExperimentError(
                f"experiment {self.key}: row has undeclared columns {unknown}")
        self.rows.append(values)

    def column(self, name: str) -> list[Any]:
        """Return one column as a list (handy for assertions on trends)."""
        if name not in self.columns:
            raise ExperimentError(f"experiment {self.key}: unknown column {name!r}")
        return [row[name] for row in self.rows]

    def filter_rows(self, **criteria: Any) -> list[dict[str, Any]]:
        """Return the rows matching every given column=value criterion."""
        matched = []
        for row in self.rows:
            if all(row.get(column) == value for column, value in criteria.items()):
                matched.append(row)
        return matched


class Timer:
    """Context manager measuring wall-clock seconds.

    >>> with Timer() as timer:
    ...     _ = sum(range(1000))
    >>> timer.seconds >= 0.0
    True
    """

    def __init__(self) -> None:
        self.seconds = 0.0
        self._started = 0.0

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.seconds = time.perf_counter() - self._started


def scaled(sizes: Mapping[str, int], scale: float) -> dict[str, int]:
    """Scale dataset sizes by ``scale``, keeping every size at least 50.

    The paper's corpora have 460k–860k strings; pure-Python joins at that
    size are impractically slow, so experiments run on scaled-down corpora
    and report the scale in their notes.
    """
    if scale <= 0:
        raise ExperimentError(f"scale must be positive, got {scale}")
    return {name: max(50, int(size * scale)) for name, size in sizes.items()}


def available_cpus() -> int:
    """CPUs this process may use — the honest upper bound on parallel speedup.

    Scaling experiments record this next to their measurements: a 4-worker
    run on a single-core container *cannot* beat serial, and asserting that
    it does would make the benchmark suite flaky across machines.
    """
    from ..core.parallel import available_workers

    return available_workers()


def geometric_speedup(times: Sequence[float], baseline: Sequence[float]) -> float:
    """Geometric-mean speedup of ``times`` over ``baseline`` (for summaries)."""
    if len(times) != len(baseline) or not times:
        raise ExperimentError("speedup requires two equal-length, non-empty series")
    product = 1.0
    for fast, slow in zip(times, baseline):
        if fast <= 0 or slow <= 0:
            raise ExperimentError("speedup requires strictly positive timings")
        product *= slow / fast
    return product ** (1.0 / len(times))
