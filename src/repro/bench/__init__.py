"""Benchmark harness reproducing the paper's evaluation (Section 6).

Each experiment function in :mod:`repro.bench.experiments` regenerates one
table or figure of the paper as an :class:`repro.bench.harness.ExperimentTable`
— the same rows/series the paper reports, computed on the synthetic
stand-in datasets.  :mod:`repro.bench.reporting` renders the tables as
plain text or Markdown (used to produce ``EXPERIMENTS.md``), and the
``benchmarks/`` directory drives the same functions through
``pytest-benchmark``.
"""

from .harness import ExperimentTable, Timer, scaled
from .reporting import (append_bench_run, bench_run_payload,
                        bench_trajectory_path, format_table,
                        table_to_dict, tables_to_markdown)

__all__ = [
    "ExperimentTable",
    "Timer",
    "scaled",
    "format_table",
    "tables_to_markdown",
    "table_to_dict",
    "bench_run_payload",
    "append_bench_run",
    "bench_trajectory_path",
]
