"""Experiment definitions: one function per table/figure of the paper.

Every function builds the synthetic stand-in datasets, runs the relevant
algorithms, and returns an :class:`~repro.bench.harness.ExperimentTable`
whose rows mirror the series the paper plots:

==============================  ============================================
function                         paper content
==============================  ============================================
:func:`table2_dataset_statistics`  Table 2 — dataset cardinality and lengths
:func:`table3_index_sizes`         Table 3 — index sizes of the three methods
:func:`fig11_length_distribution`  Figure 11 — string-length histograms
:func:`fig12_selected_substrings`  Figure 12 — #selected substrings, 4 methods
:func:`fig13_selection_time`       Figure 13 — substring-selection time
:func:`fig14_verification`         Figure 14 — verification strategies
:func:`fig15_comparison`           Figure 15 — ED-Join vs Trie-Join vs Pass-Join
:func:`fig16_scalability`          Figure 16 — join time vs collection size
==============================  ============================================

plus ablations that back design choices discussed in DESIGN.md
(:func:`ablation_partition_strategies`, :func:`ablation_verifier_kernels`,
:func:`ablation_filter_quality`) and the tracked kernel benchmark
:func:`verification_kernels` (batched vs per-pair bit-parallel
verification, the source of ``BENCH_verification.json``).

Dataset sizes default to a few hundred–few thousand strings (the paper uses
460k–860k; a pure-Python reproduction keeps the workload *shape* but scales
the cardinality down — see EXPERIMENTS.md).  All functions accept a
``scale`` factor to run larger or smaller versions.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from ..baselines.ed_join import EdJoin
from ..baselines.naive import NaiveJoin
from ..baselines.part_enum import PartEnumJoin
from ..baselines.trie_join import TrieJoin
from ..config import (JoinConfig, PartitionStrategy, SelectionMethod,
                      VerificationMethod)
from ..core.join import PassJoin
from ..core.parallel import ParallelPassJoin, resolve_workers
from ..datasets.stats import dataset_statistics, length_histogram
from ..datasets.synthetic import (generate_author_dataset,
                                  generate_querylog_dataset,
                                  generate_title_dataset)
from .harness import ExperimentTable, Timer, available_cpus, scaled

# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
#: Dataset builders keyed by the names used throughout the paper's figures.
DATASET_BUILDERS: dict[str, Callable[[int], list[str]]] = {
    "author": generate_author_dataset,
    "querylog": generate_querylog_dataset,
    "title": generate_title_dataset,
}

#: Default (scaled-down) cardinalities; the paper's Table 2 sizes are
#: 612,781 / 464,189 / 863,073.
DEFAULT_SIZES: dict[str, int] = {
    "author": 2000,
    "querylog": 1000,
    "title": 500,
}

#: Edit-distance thresholds swept per dataset, matching Figures 12-14.
DEFAULT_TAUS: dict[str, tuple[int, ...]] = {
    "author": (1, 2, 3, 4),
    "querylog": (4, 5, 6, 7, 8),
    "title": (5, 6, 7, 8, 9, 10),
}

_SCALE_NOTE = ("datasets are synthetic stand-ins scaled down from the paper's "
               "460k-860k strings; shapes/trends are comparable, absolute "
               "numbers are not")


def build_datasets(scale: float = 1.0,
                   names: Sequence[str] | None = None) -> dict[str, list[str]]:
    """Generate the benchmark datasets (optionally scaled / restricted)."""
    selected = names if names is not None else tuple(DATASET_BUILDERS)
    sizes = scaled({name: DEFAULT_SIZES[name] for name in selected}, scale)
    return {name: DATASET_BUILDERS[name](sizes[name]) for name in selected}


def _taus(name: str, taus: Mapping[str, Sequence[int]] | None) -> Sequence[int]:
    if taus is not None and name in taus:
        return taus[name]
    return DEFAULT_TAUS[name]


# ----------------------------------------------------------------------
# Table 2 / Figure 11 — dataset shape
# ----------------------------------------------------------------------
def table2_dataset_statistics(scale: float = 1.0,
                              names: Sequence[str] | None = None) -> ExperimentTable:
    """Table 2: cardinality and length statistics of the datasets."""
    table = ExperimentTable(
        key="table2",
        title="Datasets (synthetic stand-ins for Table 2)",
        columns=["dataset", "cardinality", "avg_len", "max_len", "min_len"],
        notes=_SCALE_NOTE,
    )
    for name, strings in build_datasets(scale, names).items():
        stats = dataset_statistics(strings)
        table.add_row(dataset=name, **stats.as_row())
    return table


def fig11_length_distribution(scale: float = 1.0, bucket_size: int = 5,
                              names: Sequence[str] | None = None) -> ExperimentTable:
    """Figure 11: string-length distribution of each dataset."""
    table = ExperimentTable(
        key="figure11",
        title="String length distribution",
        columns=["dataset", "length_bucket", "num_strings"],
        notes=f"bucket size {bucket_size}; " + _SCALE_NOTE,
    )
    for name, strings in build_datasets(scale, names).items():
        for bucket, count in length_histogram(strings, bucket_size).items():
            table.add_row(dataset=name, length_bucket=bucket, num_strings=count)
    return table


# ----------------------------------------------------------------------
# Figures 12 & 13 — substring selection
# ----------------------------------------------------------------------
def selection_experiment(scale: float = 1.0,
                         names: Sequence[str] | None = None,
                         taus: Mapping[str, Sequence[int]] | None = None,
                         methods: Sequence[SelectionMethod] = tuple(SelectionMethod),
                         ) -> ExperimentTable:
    """Shared driver for Figures 12 and 13.

    Runs a full Pass-Join per (dataset, τ, selection method) and records the
    number of selected substrings and the time spent selecting them.
    """
    table = ExperimentTable(
        key="figure12-13",
        title="Substring selection: counts and elapsed time",
        columns=["dataset", "tau", "method", "selected_substrings",
                 "selection_seconds", "candidates", "results"],
        notes=_SCALE_NOTE,
    )
    for name, strings in build_datasets(scale, names).items():
        for tau in _taus(name, taus):
            for method in methods:
                config = JoinConfig(selection=method,
                                    verification=VerificationMethod.SHARE_PREFIX)
                result = PassJoin(tau, config).self_join(strings)
                stats = result.statistics
                table.add_row(dataset=name, tau=tau, method=method.value,
                              selected_substrings=stats.num_selected_substrings,
                              selection_seconds=round(stats.selection_seconds, 6),
                              candidates=stats.num_candidates,
                              results=stats.num_results)
    return table


def fig12_selected_substrings(scale: float = 1.0,
                              names: Sequence[str] | None = None,
                              taus: Mapping[str, Sequence[int]] | None = None,
                              ) -> ExperimentTable:
    """Figure 12: number of selected substrings per selection method."""
    table = selection_experiment(scale, names, taus)
    table.key = "figure12"
    table.title = "Numbers of selected substrings"
    return table


def fig13_selection_time(scale: float = 1.0,
                         names: Sequence[str] | None = None,
                         taus: Mapping[str, Sequence[int]] | None = None,
                         ) -> ExperimentTable:
    """Figure 13: elapsed time for generating (selecting) substrings."""
    table = selection_experiment(scale, names, taus)
    table.key = "figure13"
    table.title = "Elapsed time for generating substrings"
    return table


# ----------------------------------------------------------------------
# Figure 14 — verification strategies
# ----------------------------------------------------------------------
def fig14_verification(scale: float = 1.0,
                       names: Sequence[str] | None = None,
                       taus: Mapping[str, Sequence[int]] | None = None,
                       methods: Sequence[VerificationMethod] = (
                           VerificationMethod.BANDED,
                           VerificationMethod.LENGTH_AWARE,
                           VerificationMethod.EXTENSION,
                           VerificationMethod.SHARE_PREFIX),
                       ) -> ExperimentTable:
    """Figure 14: elapsed verification time of the four strategies.

    The paper labels the strategies ``2τ+1``, ``τ+1``, ``Extension`` and
    ``SharePrefix``; they map to :class:`VerificationMethod` in that order.
    """
    table = ExperimentTable(
        key="figure14",
        title="Elapsed time for verification",
        columns=["dataset", "tau", "method", "verification_seconds",
                 "matrix_cells", "early_terminations", "results"],
        notes=_SCALE_NOTE,
    )
    for name, strings in build_datasets(scale, names).items():
        for tau in _taus(name, taus):
            for method in methods:
                config = JoinConfig(selection=SelectionMethod.MULTI_MATCH,
                                    verification=method)
                result = PassJoin(tau, config).self_join(strings)
                stats = result.statistics
                table.add_row(dataset=name, tau=tau, method=method.value,
                              verification_seconds=round(stats.verification_seconds, 6),
                              matrix_cells=stats.num_matrix_cells,
                              early_terminations=stats.num_early_terminations,
                              results=stats.num_results)
    return table


# ----------------------------------------------------------------------
# Figure 15 — comparison with ED-Join and Trie-Join
# ----------------------------------------------------------------------
def fig15_comparison(scale: float = 1.0,
                     names: Sequence[str] | None = None,
                     taus: Mapping[str, Sequence[int]] | None = None,
                     q: int = 3) -> ExperimentTable:
    """Figure 15: total join time of ED-Join, Trie-Join, and Pass-Join.

    All three algorithms must (and do) report the same number of similar
    pairs; the row records it once so benchmark assertions can check it.
    """
    table = ExperimentTable(
        key="figure15",
        title="Comparison with state-of-the-art methods",
        columns=["dataset", "tau", "algorithm", "total_seconds", "candidates",
                 "results"],
        notes=_SCALE_NOTE + "; ED-Join/Trie-Join are pure-Python "
              "reimplementations of the published algorithms",
    )
    for name, strings in build_datasets(scale, names).items():
        for tau in _taus(name, taus):
            algorithms = [
                ("ed-join", EdJoin(tau, q=q)),
                ("trie-join", TrieJoin(tau)),
                ("pass-join", PassJoin(tau)),
            ]
            for label, algorithm in algorithms:
                with Timer() as timer:
                    result = algorithm.self_join(strings)
                table.add_row(dataset=name, tau=tau, algorithm=label,
                              total_seconds=round(timer.seconds, 6),
                              candidates=result.statistics.num_candidates,
                              results=len(result))
    return table


# ----------------------------------------------------------------------
# Figure 16 — scalability
# ----------------------------------------------------------------------
def fig16_scalability(scale: float = 1.0,
                      names: Sequence[str] | None = None,
                      taus: Mapping[str, Sequence[int]] | None = None,
                      steps: int = 4) -> ExperimentTable:
    """Figure 16: Pass-Join elapsed time as the collection grows.

    The paper varies the number of strings from 100k to 600k-800k; here the
    collection grows in ``steps`` equal increments up to the (scaled)
    default size.
    """
    table = ExperimentTable(
        key="figure16",
        title="Scalability of Pass-Join",
        columns=["dataset", "tau", "num_strings", "total_seconds", "results"],
        notes=_SCALE_NOTE,
    )
    for name, strings in build_datasets(scale, names).items():
        sweep = taus[name] if taus is not None and name in taus else (
            DEFAULT_TAUS[name][0], DEFAULT_TAUS[name][-1])
        for tau in sweep:
            for step in range(1, steps + 1):
                size = max(1, len(strings) * step // steps)
                subset = strings[:size]
                result = PassJoin(tau).self_join(subset)
                table.add_row(dataset=name, tau=tau, num_strings=size,
                              total_seconds=round(result.statistics.total_seconds, 6),
                              results=len(result))
    return table


# ----------------------------------------------------------------------
# Table 3 — index sizes
# ----------------------------------------------------------------------
def table3_index_sizes(scale: float = 1.0,
                       names: Sequence[str] | None = None,
                       tau: int = 4, q: int = 4) -> ExperimentTable:
    """Table 3: index footprint of ED-Join, Trie-Join, and Pass-Join.

    Sizes are the approximate byte footprints of the data structures each
    algorithm builds (q-gram postings, trie nodes, segment postings); the
    Pass-Join figure is the *peak* of its sliding length-window index, which
    is what the paper reports.
    """
    table = ExperimentTable(
        key="table3",
        title="Index sizes",
        columns=["dataset", "data_bytes", "ed_join_bytes", "trie_join_bytes",
                 "pass_join_bytes"],
        notes=f"tau={tau} for Pass-Join, q={q} for ED-Join, mirroring Table 3; "
              + _SCALE_NOTE,
    )
    for name, strings in build_datasets(scale, names).items():
        data_bytes = sum(len(text.encode("utf-8")) for text in strings)
        ed_stats = EdJoin(tau, q=q).self_join(strings).statistics
        trie_stats = TrieJoin(tau).self_join(strings).statistics
        pass_stats = PassJoin(tau).self_join(strings).statistics
        table.add_row(dataset=name, data_bytes=data_bytes,
                      ed_join_bytes=ed_stats.index_bytes,
                      trie_join_bytes=trie_stats.index_bytes,
                      pass_join_bytes=pass_stats.index_bytes)
    return table


# ----------------------------------------------------------------------
# Parallel scaling (beyond the paper — the paper's system is single-threaded)
# ----------------------------------------------------------------------
def parallel_scaling(scale: float = 1.0, name: str = "author", tau: int = 2,
                     worker_counts: Sequence[int] = (1, 2, 4),
                     chunk_size: int | None = None,
                     backend: str = "auto") -> ExperimentTable:
    """Elapsed time of the chunk-parallel engine as workers grow.

    ``workers=1`` is the serial :class:`~repro.core.join.PassJoin`; every
    other row runs :class:`~repro.core.parallel.ParallelPassJoin` and must
    report the same result count (the harness records it per row so
    benchmark assertions can check it).  ``speedup`` is serial time over the
    row's time; the table notes record the measured CPU budget, since
    speedups are bounded by the cores actually available.
    """
    strings = build_datasets(scale, [name])[name]
    measured: list[tuple[int, str, float, int]] = []
    for workers in worker_counts:
        engine = ParallelPassJoin(tau, workers=workers, chunk_size=chunk_size,
                                  backend=backend)
        with Timer() as timer:
            result = engine.self_join(strings)
        measured.append((workers, "serial" if workers == 1 else engine.backend,
                         timer.seconds, len(result)))
    # Baseline = the run with the fewest *effective* workers (0 = all CPUs,
    # so it never qualifies as the baseline on a multi-core machine).
    baseline_row = min(measured, key=lambda row: resolve_workers(row[0]))
    table = ExperimentTable(
        key="parallel-scaling",
        title="Parallel chunked join: scaling with worker count",
        columns=["dataset", "tau", "workers", "backend", "total_seconds",
                 "speedup", "results"],
        notes=f"{available_cpus()} CPU(s) available; speedup is relative to "
              f"the workers={baseline_row[0]} run; " + _SCALE_NOTE,
    )
    for workers, backend_used, seconds, results in measured:
        table.add_row(dataset=name, tau=tau, workers=workers,
                      backend=backend_used,
                      total_seconds=round(seconds, 6),
                      speedup=round(baseline_row[2] / max(seconds, 1e-9), 3),
                      results=results)
    return table


# ----------------------------------------------------------------------
# Service throughput (beyond the paper — the online serving layer)
# ----------------------------------------------------------------------
def service_throughput(scale: float = 1.0, name: str = "author", tau: int = 2,
                       num_queries: int | None = None,
                       distinct_fraction: float = 0.1,
                       cache_capacity: int = 1024,
                       seed: int = 7) -> ExperimentTable:
    """Queries/sec of the serving core with the query cache off and on.

    A repeated-query workload (``distinct_fraction`` of the requests are
    distinct; the rest repeat them, mimicking popular online lookups) runs
    through :class:`~repro.service.server.SimilarityService` twice — once
    with ``cache_capacity=0`` and once with the cache enabled.  Both runs
    must return the same total number of matches; the table records the
    speedup and the cache hit rate.  Transport (JSON framing, TCP) is
    deliberately excluded: this measures the serving core the transport
    multiplexes onto.
    """
    import random

    from ..config import ServiceConfig
    from ..datasets.corruption import apply_random_edits
    from ..service.server import SimilarityService

    strings = build_datasets(scale, [name])[name]
    if num_queries is None:
        num_queries = max(20, int(400 * scale))
    rng = random.Random(seed)
    distinct = max(1, min(num_queries, int(num_queries * distinct_fraction)))
    pool = [apply_random_edits(rng.choice(strings), rng.randint(0, tau), rng)
            for _ in range(distinct)]
    workload = [rng.choice(pool) for _ in range(num_queries)]

    table = ExperimentTable(
        key="service-throughput",
        title="Online service throughput: query cache off vs on",
        columns=["dataset", "tau", "queries", "distinct", "cache", "seconds",
                 "qps", "speedup", "hit_rate", "total_matches"],
        notes=f"{distinct} distinct queries repeated to {num_queries} "
              "requests; serving core only (no TCP transport); " + _SCALE_NOTE,
    )
    measured: list[tuple[str, float, float, int]] = []
    for label, capacity in (("off", 0), ("on", cache_capacity)):
        service = SimilarityService(
            strings, ServiceConfig(max_tau=tau, cache_capacity=capacity))
        keys = [("search", query, tau) for query in workload]
        total_matches = 0
        with Timer() as timer:
            for key in keys:
                matches, _ = service.execute_queries([key])[0]
                total_matches += len(matches)
        measured.append((label, timer.seconds,
                         service.cache.stats.hit_rate, total_matches))
    baseline_seconds = measured[0][1]
    for label, seconds, hit_rate, total_matches in measured:
        table.add_row(dataset=name, tau=tau, queries=num_queries,
                      distinct=distinct, cache=label,
                      seconds=round(seconds, 6),
                      qps=round(num_queries / max(seconds, 1e-9), 1),
                      speedup=round(baseline_seconds / max(seconds, 1e-9), 3),
                      hit_rate=round(hit_rate, 4),
                      total_matches=total_matches)
    return table


# ----------------------------------------------------------------------
# Batch search (beyond the paper — the batch-probe executor)
# ----------------------------------------------------------------------
def batch_search(scale: float = 1.0, name: str = "author", tau: int = 2,
                 num_queries: int | None = None, batch_size: int = 64,
                 distinct_fraction: float = 0.1,
                 seed: int = 7, mixed_tau: bool = False) -> ExperimentTable:
    """Per-query ``search()`` vs the grouped ``search_many()`` batch path.

    A repeated-query workload (``distinct_fraction`` of the requests are
    distinct) runs against one :class:`~repro.search.PassJoinSearcher`
    twice: once as sequential per-query searches and once in
    ``batch_size``-query batches through the batch-probe executor, which
    probes duplicate queries once and shares the selection-window
    computation between same-length queries.  Both runs must return
    element-identical results per query — the benchmark asserts it.

    With ``mixed_tau`` every query draws its own threshold from
    ``1..tau``, the workload where the v2 executor's persistent window
    cache and fused posting scans matter: selection windows depend only on
    the index partition threshold, so same-length queries share them even
    across different per-query taus and across batches.  The
    ``windows_cache_hits`` and ``postings_fanout`` columns record the
    per-run deltas of the matching funnel counters.

    The table also records the columnar index memory
    (:meth:`SegmentIndex.memory_report
    <repro.core.index.SegmentIndex.memory_report>`) next to the estimated
    footprint of the pre-columnar object-list layout
    (:meth:`~repro.core.index.SegmentIndex.object_layout_bytes`), the other
    half of the refactor's win.
    """
    import random

    from ..datasets.corruption import apply_random_edits
    from ..search.searcher import PassJoinSearcher

    strings = build_datasets(scale, [name])[name]
    if num_queries is None:
        num_queries = max(2 * batch_size, int(640 * scale))
    rng = random.Random(seed)
    distinct = max(1, min(num_queries, int(num_queries * distinct_fraction)))
    pool = [apply_random_edits(rng.choice(strings), rng.randint(0, tau), rng)
            for _ in range(distinct)]
    workload = [rng.choice(pool) for _ in range(num_queries)]
    if mixed_tau:
        taus = [rng.randint(1, max(1, tau)) for _ in workload]
    else:
        taus = [tau] * len(workload)

    searcher = PassJoinSearcher(strings, max_tau=tau)
    memory = searcher._index.memory_report()
    object_bytes = searcher._index.object_layout_bytes()

    def funnel_counters() -> tuple[int, int]:
        stats = searcher.statistics
        return stats.num_windows_cache_hits, stats.num_postings_fanout

    marker = funnel_counters()
    with Timer() as sequential_timer:
        sequential = [searcher.search(query, query_tau)
                      for query, query_tau in zip(workload, taus)]
    after = funnel_counters()
    sequential_counters = tuple(now - then
                                for now, then in zip(after, marker))
    marker = after
    with Timer() as batch_timer:
        batched: list = []
        for start in range(0, len(workload), batch_size):
            batched.extend(searcher.search_many(
                workload[start:start + batch_size],
                taus[start:start + batch_size]))
    batch_counters = tuple(now - then for now, then
                           in zip(funnel_counters(), marker))
    if batched != sequential:
        raise AssertionError(
            "batch-probe executor disagrees with per-query search")

    table = ExperimentTable(
        key="batch-search",
        title="Batch-probe executor: sequential vs batched search",
        columns=["dataset", "tau", "queries", "distinct", "batch_size",
                 "mode", "seconds", "qps", "speedup", "total_matches",
                 "windows_cache_hits", "postings_fanout",
                 "index_bytes", "object_index_bytes"],
        notes=f"{distinct} distinct queries repeated to {num_queries} "
              f"requests in batches of {batch_size}; results asserted "
              "element-identical; windows_cache_hits / postings_fanout are "
              "the per-run funnel-counter deltas; index_bytes is the "
              "columnar layout (postings + record columns), "
              "object_index_bytes the estimated pre-columnar object-list "
              "layout; " + _SCALE_NOTE,
    )
    tau_label = f"1..{max(1, tau)}" if mixed_tau else tau
    baseline_seconds = sequential_timer.seconds
    for mode, seconds, results, counters in (
            ("sequential", sequential_timer.seconds, sequential,
             sequential_counters),
            ("batch", batch_timer.seconds, batched, batch_counters)):
        table.add_row(dataset=name, tau=tau_label, queries=num_queries,
                      distinct=distinct, batch_size=batch_size, mode=mode,
                      seconds=round(seconds, 6),
                      qps=round(num_queries / max(seconds, 1e-9), 1),
                      speedup=round(baseline_seconds / max(seconds, 1e-9), 3),
                      total_matches=sum(len(matches) for matches in results),
                      windows_cache_hits=counters[0],
                      postings_fanout=counters[1],
                      index_bytes=memory["approximate_bytes"],
                      object_index_bytes=object_bytes)
    return table


# ----------------------------------------------------------------------
# Filter funnel (beyond the paper — the observability layer's view)
# ----------------------------------------------------------------------
def filter_funnel(scale: float = 1.0, name: str = "author",
                  taus: Sequence[int] = (1, 2, 3),
                  num_queries: int | None = None,
                  seed: int = 7) -> ExperimentTable:
    """Per-stage survivor counts of the search path's filter funnel.

    Runs a corrupted-query workload against a fresh
    :class:`~repro.search.PassJoinSearcher` per threshold and reports the
    engine's funnel counters — the same counters the service's ``metrics``
    op exposes as ``engine_*`` — stage by stage: selected substrings →
    index probes → postings scanned → candidates (id-column survivors) →
    verifications → accepted.  ``verify_rate`` (verifications per accepted
    match) is the filter-quality headline: the closer to 1.0, the less
    wasted verifier work, which is the paper's central claim made
    continuously measurable.
    """
    import random

    from ..datasets.corruption import apply_random_edits
    from ..search.searcher import PassJoinSearcher
    from .reporting import funnel_metrics

    strings = build_datasets(scale, [name])[name]
    if num_queries is None:
        num_queries = max(20, int(200 * scale))
    max_tau = max(taus)
    rng = random.Random(seed)
    workload = [apply_random_edits(rng.choice(strings),
                                   rng.randint(0, max_tau), rng)
                for _ in range(num_queries)]

    table = ExperimentTable(
        key="filter-funnel",
        title="Filter funnel: per-stage survivors on the search path",
        columns=["dataset", "tau", "queries", "selected_substrings",
                 "index_probes", "postings_scanned", "candidates",
                 "verifications", "accepted", "verify_rate"],
        notes="counters mirror the service's engine_* metrics; verify_rate "
              "= verifications per accepted match (lower is a tighter "
              "filter); " + _SCALE_NOTE,
    )
    for tau in taus:
        searcher = PassJoinSearcher(strings, max_tau=tau)
        for query in workload:
            searcher.search(query, tau)
        funnel = funnel_metrics(searcher.statistics)
        accepted = funnel["num_accepted"]
        table.add_row(dataset=name, tau=tau, queries=num_queries,
                      selected_substrings=funnel["num_selected_substrings"],
                      index_probes=funnel["num_index_probes"],
                      postings_scanned=funnel["num_postings_scanned"],
                      candidates=funnel["num_candidates"],
                      verifications=funnel["num_verifications"],
                      accepted=accepted,
                      verify_rate=round(
                          funnel["num_verifications"] / max(accepted, 1), 3))
    return table


# ----------------------------------------------------------------------
# Sharded serving throughput (beyond the paper — the sharded serving tier)
# ----------------------------------------------------------------------
def sharded_throughput(scale: float = 1.0, name: str = "author", tau: int = 2,
                       num_queries: int | None = None,
                       shard_counts: Sequence[int] = (1, 2, 3),
                       policy: str = "hash", backend: str = "auto",
                       seed: int = 7) -> ExperimentTable:
    """Queries/sec of the serving core as the collection is sharded.

    The same (all-distinct, cache-off) query workload runs against the
    serving core configured with each shard count in ``shard_counts``;
    ``shards=1`` is the unsharded :class:`~repro.service.DynamicSearcher`
    baseline for the ``speedup`` column; it is always swept, first, no
    matter how ``shard_counts`` is spelled.  Every row must report the same
    total number of matches — the sharded tier is exact by construction,
    and the benchmark asserts it.

    Speedup depends on the machine: with the ``process`` backend each shard
    worker searches a ~``1/N`` slice concurrently on its own core, while on
    a 1-CPU box (or under the in-process ``thread`` backend) scatter-gather
    costs are pure overhead and the column documents exactly that.  The
    table notes record the CPU budget and resolved backend so the numbers
    are interpretable either way.
    """
    import random

    from ..config import ServiceConfig
    from ..datasets.corruption import apply_random_edits
    from ..service.server import SimilarityService
    from ..service.sharding import resolve_shard_backend

    strings = build_datasets(scale, [name])[name]
    if num_queries is None:
        num_queries = max(20, int(400 * scale))
    rng = random.Random(seed)
    workload = [apply_random_edits(rng.choice(strings), rng.randint(0, tau), rng)
                for _ in range(num_queries)]
    keys = [("search", query, tau) for query in workload]

    # The unsharded run is the baseline: always present, always first.
    shard_counts = (1, *[count for count in shard_counts if count != 1])
    resolved = resolve_shard_backend(backend)
    table = ExperimentTable(
        key="sharded-throughput",
        title="Sharded serving tier: throughput vs shard count",
        columns=["dataset", "tau", "queries", "shards", "policy", "backend",
                 "seconds", "qps", "speedup", "total_matches"],
        notes=f"{available_cpus()} CPU(s) available, backend resolves to "
              f"{resolved!r}; cache disabled so every query is a real index "
              f"pass; on 1 CPU scatter-gather is pure overhead — speedup "
              f"needs a multi-core runner; " + _SCALE_NOTE,
    )
    baseline_seconds: float | None = None
    for shards in shard_counts:
        service = SimilarityService(strings, ServiceConfig(
            max_tau=tau, cache_capacity=0, shards=shards,
            shard_policy=policy, shard_backend=backend))
        try:
            total_matches = 0
            with Timer() as timer:
                for key in keys:
                    matches, _ = service.execute_queries([key])[0]
                    total_matches += len(matches)
        finally:
            service.close()
        if shards == 1:
            baseline_seconds = timer.seconds
        assert baseline_seconds is not None  # shards=1 is swept first
        table.add_row(dataset=name, tau=tau, queries=num_queries,
                      shards=shards, policy=policy if shards > 1 else "-",
                      backend=resolved if shards > 1 else "unsharded",
                      seconds=round(timer.seconds, 6),
                      qps=round(num_queries / max(timer.seconds, 1e-9), 1),
                      speedup=round(baseline_seconds
                                    / max(timer.seconds, 1e-9), 3),
                      total_matches=total_matches)
    return table


# ----------------------------------------------------------------------
# Resharding throughput (beyond the paper — the elastic shard fleet)
# ----------------------------------------------------------------------
def resharding_throughput(scale: float = 1.0, name: str = "author",
                          tau: int = 2, num_queries: int | None = None,
                          policy: str = "hash", backend: str = "thread",
                          migration_batch: int = 64,
                          seed: int = 7) -> ExperimentTable:
    """Serving throughput while the shard fleet is resized live.

    Runs one query workload five times against a sharded serving core
    (cache off): at a steady 2 shards, *while* an ``add-shard`` rebalance
    streams records to a third shard (one bounded migration step between
    queries — the interleaving a live server produces), at a steady 3
    shards, while a ``remove-shard`` rebalance retires the third shard,
    and at a steady 2 shards again.  Every single answer — including every
    answer produced mid-migration — is asserted element-identical to an
    unsharded :class:`~repro.service.DynamicSearcher` over the same
    collection: the experiment *is* the zero-downtime claim, measured.

    ``rows_moved``/``moved_frac`` report the migration volume of the two
    resize phases: the consistent-hash ``hash`` policy moves ~1/N of the
    collection where the legacy ``modulo`` map would move nearly all of it.
    """
    import random

    from ..config import ServiceConfig
    from ..datasets.corruption import apply_random_edits
    from ..service.dynamic import DynamicSearcher
    from ..service.server import SimilarityService
    from ..service.sharding import resolve_shard_backend

    strings = build_datasets(scale, [name])[name]
    if num_queries is None:
        num_queries = max(20, int(300 * scale))
    rng = random.Random(seed)
    workload = [apply_random_edits(rng.choice(strings), rng.randint(0, tau), rng)
                for _ in range(num_queries)]
    keys = [("search", query, tau) for query in workload]

    oracle = DynamicSearcher(strings, max_tau=tau)
    expected = [oracle.search(query, tau) for query in workload]

    resolved = resolve_shard_backend(backend)
    table = ExperimentTable(
        key="resharding-throughput",
        title="Elastic shard fleet: throughput while resharding",
        columns=["dataset", "tau", "queries", "phase", "shards", "policy",
                 "seconds", "qps", "rows_moved", "moved_frac"],
        notes=f"{available_cpus()} CPU(s) available, backend resolves to "
              f"{resolved!r}, migration_batch={migration_batch}; cache "
              f"disabled so every query is a real index pass; every answer "
              f"(mid-migration included) is asserted element-identical to "
              f"an unsharded searcher; on 1 CPU the resize phases pay the "
              f"migration work on the serving core's only core, so their "
              f"qps dips — the point is that it never drops to zero; "
              + _SCALE_NOTE,
    )
    service = SimilarityService(strings, ServiceConfig(
        max_tau=tau, cache_capacity=0, shards=2, shard_policy=policy,
        shard_backend=backend, migration_batch=migration_batch))

    def run_phase(phase: str, resize: str | None) -> None:
        rows_moved = 0
        with Timer() as timer:
            if resize is not None:
                started = service.handle_request({"op": resize,
                                                  "drain": False})
                if not started.get("ok"):
                    # A silently failed resize would degrade this phase
                    # into a steady-state run and report the *previous*
                    # migration's row counts — fail loudly instead.
                    raise AssertionError(
                        f"{phase}: {resize} failed: {started.get('error')}")
            for key, matches in zip(keys, expected):
                if resize is not None:
                    service.migration_step()
                answer, _ = service.execute_queries([key])[0]
                if answer != matches:
                    raise AssertionError(
                        f"{phase}: sharded answer diverged from the "
                        f"unsharded oracle for query {key[1]!r}")
            if resize is not None:
                while service.rebalance_status()["active"]:
                    service.migration_step()
        if resize is not None:
            rows_moved = service.rebalance_status()["rows_copied"]
        table.add_row(dataset=name, tau=tau, queries=num_queries,
                      phase=phase, shards=service.searcher.num_shards,
                      policy=policy, seconds=round(timer.seconds, 6),
                      qps=round(num_queries / max(timer.seconds, 1e-9), 1),
                      rows_moved=rows_moved,
                      moved_frac=round(rows_moved / max(len(strings), 1), 3))

    try:
        run_phase("steady-2", None)
        run_phase("during-add", "add-shard")
        run_phase("steady-3", None)
        run_phase("during-remove", "remove-shard")
        run_phase("steady-2-after", None)
    finally:
        service.close()
    return table


# ----------------------------------------------------------------------
# Replica scaling (beyond the paper — the read-replica fleet)
# ----------------------------------------------------------------------
def replica_scaling(scale: float = 1.0, name: str = "author", tau: int = 2,
                    num_queries: int | None = None,
                    replica_counts: Sequence[int] = (0, 1, 2),
                    readers: int = 4, backend: str = "auto",
                    seed: int = 7) -> ExperimentTable:
    """Read queries/sec as replicas are added to a single-shard fleet.

    A fixed pool of ``readers`` concurrent reader threads drives the same
    query workload against a one-shard :class:`~repro.service.ShardRouter`
    configured with each replica count in ``replica_counts``;
    ``replicas=0`` is the replica-free baseline for the ``speedup`` column
    and is always swept, first, no matter how ``replica_counts`` is
    spelled.  Every single answer is asserted element-identical to an
    unsharded :class:`~repro.service.DynamicSearcher` over the same
    collection — replicas never trade exactness for throughput.

    With ``replicas=0`` all readers serialise on the primary worker's
    request lock; with N replicas the read schedule rotates the same
    readers across N independent workers, so with the ``process`` backend
    on a multi-core box read throughput scales toward ``min(readers, N)``
    concurrent index passes.  On 1 CPU (or under the in-process ``thread``
    backend) replica workers add routing overhead without adding cores,
    and the column documents exactly that; the table notes record the CPU
    budget and resolved backend so the numbers are interpretable either
    way.  ``replica_reads`` counts reads served by replicas (never stale
    ones — a lagging replica falls through to the primary).
    """
    import random
    import threading

    from ..datasets.corruption import apply_random_edits
    from ..service.dynamic import DynamicSearcher
    from ..service.sharding import ShardRouter, resolve_shard_backend

    strings = build_datasets(scale, [name])[name]
    if num_queries is None:
        num_queries = max(20, int(300 * scale))
    rng = random.Random(seed)
    workload = [apply_random_edits(rng.choice(strings), rng.randint(0, tau), rng)
                for _ in range(num_queries)]

    oracle = DynamicSearcher(strings, max_tau=tau)
    expected = [oracle.search(query, tau) for query in workload]

    # The replica-free run is the baseline: always present, always first.
    replica_counts = (0, *[count for count in replica_counts if count != 0])
    resolved = resolve_shard_backend(backend)
    table = ExperimentTable(
        key="replica-scaling",
        title="Read-replica fleet: read throughput vs replica count",
        columns=["dataset", "tau", "queries", "replicas", "readers",
                 "backend", "seconds", "qps", "speedup", "replica_reads",
                 "total_matches"],
        notes=f"{available_cpus()} CPU(s) available, backend resolves to "
              f"{resolved!r}, {readers} concurrent reader threads; every "
              f"answer is asserted element-identical to an unsharded "
              f"searcher; on 1 CPU replica routing is pure overhead — "
              f"speedup needs a multi-core runner; " + _SCALE_NOTE,
    )

    def run_readers(router: ShardRouter) -> int:
        failures: list[str] = []
        matched = [0] * readers

        def read_slice(slot: int) -> None:
            for index in range(slot, len(workload), readers):
                answer = router.search(workload[index], tau)
                if answer != expected[index]:
                    failures.append(workload[index])
                    return
                matched[slot] += len(answer)

        threads = [threading.Thread(target=read_slice, args=(slot,))
                   for slot in range(readers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if failures:
            raise AssertionError(
                f"replicated answer diverged from the unsharded oracle "
                f"for query {failures[0]!r}")
        return sum(matched)

    baseline_seconds: float | None = None
    for replicas in replica_counts:
        router = ShardRouter(strings, shards=1, max_tau=tau,
                             backend=backend, replicas_per_shard=replicas)
        try:
            with Timer() as timer:
                total_matches = run_readers(router)
            replica_reads = router.replica_reads
        finally:
            router.close()
        if replicas == 0:
            baseline_seconds = timer.seconds
        assert baseline_seconds is not None  # replicas=0 is swept first
        table.add_row(dataset=name, tau=tau, queries=num_queries,
                      replicas=replicas, readers=readers,
                      backend=resolved if replicas else "primary-only",
                      seconds=round(timer.seconds, 6),
                      qps=round(num_queries / max(timer.seconds, 1e-9), 1),
                      speedup=round(baseline_seconds
                                    / max(timer.seconds, 1e-9), 3),
                      replica_reads=replica_reads,
                      total_matches=total_matches)
    return table


# ----------------------------------------------------------------------
# Ablations (beyond the paper's figures)
# ----------------------------------------------------------------------
def ablation_partition_strategies(scale: float = 1.0, name: str = "author",
                                  tau: int = 3) -> ExperimentTable:
    """Even vs deliberately skewed partitions: why the paper partitions evenly."""
    table = ExperimentTable(
        key="ablation-partition",
        title="Partition strategy ablation",
        columns=["dataset", "tau", "strategy", "candidates", "total_seconds",
                 "results"],
        notes="left/right-heavy create single-character segments with poor "
              "selectivity; candidate counts explode relative to even",
    )
    strings = build_datasets(scale, [name])[name]
    for strategy in PartitionStrategy:
        config = JoinConfig(partition=strategy)
        result = PassJoin(tau, config).self_join(strings)
        table.add_row(dataset=name, tau=tau, strategy=strategy.value,
                      candidates=result.statistics.num_candidates,
                      total_seconds=round(result.statistics.total_seconds, 6),
                      results=len(result))
    return table


def ablation_verifier_kernels(scale: float = 1.0, name: str = "querylog",
                              tau: int = 6) -> ExperimentTable:
    """Length-aware banded DP vs bit-parallel Myers verification."""
    table = ExperimentTable(
        key="ablation-verifier",
        title="Verifier kernel ablation",
        columns=["dataset", "tau", "method", "verification_seconds", "results"],
        notes="Myers is exact but ignores the threshold band; the paper's "
              "length-aware kernel exploits tau",
    )
    strings = build_datasets(scale, [name])[name]
    for method in (VerificationMethod.LENGTH_AWARE, VerificationMethod.MYERS,
                   VerificationMethod.MYERS_BATCH,
                   VerificationMethod.SHARE_PREFIX):
        config = JoinConfig(verification=method)
        result = PassJoin(tau, config).self_join(strings)
        table.add_row(dataset=name, tau=tau, method=method.value,
                      verification_seconds=round(
                          result.statistics.verification_seconds, 6),
                      results=len(result))
    return table


def verification_kernels(scale: float = 1.0, name: str = "author",
                         tau: int = 3, repeats: int = 3) -> ExperimentTable:
    """Batched vs per-pair verification kernels on the Figure 14 workload.

    One verification-dominated Figure 14 configuration is joined with the
    paper's length-aware kernel (the correctness oracle), the per-pair
    bit-parallel Myers kernel (the speedup baseline) and the batched Myers
    kernel.  Every method's ``(left_id, right_id, distance)`` triple set is
    asserted equal to the oracle's — a fast-but-wrong kernel must fail the
    experiment, not win it.  ``verification_seconds`` is the best of
    ``repeats`` runs (the standard guard against scheduler noise on the
    1-CPU CI box) and ``speedup_vs_myers`` divides the per-pair Myers time
    by the method's own.
    """
    table = ExperimentTable(
        key="verification-kernels",
        title="Verification kernels: batched vs per-pair (Figure 14 config)",
        columns=["dataset", "tau", "method", "verification_seconds",
                 "matrix_cells", "verifications", "speedup_vs_myers",
                 "results"],
        notes="result triple-sets asserted identical across kernels; "
              "speedup_vs_myers = per-pair Myers verification_seconds over "
              "the method's own (best of %d runs); " % repeats + _SCALE_NOTE,
    )
    strings = build_datasets(scale, [name])[name]
    methods = (VerificationMethod.LENGTH_AWARE, VerificationMethod.MYERS,
               VerificationMethod.MYERS_BATCH)

    measurements: dict[VerificationMethod, tuple[float, object]] = {}
    oracle_pairs: set[tuple[int, int, int]] | None = None
    for method in methods:
        config = JoinConfig(selection=SelectionMethod.MULTI_MATCH,
                            verification=method)
        best_seconds = float("inf")
        best_stats = None
        for _ in range(max(1, repeats)):
            result = PassJoin(tau, config).self_join(strings)
            pairs = {(pair.left_id, pair.right_id, pair.distance)
                     for pair in result.pairs}
            if oracle_pairs is None:
                oracle_pairs = pairs
            elif pairs != oracle_pairs:
                raise AssertionError(
                    f"{method.value} result set diverged from "
                    f"{methods[0].value}: {len(pairs)} vs "
                    f"{len(oracle_pairs)} pairs")
            if result.statistics.verification_seconds < best_seconds:
                best_seconds = result.statistics.verification_seconds
                best_stats = result.statistics
        measurements[method] = (best_seconds, best_stats)

    myers_seconds = measurements[VerificationMethod.MYERS][0]
    for method in methods:
        seconds, stats = measurements[method]
        table.add_row(dataset=name, tau=tau, method=method.value,
                      verification_seconds=round(seconds, 6),
                      matrix_cells=stats.num_matrix_cells,
                      verifications=stats.num_verifications,
                      speedup_vs_myers=round(myers_seconds / max(seconds, 1e-9),
                                             2),
                      results=len(oracle_pairs))
    return table


def ablation_filter_quality(scale: float = 1.0, name: str = "author",
                            tau: int = 2, q: int = 3) -> ExperimentTable:
    """Candidate counts of every algorithm vs the true result count.

    A compact view of filter quality: the closer ``candidates`` is to
    ``results``, the less verification work an algorithm pays for.
    """
    table = ExperimentTable(
        key="ablation-filter-quality",
        title="Filter quality (candidates vs results)",
        columns=["dataset", "tau", "algorithm", "candidates", "results"],
        notes="candidates counts pairs handed to the verifier",
    )
    strings = build_datasets(scale, [name])[name]
    algorithms = [
        ("naive", NaiveJoin(tau)),
        ("part-enum", PartEnumJoin(tau, q=2)),
        ("ed-join", EdJoin(tau, q=q)),
        ("trie-join", TrieJoin(tau)),
        ("pass-join", PassJoin(tau)),
    ]
    for label, algorithm in algorithms:
        result = algorithm.self_join(strings)
        table.add_row(dataset=name, tau=tau, algorithm=label,
                      candidates=result.statistics.num_candidates,
                      results=len(result))
    return table


# ----------------------------------------------------------------------
# Similarity kernels (beyond the paper — the pluggable-kernel layer)
# ----------------------------------------------------------------------
def kernel_comparison(scale: float = 1.0, name: str = "title",
                      ed_tau: int = 2, jaccard_tau: int = 40,
                      num_queries: int | None = None,
                      seed: int = 7) -> ExperimentTable:
    """Both similarity kernels serving the same workload, side by side.

    One corrupted-query workload over the multi-token ``title`` dataset is
    answered twice through the same :class:`~repro.search.PassJoinSearcher`
    front end — once under the ``edit-distance`` kernel (character edits,
    partition segments) and once under ``token-jaccard`` (token sets,
    prefix-filter signatures).  Thresholds are chosen to be *semantically*
    comparable, not numerically: ``ed_tau`` character edits vs a scaled
    Jaccard distance of ``jaccard_tau`` (``<= jaccard_tau/100`` dissimilar).

    Every kernel's results are asserted element-identical to a brute-force
    scan with its own distance function — a fast-but-wrong kernel fails the
    experiment rather than winning it.  The funnel columns show what the
    two signature schemes hand the verifier on identical text.
    """
    import random

    from ..core.kernel import token_jaccard_distance
    from ..datasets.corruption import apply_random_edits
    from ..distance import edit_distance
    from ..search.searcher import PassJoinSearcher

    strings = build_datasets(scale, [name])[name]
    if num_queries is None:
        num_queries = max(16, int(128 * scale))
    rng = random.Random(seed)
    workload = [apply_random_edits(rng.choice(strings), rng.randint(0, 3),
                                   rng)
                for _ in range(num_queries)]

    table = ExperimentTable(
        key="kernel-comparison",
        title="Similarity kernels: edit distance vs token-set Jaccard",
        columns=["dataset", "kernel", "tau", "queries", "seconds", "qps",
                 "candidates", "verifications", "accepted", "total_matches",
                 "index_bytes"],
        notes="same workload through both kernels; each kernel's matches "
              "are asserted element-identical to a brute-force scan with "
              "its own distance; tau semantics differ by design "
              "(character edits vs scaled Jaccard distance); " + _SCALE_NOTE,
    )
    oracles = {"edit-distance": edit_distance,
               "token-jaccard": token_jaccard_distance}
    for kernel, tau in (("edit-distance", ed_tau),
                        ("token-jaccard", jaccard_tau)):
        searcher = PassJoinSearcher(strings, max_tau=tau, kernel=kernel)
        with Timer() as timer:
            results = [searcher.search(query, tau) for query in workload]
        distance = oracles[kernel]
        for query, matches in zip(workload, results):
            expected = sorted(
                (record_id, text) for record_id, text in enumerate(strings)
                if distance(text, query) <= tau)
            if sorted((m.id, m.text) for m in matches) != expected:
                raise AssertionError(
                    f"{kernel} kernel disagrees with brute force on "
                    f"{query!r}")
        stats = searcher.statistics
        table.add_row(dataset=name, kernel=kernel, tau=tau,
                      queries=num_queries,
                      seconds=round(timer.seconds, 6),
                      qps=round(num_queries / max(timer.seconds, 1e-9), 1),
                      candidates=stats.num_candidates,
                      verifications=stats.num_verifications,
                      accepted=stats.num_accepted,
                      total_matches=sum(len(m) for m in results),
                      index_bytes=stats.index_bytes)
    return table


#: Registry used by the CLI and by EXPERIMENTS.md generation.
EXPERIMENTS: dict[str, Callable[..., ExperimentTable]] = {
    "table2": table2_dataset_statistics,
    "table3": table3_index_sizes,
    "figure11": fig11_length_distribution,
    "figure12": fig12_selected_substrings,
    "figure13": fig13_selection_time,
    "figure14": fig14_verification,
    "figure15": fig15_comparison,
    "figure16": fig16_scalability,
    "parallel-scaling": parallel_scaling,
    "service-throughput": service_throughput,
    "batch-search": batch_search,
    "filter-funnel": filter_funnel,
    "sharded-throughput": sharded_throughput,
    "resharding-throughput": resharding_throughput,
    "replica-scaling": replica_scaling,
    "ablation-partition": ablation_partition_strategies,
    "ablation-verifier": ablation_verifier_kernels,
    "verification-kernels": verification_kernels,
    "ablation-filter-quality": ablation_filter_quality,
    "kernel-comparison": kernel_comparison,
}
