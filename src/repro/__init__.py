"""Pass-Join: a partition-based method for string similarity joins.

A from-scratch reproduction of Li, Deng, Wang, Feng, *"Pass-Join: A
Partition-based Method for Similarity Joins"*, PVLDB 5(3), 2011.

Quick start
-----------
>>> from repro import pass_join
>>> result = pass_join(["vldb", "pvldb", "sigmod", "sigmmod"], tau=1)
>>> sorted((p.left, p.right) for p in result)
[('sigmod', 'sigmmod'), ('vldb', 'pvldb')]

On large collections, fan the probe phase out over CPU cores — the result
set is identical to the serial join:

>>> import repro
>>> result = repro.join(["vldb", "pvldb", "sigmod", "sigmmod"], tau=1,
...                     workers=2)
>>> sorted((p.left, p.right) for p in result)
[('sigmod', 'sigmmod'), ('vldb', 'pvldb')]

The top-level package re-exports the public API:

* :func:`join` — one-call serial/parallel join (``workers=N``).
* :func:`pass_join` / :func:`pass_join_rs` / :class:`PassJoin` — the join.
* :class:`ParallelPassJoin` — the chunk-parallel driver behind :func:`join`.
* :func:`edit_distance` and the bounded kernels — the distance substrate.
* :mod:`repro.core.kernel` — pluggable similarity kernels
  (:func:`get_kernel`): character edit distance and token-set Jaccard,
  served through the same index/cache/shard stack.
* :class:`JoinConfig` and the method enums — configuration.
* :mod:`repro.service` — the online serving layer: :class:`DynamicSearcher`
  (mutable index), :class:`QueryCache`, :class:`RequestBatcher`, and the
  asyncio JSON-lines server/clients behind ``passjoin serve`` / ``query``.
* :mod:`repro.baselines` — ED-Join, Trie-Join, All-Pairs-Ed, naive join.
* :mod:`repro.datasets` — synthetic dataset generators and loaders.
* :mod:`repro.bench` — the experiment harness reproducing the paper's
  tables and figures.
"""

from .config import (DEFAULT_CONFIG, JoinConfig, PartitionStrategy,
                     SelectionMethod, VerificationMethod)
from .core.index import SegmentIndex
from .core.join import PassJoin, pass_join, pass_join_pairs, pass_join_rs
from .core.kernel import (SimilarityKernel, get_kernel, kernel_names,
                          token_jaccard_distance)
from .core.parallel import (ParallelPassJoin, available_workers, join,
                            parallel_self_join)
from .core.partition import partition, segment_layout
from .core.selection import make_selector
from .core.verify import make_verifier
from .distance import (banded_edit_distance, edit_distance,
                       length_aware_edit_distance, myers_edit_distance)
from .exceptions import (ConfigurationError, DatasetError, InvalidPartitionError,
                         InvalidThresholdError, PassJoinError, UnknownMethodError)
from .external import PartitionedSelfJoin, partitioned_self_join
from .preprocessing import NormalizationConfig, normalize, normalize_all
from .search import PassJoinSearcher, SearchMatch, search_all
from .service import (AsyncServiceClient, DynamicSearcher, QueryCache,
                      RequestBatcher, ServiceClient, ServiceConfig,
                      SimilarityServer, SimilarityService)
from .topk import closest_pair, top_k_join
from .types import (JoinResult, JoinStatistics, SimilarPair, StringRecord,
                    as_records)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # join
    "join",
    "PassJoin",
    "ParallelPassJoin",
    "parallel_self_join",
    "available_workers",
    "pass_join",
    "pass_join_pairs",
    "pass_join_rs",
    # extensions: search, top-k, out-of-core
    "PassJoinSearcher",
    "SearchMatch",
    "search_all",
    # online serving (repro.service)
    "DynamicSearcher",
    "QueryCache",
    "RequestBatcher",
    "SimilarityService",
    "SimilarityServer",
    "ServiceClient",
    "AsyncServiceClient",
    "ServiceConfig",
    "top_k_join",
    "closest_pair",
    "PartitionedSelfJoin",
    "partitioned_self_join",
    # preprocessing
    "normalize",
    "normalize_all",
    "NormalizationConfig",
    # configuration
    "JoinConfig",
    "DEFAULT_CONFIG",
    "SelectionMethod",
    "VerificationMethod",
    "PartitionStrategy",
    # similarity kernels
    "SimilarityKernel",
    "get_kernel",
    "kernel_names",
    "token_jaccard_distance",
    # building blocks
    "SegmentIndex",
    "partition",
    "segment_layout",
    "make_selector",
    "make_verifier",
    # distances
    "edit_distance",
    "banded_edit_distance",
    "length_aware_edit_distance",
    "myers_edit_distance",
    # types
    "StringRecord",
    "SimilarPair",
    "JoinResult",
    "JoinStatistics",
    "as_records",
    # exceptions
    "PassJoinError",
    "InvalidThresholdError",
    "InvalidPartitionError",
    "ConfigurationError",
    "UnknownMethodError",
    "DatasetError",
]
