"""Core value types shared across the Pass-Join reproduction library.

The types in this module are deliberately small, immutable (where practical)
data carriers:

* :class:`StringRecord` — a string plus its stable identifier in a collection.
* :class:`Segment` — one piece of an even partition of an indexed string.
* :class:`SimilarPair` — one join result (ids, strings, and edit distance).
* :class:`JoinStatistics` — instrumentation counters collected by a join run.
* :class:`JoinResult` — the pairs plus the statistics of a completed join.

Join algorithms in :mod:`repro.core` and :mod:`repro.baselines` all speak in
these types so that results from different algorithms are directly comparable
(in tests and in the benchmark harness).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence


@dataclass(frozen=True, slots=True)
class StringRecord:
    """A string together with its position in the source collection.

    Join results refer to strings by ``id`` so callers can map pairs back to
    their own records (database rows, file line numbers, ...).
    """

    id: int
    text: str

    @property
    def length(self) -> int:
        """Length of the record's text in characters."""
        return len(self.text)

    def __len__(self) -> int:  # pragma: no cover - trivial delegation
        return len(self.text)


def as_records(strings: Iterable[str | StringRecord]) -> list[StringRecord]:
    """Normalise an iterable of strings (or records) to ``StringRecord``s.

    Plain strings are numbered by their position in the iterable.  Existing
    :class:`StringRecord` instances are passed through unchanged, which lets
    callers keep their own identifier space.
    """
    records: list[StringRecord] = []
    for position, item in enumerate(strings):
        if isinstance(item, StringRecord):
            records.append(item)
        else:
            records.append(StringRecord(id=position, text=str(item)))
    return records


@dataclass(frozen=True, slots=True)
class Segment:
    """One segment of an even partition of a string.

    Attributes
    ----------
    ordinal:
        1-based segment index ``i`` (the paper's :math:`L_l^i` ordinal).
    start:
        0-based start offset of the segment inside its source string.
    text:
        The segment's characters.
    """

    ordinal: int
    start: int
    text: str

    @property
    def length(self) -> int:
        """Number of characters in the segment."""
        return len(self.text)

    @property
    def end(self) -> int:
        """0-based exclusive end offset of the segment in its source string."""
        return self.start + len(self.text)


@dataclass(frozen=True, slots=True, order=True)
class SimilarPair:
    """One similar pair produced by a join.

    The pair is normalised so that ``left_id < right_id`` for self joins;
    for R–S joins ``left_id`` always refers to ``R`` and ``right_id`` to ``S``.
    """

    left_id: int
    right_id: int
    distance: int
    left: str = field(compare=False, default="")
    right: str = field(compare=False, default="")

    def ids(self) -> tuple[int, int]:
        """Return the pair of record identifiers as a tuple."""
        return (self.left_id, self.right_id)


@dataclass(slots=True)
class JoinStatistics:
    """Counters describing the work performed by one join run.

    These counters back the paper's evaluation: Figure 12 counts selected
    substrings, Figure 14 counts verification work, Table 3 reports index
    size.  Every algorithm fills in the counters that make sense for it and
    leaves the others at zero.
    """

    num_strings: int = 0
    num_indexed_segments: int = 0
    num_selected_substrings: int = 0
    num_index_probes: int = 0
    num_postings_scanned: int = 0
    num_candidates: int = 0
    num_verifications: int = 0
    num_accepted: int = 0
    num_results: int = 0
    num_matrix_cells: int = 0
    num_early_terminations: int = 0
    num_windows_reused: int = 0
    num_windows_cache_hits: int = 0
    num_postings_fanout: int = 0
    index_entries: int = 0
    index_bytes: int = 0
    selection_seconds: float = 0.0
    verification_seconds: float = 0.0
    indexing_seconds: float = 0.0
    total_seconds: float = 0.0

    def merge(self, other: "JoinStatistics") -> "JoinStatistics":
        """Return a new statistics object with the counters of both runs."""
        merged = JoinStatistics()
        for name in self.__dataclass_fields__:
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        return merged

    def as_dict(self) -> dict[str, float]:
        """Return the statistics as a plain dictionary (for reporting)."""
        return {name: getattr(self, name) for name in self.__dataclass_fields__}


@dataclass(slots=True)
class JoinResult:
    """The outcome of a join: the similar pairs plus run statistics."""

    pairs: list[SimilarPair]
    statistics: JoinStatistics = field(default_factory=JoinStatistics)

    def __iter__(self) -> Iterator[SimilarPair]:
        return iter(self.pairs)

    def __len__(self) -> int:
        return len(self.pairs)

    def pair_ids(self) -> set[tuple[int, int]]:
        """Return the set of (left_id, right_id) tuples, useful in tests."""
        return {pair.ids() for pair in self.pairs}

    def sorted_pairs(self) -> list[SimilarPair]:
        """Return the pairs sorted by (left_id, right_id, distance)."""
        return sorted(self.pairs)


def normalise_pair(id_a: int, id_b: int, distance: int,
                   text_a: str = "", text_b: str = "") -> SimilarPair:
    """Build a :class:`SimilarPair` with the smaller id on the left.

    Self joins must report each unordered pair exactly once; normalising the
    orientation here keeps the dedup logic in one place.
    """
    if id_a <= id_b:
        return SimilarPair(left_id=id_a, right_id=id_b, distance=distance,
                           left=text_a, right=text_b)
    return SimilarPair(left_id=id_b, right_id=id_a, distance=distance,
                       left=text_b, right=text_a)


def records_by_length(records: Sequence[StringRecord]) -> dict[int, list[StringRecord]]:
    """Group records by string length (ascending key order not guaranteed)."""
    groups: dict[int, list[StringRecord]] = {}
    for record in records:
        groups.setdefault(record.length, []).append(record)
    return groups
