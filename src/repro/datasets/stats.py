"""Dataset statistics: Table 2 and Figure 11 of the paper.

:func:`dataset_statistics` computes the cardinality / average / maximum /
minimum length row of Table 2 for any string collection, and
:func:`length_histogram` produces the string-length distribution plotted in
Figure 11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True, slots=True)
class DatasetStats:
    """Summary statistics of a string collection (one row of Table 2)."""

    cardinality: int
    avg_length: float
    max_length: int
    min_length: int

    def as_row(self) -> dict[str, float | int]:
        """Return the statistics as a report-friendly mapping."""
        return {
            "cardinality": self.cardinality,
            "avg_len": round(self.avg_length, 2),
            "max_len": self.max_length,
            "min_len": self.min_length,
        }


def dataset_statistics(strings: Sequence[str]) -> DatasetStats:
    """Compute cardinality and length statistics of ``strings``.

    An empty collection yields zeros rather than raising, so callers can
    report on filtered subsets without special-casing.
    """
    if not strings:
        return DatasetStats(cardinality=0, avg_length=0.0, max_length=0, min_length=0)
    lengths = [len(text) for text in strings]
    return DatasetStats(
        cardinality=len(strings),
        avg_length=sum(lengths) / len(lengths),
        max_length=max(lengths),
        min_length=min(lengths),
    )


def length_histogram(strings: Sequence[str], bucket_size: int = 1) -> dict[int, int]:
    """Histogram of string lengths (Figure 11).

    Keys are bucket lower bounds (``length // bucket_size * bucket_size``),
    values are string counts.  ``bucket_size=1`` gives the exact
    distribution; larger buckets are convenient for long-string datasets.
    """
    if bucket_size <= 0:
        raise ValueError(f"bucket_size must be positive, got {bucket_size}")
    histogram: dict[int, int] = {}
    for text in strings:
        bucket = (len(text) // bucket_size) * bucket_size
        histogram[bucket] = histogram.get(bucket, 0) + 1
    return dict(sorted(histogram.items()))
