"""Dataset substrate: synthetic stand-ins for the paper's corpora.

The paper evaluates on three real datasets (DBLP Author, AOL Query Log,
DBLP Author+Title) that are not redistributable here.  The generators in
:mod:`repro.datasets.synthetic` produce corpora with the same *shape* —
cardinality, length distribution, alphabet, and near-duplicate density —
which is what drives the relative behaviour of the join algorithms:

* :func:`generate_author_dataset` — short strings (person names,
  average length ≈ 15).
* :func:`generate_querylog_dataset` — medium strings (keyword queries,
  average length ≈ 45).
* :func:`generate_title_dataset` — long strings (author + title lines,
  average length ≈ 105).

:mod:`repro.datasets.corruption` plants near-duplicates by applying random
edit operations, :mod:`repro.datasets.stats` computes the Table 2 /
Figure 11 statistics, and :mod:`repro.datasets.loaders` reads and writes
plain-text string collections.
"""

from .corruption import apply_random_edits, make_near_duplicate
from .loaders import load_strings, save_strings
from .stats import DatasetStats, dataset_statistics, length_histogram
from .synthetic import (DatasetSpec, generate_author_dataset, generate_dataset,
                        generate_querylog_dataset, generate_title_dataset)

__all__ = [
    "DatasetSpec",
    "generate_dataset",
    "generate_author_dataset",
    "generate_querylog_dataset",
    "generate_title_dataset",
    "apply_random_edits",
    "make_near_duplicate",
    "load_strings",
    "save_strings",
    "DatasetStats",
    "dataset_statistics",
    "length_histogram",
]
