"""Edit-operation corruption: planting near-duplicates in a dataset.

Real data-cleaning corpora contain clusters of almost-identical strings
(typos, OCR noise, alternative spellings).  The generators plant such
clusters by copying an existing string and applying a small number of
random single-character edit operations — which by construction puts the
copy within a known edit distance of its source, giving the joins
non-trivial result sets of a controllable density.
"""

from __future__ import annotations

import random
import string as _string

DEFAULT_ALPHABET = _string.ascii_lowercase + " "


def apply_random_edits(text: str, edits: int, rng: random.Random,
                       alphabet: str = DEFAULT_ALPHABET) -> str:
    """Apply ``edits`` random single-character operations to ``text``.

    Operations are chosen uniformly among insertion, deletion, and
    substitution (deletions are skipped when the string would become
    empty).  The result is therefore within edit distance ``edits`` of the
    input — possibly less, since random edits can cancel out.

    >>> rng = random.Random(1)
    >>> edited = apply_random_edits("similarity", 2, rng)
    >>> from repro.distance import edit_distance
    >>> edit_distance("similarity", edited) <= 2
    True
    """
    if edits < 0:
        raise ValueError(f"number of edits must be non-negative, got {edits}")
    current = text
    for _ in range(edits):
        operations = ["insert", "substitute"]
        if len(current) > 1:
            operations.append("delete")
        operation = rng.choice(operations)
        if operation == "insert":
            position = rng.randint(0, len(current))
            current = current[:position] + rng.choice(alphabet) + current[position:]
        elif operation == "delete":
            position = rng.randrange(len(current))
            current = current[:position] + current[position + 1:]
        else:
            if not current:
                current = rng.choice(alphabet)
                continue
            position = rng.randrange(len(current))
            current = (current[:position] + rng.choice(alphabet)
                       + current[position + 1:])
    return current


def make_near_duplicate(text: str, rng: random.Random, max_edits: int = 3,
                        alphabet: str = DEFAULT_ALPHABET) -> str:
    """Return a copy of ``text`` within ``1..max_edits`` random edits."""
    if max_edits < 1:
        raise ValueError(f"max_edits must be at least 1, got {max_edits}")
    return apply_random_edits(text, rng.randint(1, max_edits), rng, alphabet)
