"""Reading and writing string collections as plain text files.

The file format is the one used by every string-join benchmark suite: one
string per line, UTF-8 encoded.  Empty lines are skipped on load (an empty
string can never satisfy the paper's ``|s| ≥ τ + 1`` partitioning
assumption and is never a useful join participant).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from ..exceptions import DatasetError


def load_strings(path: str | Path, limit: int | None = None) -> list[str]:
    """Load strings from ``path``, one per line.

    Parameters
    ----------
    path:
        File to read.
    limit:
        Optional maximum number of strings to return (the file is read
        lazily, so huge files with a small limit stay cheap).
    """
    file_path = Path(path)
    if not file_path.exists():
        raise DatasetError(f"dataset file does not exist: {file_path}")
    strings: list[str] = []
    with file_path.open("r", encoding="utf-8", errors="replace") as handle:
        for line in handle:
            text = line.rstrip("\n")
            if not text:
                continue
            strings.append(text)
            if limit is not None and len(strings) >= limit:
                break
    return strings


def save_strings(path: str | Path, strings: Iterable[str]) -> int:
    """Write strings to ``path``, one per line; return the number written.

    Strings containing newline characters are rejected because they would
    not round-trip through :func:`load_strings`.
    """
    file_path = Path(path)
    file_path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with file_path.open("w", encoding="utf-8") as handle:
        for text in strings:
            if "\n" in text:
                raise DatasetError(
                    "strings containing newlines cannot be saved to a line-oriented file")
            handle.write(text)
            handle.write("\n")
            count += 1
    return count
