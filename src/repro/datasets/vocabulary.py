"""Deterministic vocabularies used by the synthetic dataset generators.

The generators need believable tokens (name parts, query keywords, title
words) without shipping megabytes of word lists.  A small seed list is
combined with a syllable composer that expands it into an arbitrarily large
deterministic vocabulary with a roughly Zipfian usage profile (the
generators sample tokens by a Zipf-like rank distribution, so a few tokens
are very common and most are rare — matching what real name and query
corpora look like and, importantly for the join benchmarks, producing
realistic segment/q-gram selectivity).
"""

from __future__ import annotations

import random
from functools import lru_cache

FIRST_NAME_SEEDS = [
    "james", "mary", "john", "patricia", "robert", "jennifer", "michael",
    "linda", "william", "elizabeth", "david", "barbara", "richard", "susan",
    "joseph", "jessica", "thomas", "sarah", "charles", "karen", "wei",
    "ling", "guoliang", "dong", "jiannan", "jianhua", "chen", "yuki",
    "hiroshi", "anna", "ivan", "olga", "pierre", "marie", "hans", "ursula",
    "carlos", "lucia", "ahmed", "fatima", "raj", "priya", "lars", "ingrid",
]

LAST_NAME_SEEDS = [
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
    "davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
    "wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
    "lee", "li", "wang", "zhang", "chen", "feng", "deng", "kumar", "singh",
    "patel", "mueller", "schmidt", "schneider", "fischer", "weber", "meyer",
    "ivanov", "petrov", "sato", "suzuki", "tanaka", "kim", "park", "choi",
]

QUERY_WORD_SEEDS = [
    "cheap", "best", "free", "online", "download", "review", "price",
    "hotel", "flight", "weather", "news", "music", "video", "game",
    "recipe", "restaurant", "movie", "lyrics", "university", "insurance",
    "credit", "mortgage", "doctor", "symptoms", "jobs", "salary", "used",
    "car", "rental", "apartment", "school", "college", "football",
    "baseball", "basketball", "ticket", "concert", "beach", "vacation",
    "wedding", "birthday", "gift", "store", "coupon", "sale",
]

TITLE_WORD_SEEDS = [
    "efficient", "scalable", "adaptive", "distributed", "parallel",
    "approximate", "similarity", "join", "query", "processing",
    "optimization", "index", "partition", "string", "edit", "distance",
    "database", "system", "algorithm", "framework", "analysis", "mining",
    "learning", "graph", "stream", "cloud", "storage", "transaction",
    "concurrency", "recovery", "benchmark", "evaluation", "survey",
    "method", "model", "structure", "search", "filtering", "verification",
    "estimation", "selectivity", "cardinality", "sampling", "clustering",
]

_SYLLABLES = [
    "ba", "be", "bi", "bo", "bu", "da", "de", "di", "do", "du", "ka", "ke",
    "ki", "ko", "ku", "la", "le", "li", "lo", "lu", "ma", "me", "mi", "mo",
    "mu", "na", "ne", "ni", "no", "nu", "ra", "re", "ri", "ro", "ru", "sa",
    "se", "si", "so", "su", "ta", "te", "ti", "to", "tu", "va", "ve", "vi",
    "vo", "vu", "sha", "che", "chi", "tho", "thu", "pra", "pre", "kri",
    "gro", "stu", "war", "ber", "man", "son", "ton", "ville", "field",
]


def _compose_word(rng: random.Random, min_syllables: int, max_syllables: int) -> str:
    """Compose a pronounceable pseudo-word from syllables."""
    count = rng.randint(min_syllables, max_syllables)
    return "".join(rng.choice(_SYLLABLES) for _ in range(count))


@lru_cache(maxsize=32)
def expanded_vocabulary(kind: str, size: int, seed: int = 20110830) -> tuple[str, ...]:
    """Return a deterministic vocabulary of ``size`` tokens for ``kind``.

    ``kind`` selects the seed list (``"first"``, ``"last"``, ``"query"``,
    ``"title"``); additional tokens are composed from syllables until the
    requested size is reached.  Results are cached because the generators
    call this once per dataset.
    """
    seeds = {
        "first": FIRST_NAME_SEEDS,
        "last": LAST_NAME_SEEDS,
        "query": QUERY_WORD_SEEDS,
        "title": TITLE_WORD_SEEDS,
    }.get(kind)
    if seeds is None:
        raise ValueError(f"unknown vocabulary kind {kind!r}")
    rng = random.Random(f"{seed}:{kind}")
    vocabulary = list(seeds)
    syllable_range = (2, 3) if kind in ("first", "last") else (2, 4)
    existing = set(vocabulary)
    while len(vocabulary) < size:
        word = _compose_word(rng, *syllable_range)
        if word not in existing:
            existing.add(word)
            vocabulary.append(word)
    return tuple(vocabulary[:size])


def zipf_choice(vocabulary: tuple[str, ...], rng: random.Random,
                skew: float = 3.0) -> str:
    """Pick a token with a head-heavy, Zipf-like rank distribution.

    The rank is drawn as ``⌊n · u^skew⌋`` with ``u`` uniform in ``(0, 1]``,
    so low ranks (the head of the vocabulary) are picked far more often than
    the tail — e.g. with the default ``skew=3`` the first 10% of the
    vocabulary receives ≈46% of the picks.  This is cheap, needs no
    per-vocabulary precomputation, and is close enough to a Zipf profile for
    workload-generation purposes.
    """
    n = len(vocabulary)
    u = 1.0 - rng.random()
    rank = int(n * (u ** skew))
    if rank >= n:
        rank = n - 1
    return vocabulary[rank]
