"""Synthetic dataset generators mimicking the paper's three corpora.

Table 2 of the paper describes the datasets:

==============  ===========  =======  =======  =======
dataset         cardinality  avg len  max len  min len
==============  ===========  =======  =======  =======
Author              612,781    14.8       46        6
Query Log           464,189    44.8      522       30
Author+Title        863,073   105.8      886       21
==============  ===========  =======  =======  =======

The generators below reproduce the *shape* of each dataset — token
structure, length distribution, alphabet, and near-duplicate density — at a
configurable cardinality (pure Python cannot time-faithfully join 600k+
strings, so the benchmarks default to scaled-down corpora and note the
scale factor in EXPERIMENTS.md).

Every generator is fully deterministic given its seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from ..exceptions import DatasetError
from .corruption import make_near_duplicate
from .vocabulary import expanded_vocabulary, zipf_choice


@dataclass(frozen=True, slots=True)
class DatasetSpec:
    """Parameters of a synthetic dataset.

    Attributes
    ----------
    name:
        Dataset identifier (``author``, ``querylog``, ``title``).
    size:
        Number of strings to generate.
    duplicate_fraction:
        Fraction of strings generated as near-duplicates of an earlier
        string (this controls how many similar pairs the joins find).
    max_duplicate_edits:
        Maximum number of random edits applied to a planted duplicate.
    seed:
        Random seed; identical specs generate identical datasets.
    """

    name: str
    size: int
    duplicate_fraction: float = 0.15
    max_duplicate_edits: int = 4
    seed: int = 2011

    def __post_init__(self) -> None:
        if self.size < 0:
            raise DatasetError(f"dataset size must be non-negative, got {self.size}")
        if not 0.0 <= self.duplicate_fraction <= 1.0:
            raise DatasetError(
                f"duplicate_fraction must be within [0, 1], got {self.duplicate_fraction}")
        if self.max_duplicate_edits < 1:
            raise DatasetError(
                f"max_duplicate_edits must be >= 1, got {self.max_duplicate_edits}")


# ----------------------------------------------------------------------
# Per-dataset string factories
# ----------------------------------------------------------------------
def _author_string(rng: random.Random) -> str:
    """A person name: 'first [middle-initial] last', avg length ~15."""
    first = zipf_choice(expanded_vocabulary("first", 2000), rng)
    last = zipf_choice(expanded_vocabulary("last", 4000), rng)
    if rng.random() < 0.15:
        middle = rng.choice("abcdefghijklmnopqrstuvwxyz")
        return f"{first} {middle} {last}"
    return f"{first} {last}"


def _querylog_string(rng: random.Random) -> str:
    """A keyword query of several words, average length ~45, minimum ~30."""
    vocabulary = expanded_vocabulary("query", 8000)
    words = [zipf_choice(vocabulary, rng)
             for _ in range(rng.randint(3, 8))]
    query = " ".join(words)
    # The paper's query-log strings are at least 30 characters long; pad
    # short queries with additional keywords.
    while len(query) < 30:
        query = f"{query} {zipf_choice(vocabulary, rng)}"
    return query


def _title_string(rng: random.Random) -> str:
    """An 'authors. title.' line, average length ~105."""
    first_vocab = expanded_vocabulary("first", 2000)
    last_vocab = expanded_vocabulary("last", 4000)
    title_vocab = expanded_vocabulary("title", 12000)
    authors = ", ".join(
        f"{zipf_choice(first_vocab, rng)} {zipf_choice(last_vocab, rng)}"
        for _ in range(rng.randint(1, 3)))
    title = " ".join(zipf_choice(title_vocab, rng)
                     for _ in range(rng.randint(5, 13)))
    return f"{authors}. {title}."


_FACTORIES: dict[str, Callable[[random.Random], str]] = {
    "author": _author_string,
    "querylog": _querylog_string,
    "title": _title_string,
}

#: The dataset names understood by :func:`generate_dataset`.
DATASET_NAMES = tuple(sorted(_FACTORIES))


# ----------------------------------------------------------------------
# Generation driver
# ----------------------------------------------------------------------
def generate_dataset(spec: DatasetSpec) -> list[str]:
    """Generate a dataset according to ``spec``.

    A ``duplicate_fraction`` share of the output strings are near-duplicates
    of an earlier string (1 to ``max_duplicate_edits`` random edits), so the
    similarity joins have realistic, non-empty result sets.
    """
    factory = _FACTORIES.get(spec.name)
    if factory is None:
        raise DatasetError(
            f"unknown dataset {spec.name!r}; expected one of {', '.join(DATASET_NAMES)}")
    rng = random.Random(f"{spec.seed}:{spec.name}:{spec.size}")
    strings: list[str] = []
    for _ in range(spec.size):
        if strings and rng.random() < spec.duplicate_fraction:
            source = rng.choice(strings)
            strings.append(make_near_duplicate(source, rng,
                                               spec.max_duplicate_edits))
        else:
            strings.append(factory(rng))
    return strings


def generate_author_dataset(size: int, seed: int = 2011,
                            duplicate_fraction: float = 0.15) -> list[str]:
    """Short-string dataset analogous to DBLP Author (avg length ≈ 15)."""
    return generate_dataset(DatasetSpec("author", size, duplicate_fraction,
                                        seed=seed))


def generate_querylog_dataset(size: int, seed: int = 2011,
                              duplicate_fraction: float = 0.15) -> list[str]:
    """Medium-string dataset analogous to the AOL query log (avg length ≈ 45)."""
    return generate_dataset(DatasetSpec("querylog", size, duplicate_fraction,
                                        seed=seed))


def generate_title_dataset(size: int, seed: int = 2011,
                           duplicate_fraction: float = 0.15) -> list[str]:
    """Long-string dataset analogous to DBLP Author+Title (avg length ≈ 105)."""
    return generate_dataset(DatasetSpec("title", size, duplicate_fraction,
                                        seed=seed))
