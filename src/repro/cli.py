"""Command-line interface.

Six subcommands cover the day-to-day uses of the library::

    passjoin join FILE --tau 2                 # self-join a file of strings
    passjoin join FILE --tau 2 --workers 4     # ... on 4 cores (0 = all)
    passjoin join LEFT --right RIGHT --tau 2   # join two files
    passjoin generate author out.txt --size 10000
    passjoin stats FILE                        # Table-2-style statistics
    passjoin experiment figure15 --scale 0.5   # rerun a paper experiment
    passjoin serve FILE --tau 2 --port 8765    # online similarity service
    passjoin serve FILE --tau 20 --kernel token-jaccard  # Jaccard kernel
    passjoin serve FILE --replicas 2 --acceptors 2  # read-scaled front end
    passjoin admin kernels                     # list registered kernels
    passjoin query "some string" --tau 1       # ask a running service
    passjoin query --file queries.txt --tau 1  # batch: one request, N queries
    passjoin admin reshard --shards 4          # live-resize a sharded server
    passjoin admin status                      # shard balance + rebalance state
    passjoin admin metrics --prometheus        # scrape the telemetry registry
    passjoin query "some string" --explain     # per-stage funnel of one probe

The module is also importable: :func:`main` takes an ``argv`` list, which is
what the CLI tests use.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Sequence

from . import __version__
from .baselines.ed_join import EdJoin
from .baselines.naive import NaiveJoin
from .baselines.trie_join import TrieJoin
from .bench.experiments import DATASET_BUILDERS, EXPERIMENTS
from .bench.reporting import format_table
from .config import (DEFAULT_KERNEL, KERNELS, SHARD_POLICIES, JoinConfig,
                     SelectionMethod, ServiceConfig, VerificationMethod)
from .core.join import PassJoin
from .core.parallel import ParallelPassJoin
from .datasets.loaders import load_strings, save_strings
from .datasets.stats import dataset_statistics
from .exceptions import PassJoinError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="passjoin",
        description="Pass-Join: partition-based string similarity joins "
                    "(VLDB 2011 reproduction)")
    parser.add_argument("--version", action="version", version=f"passjoin {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    join = subparsers.add_parser("join", help="run a similarity join on text files")
    join.add_argument("left", help="input file, one string per line")
    join.add_argument("--right", help="optional second file for an R-S join")
    join.add_argument("--tau", type=int, required=True, help="edit-distance threshold")
    join.add_argument("--algorithm", default="pass-join",
                      choices=["pass-join", "ed-join", "trie-join", "naive"],
                      help="join algorithm (default: pass-join)")
    join.add_argument("--selection", default=SelectionMethod.MULTI_MATCH.value,
                      choices=[m.value for m in SelectionMethod],
                      help="Pass-Join substring-selection method")
    join.add_argument("--verification", default=VerificationMethod.SHARE_PREFIX.value,
                      choices=[m.value for m in VerificationMethod],
                      help="Pass-Join verification strategy")
    join.add_argument("--workers", type=int, default=1,
                      help="parallel probe workers for pass-join "
                           "(1 = serial, 0 = one per CPU; default 1)")
    join.add_argument("--chunk-size", type=int, default=None,
                      help="probe strings per parallel chunk (default: auto)")
    join.add_argument("--limit", type=int, help="read at most this many strings per file")
    join.add_argument("--quiet", action="store_true",
                      help="print only the summary, not the pairs")

    generate = subparsers.add_parser("generate", help="generate a synthetic dataset")
    generate.add_argument("dataset", choices=sorted(DATASET_BUILDERS),
                          help="dataset family to generate")
    generate.add_argument("output", help="output file (one string per line)")
    generate.add_argument("--size", type=int, default=10000, help="number of strings")

    stats = subparsers.add_parser("stats", help="print Table-2-style statistics of a file")
    stats.add_argument("path", help="input file, one string per line")
    stats.add_argument("--limit", type=int, help="read at most this many strings")

    experiment = subparsers.add_parser("experiment",
                                       help="rerun one of the paper's experiments")
    experiment.add_argument("name", choices=sorted(EXPERIMENTS),
                            help="experiment identifier (table/figure)")
    experiment.add_argument("--scale", type=float, default=1.0,
                            help="dataset scale factor (1.0 = library defaults)")
    experiment.add_argument("--markdown", action="store_true",
                            help="emit a Markdown table instead of plain text")

    serve = subparsers.add_parser(
        "serve", help="serve a collection as an online similarity service "
                      "(JSON lines over TCP)")
    serve.add_argument("path", help="input file, one string per line")
    serve.add_argument("--tau", type=int, default=2,
                       help="maximum per-query distance threshold "
                            "(default 2)")
    serve.add_argument("--kernel", default=DEFAULT_KERNEL,
                       choices=list(KERNELS),
                       help="similarity kernel to serve: character "
                            "edit distance or token-set Jaccard "
                            f"(default {DEFAULT_KERNEL})")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8765,
                       help="TCP port (default 8765; 0 = ephemeral)")
    serve.add_argument("--cache-capacity", type=int, default=1024,
                       help="query-cache entries (0 disables; default 1024)")
    serve.add_argument("--compact-interval", type=int, default=64,
                       help="tombstones tolerated before index compaction "
                            "(default 64)")
    serve.add_argument("--shards", type=int, default=1,
                       help="shard workers to partition the collection "
                            "across (default 1 = unsharded)")
    serve.add_argument("--shard-policy", default="hash",
                       choices=list(SHARD_POLICIES),
                       help="record placement: consistent-hash ring, length "
                            "bands, or legacy id%%N (default hash)")
    serve.add_argument("--shard-backend", default="auto",
                       choices=["auto", "process", "thread"],
                       help="shard execution: fork-spawned processes, "
                            "in-process, or auto per platform (default auto)")
    serve.add_argument("--migration-batch", type=int, default=256,
                       help="records moved per live-resharding step "
                            "(default 256)")
    serve.add_argument("--replicas", type=int, default=0,
                       help="read replicas per shard; stale replicas are "
                            "bypassed to the primary (default 0 = none)")
    serve.add_argument("--acceptors", type=int, default=1,
                       help="acceptor loops sharing the listening port via "
                            "SO_REUSEPORT (default 1)")
    serve.add_argument("--slow-query-ms", type=float, default=0.0,
                       help="log requests slower than this (milliseconds) "
                            "to the JSON slow-query log (default 0 = off)")
    serve.add_argument("--limit", type=int,
                       help="read at most this many strings")

    query = subparsers.add_parser(
        "query", help="query a running similarity service")
    query.add_argument("text", nargs="?", default=None,
                       help="the query string (omit when using --file)")
    query.add_argument("--file", default=None,
                       help="file of query strings (one per line), sent as "
                            "one search-batch request (or one top-k-batch "
                            "request when combined with --top-k)")
    query.add_argument("--tau", type=int, default=None,
                       help="distance threshold (default: the "
                            "server's maximum)")
    query.add_argument("--kernel", default=None, choices=list(KERNELS),
                       help="assert which similarity kernel the server "
                            "must be serving (default: don't check)")
    query.add_argument("--top-k", type=int, default=None,
                       help="return the k closest strings instead of a "
                            "threshold search")
    query.add_argument("--explain", action="store_true",
                       help="print the per-stage filter funnel of one "
                            "traced probe (JSON) instead of plain matches")
    query.add_argument("--host", default="127.0.0.1",
                       help="server address (default 127.0.0.1)")
    query.add_argument("--port", type=int, default=8765,
                       help="server port (default 8765)")

    admin = subparsers.add_parser(
        "admin", help="administer a running sharded similarity service")
    admin_sub = admin.add_subparsers(dest="admin_command", required=True)
    reshard = admin_sub.add_parser(
        "reshard", help="live-resize the shard fleet to a target size")
    reshard.add_argument("--shards", type=int, required=True,
                         help="target number of shards (>= 1)")
    reshard.add_argument("--host", default="127.0.0.1",
                         help="server address (default 127.0.0.1)")
    reshard.add_argument("--port", type=int, default=8765,
                         help="server port (default 8765)")
    reshard.add_argument("--poll", type=float, default=0.05,
                         help="seconds between rebalance-status polls "
                              "(default 0.05)")
    status = admin_sub.add_parser(
        "status", help="print shard balance and rebalance state")
    status.add_argument("--host", default="127.0.0.1",
                        help="server address (default 127.0.0.1)")
    status.add_argument("--port", type=int, default=8765,
                        help="server port (default 8765)")
    metrics = admin_sub.add_parser(
        "metrics", help="scrape the server's merged telemetry registry "
                        "(works on sharded and unsharded servers)")
    metrics.add_argument("--host", default="127.0.0.1",
                         help="server address (default 127.0.0.1)")
    metrics.add_argument("--port", type=int, default=8765,
                         help="server port (default 8765)")
    metrics.add_argument("--prometheus", action="store_true",
                         help="render Prometheus text exposition format "
                              "instead of JSON")
    kernels = admin_sub.add_parser(
        "kernels", help="list the server's registered similarity kernels "
                        "and which one it is serving")
    kernels.add_argument("--host", default="127.0.0.1",
                         help="server address (default 127.0.0.1)")
    kernels.add_argument("--port", type=int, default=8765,
                         help="server port (default 8765)")
    return parser


def _make_join_algorithm(args: argparse.Namespace):
    if args.algorithm == "pass-join":
        config = JoinConfig.from_names(selection=args.selection,
                                       verification=args.verification,
                                       workers=args.workers,
                                       chunk_size=args.chunk_size)
        if config.workers != 1:
            return ParallelPassJoin(args.tau, config)
        return PassJoin(args.tau, config)
    if args.algorithm == "ed-join":
        return EdJoin(args.tau)
    if args.algorithm == "trie-join":
        return TrieJoin(args.tau)
    return NaiveJoin(args.tau)


def _command_join(args: argparse.Namespace) -> int:
    if args.algorithm != "pass-join" and (args.workers != 1
                                          or args.chunk_size is not None):
        print("--workers/--chunk-size are only supported by the pass-join "
              "algorithm", file=sys.stderr)
        return 2
    left = load_strings(args.left, limit=args.limit)
    algorithm = _make_join_algorithm(args)
    if args.right:
        if args.algorithm not in ("pass-join", "naive"):
            print("R-S joins are supported by the pass-join and naive algorithms",
                  file=sys.stderr)
            return 2
        right = load_strings(args.right, limit=args.limit)
        result = algorithm.join(left, right)
    else:
        result = algorithm.self_join(left)
    if not args.quiet:
        for pair in result.sorted_pairs():
            print(f"{pair.left_id}\t{pair.right_id}\t{pair.distance}\t"
                  f"{pair.left}\t{pair.right}")
    stats = result.statistics
    print(f"# strings={stats.num_strings} pairs={len(result)} "
          f"candidates={stats.num_candidates} "
          f"verifications={stats.num_verifications} "
          f"time={stats.total_seconds:.3f}s", file=sys.stderr)
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    strings = DATASET_BUILDERS[args.dataset](args.size)
    written = save_strings(args.output, strings)
    summary = dataset_statistics(strings)
    print(f"wrote {written} strings to {args.output} "
          f"(avg len {summary.avg_length:.1f}, "
          f"min {summary.min_length}, max {summary.max_length})")
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    strings = load_strings(args.path, limit=args.limit)
    summary = dataset_statistics(strings)
    for key, value in summary.as_row().items():
        print(f"{key}: {value}")
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    experiment = EXPERIMENTS[args.name]
    table = experiment(scale=args.scale)
    print(format_table(table, markdown=args.markdown))
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from .service.server import run_service

    strings = load_strings(args.path, limit=args.limit)
    config = ServiceConfig(host=args.host, port=args.port, max_tau=args.tau,
                           cache_capacity=args.cache_capacity,
                           compact_interval=args.compact_interval,
                           shards=args.shards, shard_policy=args.shard_policy,
                           shard_backend=args.shard_backend,
                           migration_batch=args.migration_batch,
                           slow_query_ms=args.slow_query_ms,
                           kernel=args.kernel,
                           replicas=args.replicas,
                           acceptors=args.acceptors)
    if config.slow_query_ms:
        from .obs.slowlog import configure_slow_query_logging

        configure_slow_query_logging(sys.stderr)

    def announce(address: tuple[str, int]) -> None:
        sharding = ("unsharded" if config.shards == 1 else
                    f"{config.shards} {config.shard_policy} shards")
        if config.replicas:
            sharding += f" x{config.replicas + 1} (read replicas)"
        if config.acceptors > 1:
            sharding += f", {config.acceptors} acceptors"
        print(f"serving {len(strings)} strings on {address[0]}:{address[1]} "
              f"(kernel={config.kernel}, max_tau={config.max_tau}, "
              f"cache={config.cache_capacity}, {sharding}); "
              f"Ctrl-C to stop", file=sys.stderr)

    try:
        asyncio.run(run_service(strings, config, on_ready=announce))
    except KeyboardInterrupt:
        print("server stopped", file=sys.stderr)
    return 0


def _command_query(args: argparse.Namespace) -> int:
    from .service.client import ServiceClient

    if (args.text is None) == (args.file is None):
        print("provide exactly one of a query string or --file",
              file=sys.stderr)
        return 2
    if args.explain and (args.file is not None or args.top_k is not None):
        print("--explain traces one threshold search; it cannot be combined "
              "with --file or --top-k", file=sys.stderr)
        return 2
    try:
        with ServiceClient(args.host, args.port) as client:
            if args.explain:
                report = client.explain(args.text, args.tau,
                                        kernel=args.kernel)
                print(json.dumps(report, indent=2, sort_keys=True))
                funnel = report["funnel"]
                print(f"# candidates={funnel['candidates']} "
                      f"verifications={funnel['verifications']} "
                      f"accepted={funnel['accepted']} "
                      f"matches={report['num_matches']}", file=sys.stderr)
                return 0
            if args.file is not None:
                queries = load_strings(args.file)
                if args.top_k is not None:
                    results = client.top_k_batch(queries, args.top_k,
                                                 args.tau,
                                                 kernel=args.kernel)
                else:
                    results = client.search_batch(queries, args.tau,
                                                  kernel=args.kernel)
                total = 0
                for query, matches in zip(queries, results):
                    for match in matches:
                        print(f"{query}\t{match.id}\t{match.distance}\t"
                              f"{match.text}")
                    total += len(matches)
                print(f"# queries={len(queries)} matches={total}",
                      file=sys.stderr)
                return 0
            if args.top_k is not None:
                matches = client.top_k(args.text, args.top_k, args.tau,
                                       kernel=args.kernel)
            else:
                matches = client.search(args.text, args.tau,
                                        kernel=args.kernel)
    except OSError as error:
        print(f"error: cannot reach server at {args.host}:{args.port} "
              f"({error})", file=sys.stderr)
        return 1
    for match in matches:
        print(f"{match.id}\t{match.distance}\t{match.text}")
    print(f"# matches={len(matches)}", file=sys.stderr)
    return 0


def _print_admin_status(stats: dict) -> None:
    shards = stats["shards"]
    rebalance = shards["rebalance"]
    print(f"shards: {shards['count']} ({shards['policy']} placement, "
          f"{shards['backend']} backend)")
    print(f"rows per shard: {shards['sizes']}")
    print(f"bytes per shard: {shards['bytes']}")
    print(f"rows migrated (lifetime): {shards['rows_migrated']}")
    replicas = shards.get("replicas")
    if replicas is not None:
        print(f"replicas per shard: {shards['replicas_per_shard']} "
              f"(reads served by replicas: {shards['replica_reads']}, "
              f"primary fallbacks: {shards['replica_fallbacks']})")
        for shard, pool in enumerate(replicas):
            for index, row in enumerate(pool):
                state = "ok" if row["alive"] else "DEAD"
                if row["alive"] and row["lag"]:
                    state = f"stale (lag {row['lag']})"
                print(f"  shard {shard} replica {index}: "
                      f"applied epoch {row['applied_epoch']}, {state}")
    if rebalance["active"]:
        print(f"rebalance in flight: {rebalance['kind']} — "
              f"{rebalance['rows_copied']}/{rebalance['rows_total']} rows "
              f"copied, {rebalance['steps_left']} steps left")
    else:
        print("rebalance: idle")


def _command_admin(args: argparse.Namespace) -> int:
    import time

    from .exceptions import ProtocolError, ServiceError
    from .service.client import ServiceClient

    try:
        with ServiceClient(args.host, args.port) as client:
            if args.admin_command == "metrics":
                # Metrics work on sharded and unsharded servers alike, so
                # this dispatches before the sharded-only check below.
                payload = client.metrics()
                if args.prometheus:
                    from .obs.metrics import render_prometheus

                    sys.stdout.write(render_prometheus(payload["merged"]))
                else:
                    payload.pop("ok", None)
                    print(json.dumps(payload, indent=2, sort_keys=True))
                return 0
            if args.admin_command == "kernels":
                # Like metrics, the kernel catalogue exists on sharded and
                # unsharded servers alike.
                payload = client.kernels()
                print(f"serving: {payload['serving']}")
                for descriptor in payload["kernels"]:
                    marker = ("*" if descriptor["name"] == payload["serving"]
                              else " ")
                    print(f" {marker} {descriptor['name']}: "
                          f"{descriptor.get('tau_semantics', '')}")
                return 0
            stats = client.stats()
            if "shards" not in stats:
                print("error: the server is unsharded; restart it with "
                      "--shards >= 2 to enable live resharding",
                      file=sys.stderr)
                return 1
            if args.admin_command == "status":
                _print_admin_status(stats)
                return 0
            target = args.shards
            if target < 1:
                print("error: --shards must be >= 1", file=sys.stderr)
                return 2
            current = stats["shards"]["count"]
            while current != target:
                grow = current < target
                try:
                    status = (client.add_shard() if grow
                              else client.remove_shard())
                except ServiceError as error:
                    print(f"error: {error}", file=sys.stderr)
                    return 1
                # The server streams the migration in the background;
                # queries keep being answered while we poll.  A failed
                # drain surfaces as an "error" field — abort rather than
                # polling an migration that will never finish.
                while status["active"] and "error" not in status:
                    time.sleep(args.poll)
                    status = client.rebalance_status()
                if "error" in status:
                    print(f"error: {status['error']}", file=sys.stderr)
                    return 1
                current = status["shards"]
                print(f"{status.get('kind', 'reshard')}: now {current} "
                      f"shard(s), moved {status.get('rows_copied', 0)} "
                      f"row(s)", file=sys.stderr)
            _print_admin_status(client.stats())
    except (OSError, ProtocolError) as error:
        # ProtocolError covers a server dying *mid-poll* (the client wraps
        # resets/half-frames in it, not in OSError) — the reshard loop can
        # run for a while, so that path matters here.
        print(f"error: cannot reach server at {args.host}:{args.port} "
              f"({error})", file=sys.stderr)
        return 1
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point used both by the console script and by the tests."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "join": _command_join,
        "generate": _command_generate,
        "stats": _command_stats,
        "experiment": _command_experiment,
        "serve": _command_serve,
        "query": _command_query,
        "admin": _command_admin,
    }
    try:
        return handlers[args.command](args)
    except PassJoinError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
