"""Part-Enum: partition/enumeration signatures over q-gram sets.

Part-Enum (Arasu, Ganti, Kaushik — VLDB 2006) reduces an edit-distance join
to a Hamming-distance join over q-gram feature sets: transforming a string
with ``τ`` edit operations changes at most ``q·τ`` of its q-grams, so two
strings within edit distance ``τ`` have q-gram sets whose symmetric
difference is at most ``k = 2·q·τ``.

The signature scheme is the classic two-level partition/enumeration:

1. Grams are hashed into ``n1`` first-level groups.  By the pigeonhole
   principle, at least one group carries a symmetric difference of at most
   ``k1 = ⌊k / n1⌋``.
2. Each first-level group is hashed further into ``n2 = k1 + 1``
   second-level subgroups.  Within the group from step 1, at least one
   subgroup carries a symmetric difference of zero, i.e. both strings have
   *identical* gram subsets there.

A string's signatures are therefore the ``n1 · n2`` (group, subgroup,
frozen gram subset) triples; two strings within the threshold are
guaranteed to share at least one signature.  Candidates are generated from
an inverted index over signatures, then filtered with the length filter and
verified.

Part-Enum is included for completeness of the related-work lineage (the
paper cites it as dominated by ED-Join/Trie-Join and does not benchmark
it); its signature explosion on short strings is clearly visible in the
ablation benchmark.
"""

from __future__ import annotations

import time
from typing import Iterable

from ..config import validate_threshold
from ..distance.banded import length_aware_edit_distance
from ..types import (JoinResult, JoinStatistics, SimilarPair, StringRecord,
                     as_records, normalise_pair)
from .qgram import qgrams


def _stable_hash(text: str) -> int:
    """Deterministic string hash (FNV-1a) independent of PYTHONHASHSEED."""
    value = 0xcbf29ce484222325
    for byte in text.encode("utf-8", errors="replace"):
        value ^= byte
        value = (value * 0x100000001b3) & 0xFFFFFFFFFFFFFFFF
    return value


class PartEnumJoin:
    """Edit-distance join via partition/enumeration signatures."""

    name = "part-enum"

    def __init__(self, tau: int, q: int = 2, n1: int | None = None) -> None:
        self.tau = validate_threshold(tau)
        if q <= 0:
            raise ValueError(f"gram length q must be positive, got {q}")
        self.q = q
        # Hamming bound on the symmetric difference of the gram sets.
        self.hamming_bound = 2 * q * self.tau
        # First-level partition count; ⌈(k+1)/2⌉ balances signature count
        # against selectivity (the original paper tunes this knob).
        self.n1 = n1 if n1 is not None else max(1, (self.hamming_bound + 1) // 2)
        self.k1 = self.hamming_bound // self.n1
        self.n2 = self.k1 + 1

    # ------------------------------------------------------------------
    def signatures(self, text: str) -> list[tuple[int, int, frozenset[str]]]:
        """Return the (group, subgroup, gram subset) signatures of ``text``."""
        grams = set(qgrams(text, self.q))
        buckets: dict[tuple[int, int], set[str]] = {}
        for gram in grams:
            digest = _stable_hash(gram)
            group = digest % self.n1
            subgroup = (digest // self.n1) % self.n2
            buckets.setdefault((group, subgroup), set()).add(gram)
        signature_list: list[tuple[int, int, frozenset[str]]] = []
        for group in range(self.n1):
            for subgroup in range(self.n2):
                subset = buckets.get((group, subgroup), set())
                signature_list.append((group, subgroup, frozenset(subset)))
        return signature_list

    # ------------------------------------------------------------------
    def self_join(self, strings: Iterable[str | StringRecord]) -> JoinResult:
        """Find every similar pair inside one collection."""
        records = as_records(strings)
        stats = JoinStatistics(num_strings=len(records))
        started = time.perf_counter()

        tau = self.tau
        ordered = sorted(records, key=lambda record: (record.length, record.text))
        index: dict[tuple[int, int, frozenset[str]], list[StringRecord]] = {}
        pairs: list[SimilarPair] = []

        for probe in ordered:
            signature_list = self.signatures(probe.text)
            stats.num_selected_substrings += len(signature_list)

            candidates: dict[int, StringRecord] = {}
            for signature in signature_list:
                stats.num_index_probes += 1
                for record in index.get(signature, ()):
                    if record.id in candidates:
                        continue
                    if abs(record.length - probe.length) > tau:
                        continue
                    candidates[record.id] = record

            stats.num_candidates += len(candidates)
            verification_started = time.perf_counter()
            for record in candidates.values():
                stats.num_verifications += 1
                distance = length_aware_edit_distance(record.text, probe.text,
                                                      tau, stats)
                if distance <= tau:
                    pairs.append(normalise_pair(probe.id, record.id, distance,
                                                probe.text, record.text))
            stats.verification_seconds += time.perf_counter() - verification_started

            indexing_started = time.perf_counter()
            for signature in signature_list:
                index.setdefault(signature, []).append(probe)
                stats.index_entries += 1
            stats.indexing_seconds += time.perf_counter() - indexing_started

        stats.total_seconds = time.perf_counter() - started
        stats.num_results = len(pairs)
        return JoinResult(pairs=pairs, statistics=stats)


def part_enum_join(strings: Iterable[str | StringRecord], tau: int,
                   q: int = 2) -> JoinResult:
    """Convenience wrapper: Part-Enum self join."""
    return PartEnumJoin(tau, q).self_join(strings)
