"""All-Pairs-Ed: q-gram prefix filtering for edit-distance joins.

All-Pairs (Bayardo et al., WWW 2007) adapted to edit-distance constraints,
as used as a baseline by the ED-Join and Pass-Join papers: every string's
q-grams are ordered by a global ordering and the first ``q·τ + 1`` grams
form the probing prefix.  Since ``τ`` edit operations destroy at most
``q·τ`` q-grams, at least one prefix gram of a string must survive in any
string within distance ``τ``; pairs sharing no prefix gram are pruned
without verification.

Strings with at most ``q·τ`` grams have no sound prefix (all their grams
could be destroyed); they are joined by direct verification within the
length window, which is exactly the regime where the paper observes q-gram
methods to collapse on short strings.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..types import JoinResult, StringRecord
from .prefix_join import PrefixGramJoin
from .qgram import PositionalGram


class AllPairsEdJoin(PrefixGramJoin):
    """All-Pairs prefix filtering with fixed prefix length ``q·τ + 1``."""

    name = "all-pairs-ed"

    def prefix_grams(self, ordered: Sequence[PositionalGram],
                     string_length: int) -> list[PositionalGram] | None:
        prefix_length = self.q * self.tau + 1
        if len(ordered) < prefix_length:
            return None
        return list(ordered[:prefix_length])


def all_pairs_ed_join(strings: Iterable[str | StringRecord], tau: int,
                      q: int = 3) -> JoinResult:
    """Convenience wrapper: All-Pairs-Ed self join."""
    return AllPairsEdJoin(tau, q).self_join(strings)
