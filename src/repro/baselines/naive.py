"""Brute-force similarity join: the ground truth.

``NaiveJoin`` compares every pair of strings that survives the length
filter, using the bounded length-aware kernel for verification.  It is
quadratic and only meant for small inputs — the test suite uses it as the
oracle every other algorithm is checked against, and the benchmark harness
uses it to calibrate candidate counts.
"""

from __future__ import annotations

import time
from typing import Iterable

from ..config import validate_threshold
from ..distance.banded import length_aware_edit_distance
from ..types import (JoinResult, JoinStatistics, SimilarPair, StringRecord,
                     as_records, normalise_pair)


class NaiveJoin:
    """All-pairs verification with length filtering."""

    name = "naive"

    def __init__(self, tau: int) -> None:
        self.tau = validate_threshold(tau)

    def self_join(self, strings: Iterable[str | StringRecord]) -> JoinResult:
        """Return every similar pair inside one collection."""
        records = as_records(strings)
        stats = JoinStatistics(num_strings=len(records))
        started = time.perf_counter()
        ordered = sorted(records, key=lambda record: record.length)
        pairs: list[SimilarPair] = []
        tau = self.tau
        for i, left in enumerate(ordered):
            for right in ordered[i + 1:]:
                # ordered by length, so once the gap exceeds tau we can stop.
                if right.length - left.length > tau:
                    break
                stats.num_candidates += 1
                stats.num_verifications += 1
                distance = length_aware_edit_distance(left.text, right.text, tau, stats)
                if distance <= tau:
                    pairs.append(normalise_pair(left.id, right.id, distance,
                                                left.text, right.text))
        stats.total_seconds = time.perf_counter() - started
        stats.num_results = len(pairs)
        return JoinResult(pairs=pairs, statistics=stats)

    def join(self, left: Iterable[str | StringRecord],
             right: Iterable[str | StringRecord]) -> JoinResult:
        """Return every similar pair across two collections."""
        left_records = as_records(left)
        right_records = as_records(right)
        stats = JoinStatistics(num_strings=len(left_records) + len(right_records))
        started = time.perf_counter()
        tau = self.tau
        by_length: dict[int, list[StringRecord]] = {}
        for record in right_records:
            by_length.setdefault(record.length, []).append(record)
        pairs: list[SimilarPair] = []
        for probe in left_records:
            for length in range(probe.length - tau, probe.length + tau + 1):
                for record in by_length.get(length, ()):
                    stats.num_candidates += 1
                    stats.num_verifications += 1
                    distance = length_aware_edit_distance(probe.text, record.text,
                                                          tau, stats)
                    if distance <= tau:
                        pairs.append(SimilarPair(left_id=probe.id,
                                                 right_id=record.id,
                                                 distance=distance,
                                                 left=probe.text,
                                                 right=record.text))
        stats.total_seconds = time.perf_counter() - started
        stats.num_results = len(pairs)
        return JoinResult(pairs=pairs, statistics=stats)


def naive_join(strings: Iterable[str | StringRecord], tau: int) -> JoinResult:
    """Convenience wrapper: brute-force self join."""
    return NaiveJoin(tau).self_join(strings)
