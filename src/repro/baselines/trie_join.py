"""Trie-Join: trie-based similarity join with prefix pruning.

Trie-Join (Wang, Li, Feng — PVLDB 2010) stores the string collection in a
trie so that strings sharing prefixes share both storage and edit-distance
computation.  This reproduction implements the trie-search formulation of
the algorithm: strings are visited in sorted order; each string probes the
trie of the already-visited strings with a depth-first traversal that
maintains one banded dynamic-programming row per trie node and abandons a
branch as soon as every value in its row exceeds ``τ`` (prefix pruning);
the string is then inserted into the trie.

The behaviour matches the paper's observations: excellent on short strings
with many shared prefixes (person names), and increasingly expensive on
long strings, where hardly any prefixes are shared and the traversal
explores a node per character of almost every string.
"""

from __future__ import annotations

import sys
import time
from typing import Iterable, Iterator

from ..config import validate_threshold
from ..types import (JoinResult, JoinStatistics, SimilarPair, StringRecord,
                     as_records, normalise_pair)

_INF = 1 << 30


class TrieNode:
    """One node of the trie; the path from the root spells a string prefix."""

    __slots__ = ("children", "terminal_records")

    def __init__(self) -> None:
        self.children: dict[str, "TrieNode"] = {}
        # Records whose full text ends exactly at this node.
        self.terminal_records: list[StringRecord] = []


class Trie:
    """A character trie over :class:`~repro.types.StringRecord` objects."""

    def __init__(self) -> None:
        self.root = TrieNode()
        self.node_count = 1
        self.record_count = 0

    def insert(self, record: StringRecord) -> None:
        """Insert one record, creating nodes as needed."""
        node = self.root
        for character in record.text:
            child = node.children.get(character)
            if child is None:
                child = TrieNode()
                node.children[character] = child
                self.node_count += 1
            node = child
        node.terminal_records.append(record)
        self.record_count += 1

    def walk(self) -> Iterator[tuple[str, TrieNode]]:
        """Yield (prefix, node) pairs in depth-first order (for inspection)."""
        stack: list[tuple[str, TrieNode]] = [("", self.root)]
        while stack:
            prefix, node = stack.pop()
            yield prefix, node
            for character, child in node.children.items():
                stack.append((prefix + character, child))

    def approximate_bytes(self) -> int:
        """Rough trie footprint: per-node child maps plus terminal lists."""
        total = 0
        for _, node in self.walk():
            total += 40  # node object + bookkeeping
            total += 16 * len(node.children)
            total += 8 * len(node.terminal_records)
        return total

    def deep_bytes(self) -> int:
        """``sys.getsizeof``-based footprint (includes dict overhead)."""
        total = 0
        for _, node in self.walk():
            total += sys.getsizeof(node.children)
            total += 8 * len(node.terminal_records)
        return total


class TrieJoin:
    """Trie-based self join with prefix pruning."""

    name = "trie-join"

    def __init__(self, tau: int) -> None:
        self.tau = validate_threshold(tau)

    def self_join(self, strings: Iterable[str | StringRecord]) -> JoinResult:
        """Find every similar pair inside one collection."""
        records = as_records(strings)
        stats = JoinStatistics(num_strings=len(records))
        started = time.perf_counter()
        pairs = self._self_join(records, stats)
        stats.total_seconds = time.perf_counter() - started
        stats.num_results = len(pairs)
        return JoinResult(pairs=pairs, statistics=stats)

    # ------------------------------------------------------------------
    def _self_join(self, records: list[StringRecord],
                   stats: JoinStatistics) -> list[SimilarPair]:
        tau = self.tau
        ordered = sorted(records, key=lambda record: (record.length, record.text))
        trie = Trie()
        pairs: list[SimilarPair] = []

        for probe in ordered:
            verification_started = time.perf_counter()
            for record, distance in self._search(trie, probe.text, stats):
                pairs.append(normalise_pair(probe.id, record.id, distance,
                                            probe.text, record.text))
            stats.verification_seconds += time.perf_counter() - verification_started

            indexing_started = time.perf_counter()
            trie.insert(probe)
            stats.indexing_seconds += time.perf_counter() - indexing_started

        stats.index_entries = trie.node_count
        stats.index_bytes = trie.approximate_bytes()
        return pairs

    def _search(self, trie: Trie, probe: str,
                stats: JoinStatistics) -> list[tuple[StringRecord, int]]:
        """Return all indexed records within ``tau`` of ``probe``.

        Depth-first traversal; each node carries the banded DP row of its
        prefix against ``probe``.  A branch is pruned when every value of
        its row exceeds ``tau`` (prefix pruning).
        """
        tau = self.tau
        probe_length = len(probe)
        initial_row = [j if j <= tau else _INF for j in range(probe_length + 1)]
        matches: list[tuple[StringRecord, int]] = []

        # Stack entries: (node, depth, row for the node's prefix).
        stack: list[tuple[TrieNode, int, list[int]]] = [(trie.root, 0, initial_row)]
        while stack:
            node, depth, row = stack.pop()
            final = row[probe_length]
            if node.terminal_records and final <= tau:
                if abs(depth - probe_length) <= tau:
                    for record in node.terminal_records:
                        stats.num_verifications += 1
                        matches.append((record, final))
            for character, child in node.children.items():
                child_depth = depth + 1
                lo = max(0, child_depth - tau)
                hi = min(probe_length, child_depth + tau)
                if lo > hi:
                    continue
                child_row = [_INF] * (probe_length + 1)
                if lo == 0:
                    child_row[0] = child_depth
                row_min = _INF
                for j in range(max(lo, 1), hi + 1):
                    cost = 0 if character == probe[j - 1] else 1
                    value = row[j - 1] + cost
                    if row[j] + 1 < value:
                        value = row[j] + 1
                    if child_row[j - 1] + 1 < value:
                        value = child_row[j - 1] + 1
                    child_row[j] = value
                    if value < row_min:
                        row_min = value
                stats.num_matrix_cells += hi - max(lo, 1) + 1
                if lo == 0 and child_row[0] < row_min:
                    row_min = child_row[0]
                if row_min > tau:
                    stats.num_early_terminations += 1
                    continue
                stack.append((child, child_depth, child_row))
        return matches


def trie_join(strings: Iterable[str | StringRecord], tau: int) -> JoinResult:
    """Convenience wrapper: Trie-Join self join."""
    return TrieJoin(tau).self_join(strings)
