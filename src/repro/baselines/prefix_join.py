"""Shared machinery for the q-gram prefix-filtering joins.

Both All-Pairs-Ed and ED-Join follow the same outline; they only differ in
how a string's *probing prefix* is computed:

1. Compute a global gram ordering (ascending document frequency).
2. Visit strings in (length, text) order.  For the current string, probe a
   positional inverted index over the grams of the already-visited strings
   with the current string's probing prefix, applying the length and
   positional filters.
3. Apply the count filter and any algorithm-specific pair filter (ED-Join's
   content filter), then verify survivors with the bounded edit-distance
   kernel.
4. Add all of the current string's positional grams to the index.

Indexing *all* grams of visited strings (rather than only their prefixes)
makes the correctness argument direct — if ``ed(s, r) ≤ τ`` then at least
one gram of ``s``'s probing prefix survives in ``r`` at a position shifted
by at most ``τ``, so probing that gram finds ``r`` — at the price of a
larger index, which is consistent with the index sizes the paper reports
for the gram-based methods in Table 3.

Strings whose grams cannot support a sound prefix (``prefix_grams`` returns
``None``, e.g. very short strings or large thresholds) are joined by direct
verification within the length window; this keeps the algorithms complete
on arbitrary inputs and mirrors the known weakness of q-gram methods on
short strings.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Iterable, Sequence

from ..config import validate_threshold
from ..distance.banded import length_aware_edit_distance
from ..filters.count_filter import minimum_shared_grams, shared_gram_count
from ..types import (JoinResult, JoinStatistics, SimilarPair, StringRecord,
                     as_records, normalise_pair)
from .qgram import (PositionalGram, gram_document_frequencies, order_grams,
                    positional_qgrams, qgrams)


class PrefixGramJoin(ABC):
    """Base class for q-gram prefix-filtering similarity joins."""

    #: Human-readable algorithm name (used by the benchmark reports).
    name = "prefix-gram"

    def __init__(self, tau: int, q: int = 3) -> None:
        self.tau = validate_threshold(tau)
        if q <= 0:
            raise ValueError(f"gram length q must be positive, got {q}")
        self.q = q

    # ------------------------------------------------------------------
    # Hooks implemented by the concrete algorithms
    # ------------------------------------------------------------------
    @abstractmethod
    def prefix_grams(self, ordered: Sequence[PositionalGram],
                     string_length: int) -> list[PositionalGram] | None:
        """Return the probing prefix, or ``None`` when no sound prefix exists."""

    def pair_filter_passes(self, probe: str, candidate: str) -> bool:
        """Extra pair-level filter applied before verification (default: none)."""
        return True

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def self_join(self, strings: Iterable[str | StringRecord]) -> JoinResult:
        """Find every similar pair inside one collection."""
        records = as_records(strings)
        stats = JoinStatistics(num_strings=len(records))
        started = time.perf_counter()
        pairs = self._self_join(records, stats)
        stats.total_seconds = time.perf_counter() - started
        stats.num_results = len(pairs)
        return JoinResult(pairs=pairs, statistics=stats)

    # ------------------------------------------------------------------
    # Implementation
    # ------------------------------------------------------------------
    def _self_join(self, records: Sequence[StringRecord],
                   stats: JoinStatistics) -> list[SimilarPair]:
        tau, q = self.tau, self.q
        ordered_records = sorted(records, key=lambda record: (record.length, record.text))

        indexing_started = time.perf_counter()
        frequencies = gram_document_frequencies(
            (record.text for record in ordered_records), q)
        stats.indexing_seconds += time.perf_counter() - indexing_started

        # gram -> list of (record, gram position); holds every gram of every
        # visited string.
        index: dict[str, list[tuple[StringRecord, int]]] = {}
        # All visited records grouped by length, for unfiltered probes.
        visited_by_length: dict[int, list[StringRecord]] = {}
        # Cached full gram lists of visited strings, for the count filter.
        gram_cache: dict[int, list[str]] = {}
        pairs: list[SimilarPair] = []

        for probe in ordered_records:
            probe_grams = qgrams(probe.text, q)
            positional = positional_qgrams(probe.text, q)

            selection_started = time.perf_counter()
            ordered_grams = order_grams(positional, frequencies)
            prefix = self.prefix_grams(ordered_grams, probe.length)
            stats.selection_seconds += time.perf_counter() - selection_started

            candidates: dict[int, StringRecord] = {}
            if prefix is None:
                # No sound prefix: compare against every visited string in
                # the length window.
                for length in range(probe.length - tau, probe.length + tau + 1):
                    for record in visited_by_length.get(length, ()):
                        candidates[record.id] = record
            else:
                stats.num_selected_substrings += len(prefix)
                for gram, position in prefix:
                    stats.num_index_probes += 1
                    for record, record_position in index.get(gram, ()):
                        if record.id in candidates:
                            continue
                        if abs(record.length - probe.length) > tau:
                            continue
                        if abs(record_position - position) > tau:
                            continue
                        candidates[record.id] = record

            stats.num_candidates += len(candidates)
            verification_started = time.perf_counter()
            for record in candidates.values():
                needed = minimum_shared_grams(probe.length, record.length, q, tau)
                if needed > 0:
                    shared = shared_gram_count(probe_grams, gram_cache[record.id])
                    if shared < needed:
                        continue
                if not self.pair_filter_passes(probe.text, record.text):
                    continue
                stats.num_verifications += 1
                distance = length_aware_edit_distance(record.text, probe.text,
                                                      tau, stats)
                if distance <= tau:
                    pairs.append(normalise_pair(probe.id, record.id, distance,
                                                probe.text, record.text))
            stats.verification_seconds += time.perf_counter() - verification_started

            indexing_started = time.perf_counter()
            for gram, position in positional:
                index.setdefault(gram, []).append((probe, position))
                stats.index_entries += 1
            gram_cache[probe.id] = probe_grams
            visited_by_length.setdefault(probe.length, []).append(probe)
            stats.indexing_seconds += time.perf_counter() - indexing_started

        stats.index_bytes = self._approximate_index_bytes(index)
        return pairs

    @staticmethod
    def _approximate_index_bytes(index: dict[str, list[tuple[StringRecord, int]]]) -> int:
        """Approximate index footprint: gram keys plus 16 bytes per posting."""
        total = 0
        for gram, postings in index.items():
            total += len(gram.encode("utf-8", errors="replace"))
            total += 16 * len(postings)
        return total
