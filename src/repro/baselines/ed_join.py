"""ED-Join: location-based and content-based mismatch filtering.

ED-Join (Xiao, Wang, Lin — PVLDB 2008) improves plain q-gram prefix
filtering in two ways, both reproduced here:

Location-based mismatch filtering
    Destroying a *set* of positional q-grams may require far fewer edit
    operations than one per gram, because one operation can destroy up to
    ``q`` overlapping grams.  ``min_edit_errors`` computes the minimum
    number of operations needed to destroy a gram set (a greedy sweep over
    gram positions).  The probing prefix can therefore be shortened to the
    smallest prefix whose destruction already requires ``τ + 1`` operations
    — often much shorter than ``q·τ + 1`` grams, which shrinks both the
    index probes and the candidate set.

Content-based mismatch filtering
    Before verification, the pair is screened with a character-frequency
    histogram bound: every edit operation changes the histogram by an L1
    mass of at most 2, so ``ed(a, b) ≥ ⌈L1(freq(a), freq(b)) / 2⌉``.  The
    original paper applies the bound to the mismatching regions; applying
    it to the whole strings is a sound (slightly weaker) variant.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..filters.content_filter import content_filter_passes
from ..types import JoinResult, StringRecord
from .prefix_join import PrefixGramJoin
from .qgram import PositionalGram


def min_edit_errors(grams: Sequence[PositionalGram], q: int) -> int:
    """Minimum number of edit operations destroying every gram in ``grams``.

    Greedy interval argument: sort the grams by start position; an edit
    operation placed at the last character of the earliest not-yet-destroyed
    gram destroys every gram overlapping that character, i.e. every gram
    starting within the next ``q - 1`` positions.

    >>> from repro.baselines.qgram import positional_qgrams
    >>> min_edit_errors(positional_qgrams("abcdefgh", 2), 2)
    4
    """
    count = 0
    covered_until = -1
    for gram, position in sorted(grams, key=lambda pg: pg.position):
        if position > covered_until:
            count += 1
            covered_until = position + q - 1
    return count


class EdJoin(PrefixGramJoin):
    """ED-Join with location-based prefixes and the content filter."""

    name = "ed-join"

    def prefix_grams(self, ordered: Sequence[PositionalGram],
                     string_length: int) -> list[PositionalGram] | None:
        """Shortest prefix requiring more than ``τ`` edits to destroy.

        Returns ``None`` when even the full gram set can be destroyed with
        ``τ`` or fewer operations — such strings cannot be filtered by
        q-grams at this threshold and fall back to direct verification.
        """
        if min_edit_errors(ordered, self.q) <= self.tau:
            return None
        prefix: list[PositionalGram] = []
        for gram in ordered:
            prefix.append(gram)
            if min_edit_errors(prefix, self.q) > self.tau:
                return prefix
        return list(ordered)

    def pair_filter_passes(self, probe: str, candidate: str) -> bool:
        return content_filter_passes(probe, candidate, self.tau)


def ed_join(strings: Iterable[str | StringRecord], tau: int, q: int = 3) -> JoinResult:
    """Convenience wrapper: ED-Join self join."""
    return EdJoin(tau, q).self_join(strings)
