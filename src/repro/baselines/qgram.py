"""q-gram extraction and global gram ordering.

The q-gram baselines (All-Pairs-Ed, ED-Join, Part-Enum) all start from the
same substrate: chop every string into overlapping substrings of length
``q`` ("q-grams"), optionally remembering their positions, and impose a
single global ordering on grams — ascending document frequency, ties broken
lexicographically — so that the *prefix* of a string's ordered gram list
contains its rarest grams, maximising the pruning power of prefix filtering.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, NamedTuple, Sequence


class PositionalGram(NamedTuple):
    """A q-gram together with its 0-based start position in the string."""

    gram: str
    position: int


def qgrams(text: str, q: int) -> list[str]:
    """Return the overlapping q-grams of ``text`` (without positions).

    Strings shorter than ``q`` produce a single gram consisting of the whole
    string, so every non-empty string has at least one gram (this mirrors the
    common "pad-free" convention and keeps count filtering sound because the
    bound in :mod:`repro.filters.count_filter` is computed independently).

    >>> qgrams("vldb", 2)
    ['vl', 'ld', 'db']
    """
    if q <= 0:
        raise ValueError(f"gram length q must be positive, got {q}")
    if not text:
        return []
    if len(text) <= q:
        return [text]
    return [text[i:i + q] for i in range(len(text) - q + 1)]


def positional_qgrams(text: str, q: int) -> list[PositionalGram]:
    """Return the q-grams of ``text`` with their start positions.

    >>> positional_qgrams("vldb", 3)
    [PositionalGram(gram='vld', position=0), PositionalGram(gram='ldb', position=1)]
    """
    return [PositionalGram(gram, position)
            for position, gram in enumerate(qgrams(text, q))]


def gram_document_frequencies(strings: Iterable[str], q: int) -> Counter:
    """Count, for every gram, how many strings contain it at least once."""
    frequencies: Counter = Counter()
    for text in strings:
        frequencies.update(set(qgrams(text, q)))
    return frequencies


def order_grams(grams: Sequence[PositionalGram],
                frequencies: Counter) -> list[PositionalGram]:
    """Sort positional grams by (document frequency, gram, position).

    Rare grams come first, so a prefix of the result is the most selective
    subset of the string's grams — exactly what prefix filtering wants.
    Unknown grams (absent from ``frequencies``) sort first as frequency 0.
    """
    return sorted(grams, key=lambda pg: (frequencies.get(pg.gram, 0), pg.gram,
                                         pg.position))


class GramIndexEntry(NamedTuple):
    """A posting of an inverted index over (prefix) grams."""

    string_id: int
    position: int
    length: int


def approximate_gram_index_bytes(entries: int, gram_bytes: int) -> int:
    """Rough size of a positional q-gram inverted index (Table 3 accounting).

    Each posting stores a string id, a gram position, and the string length
    used for length filtering (3 machine words); ``gram_bytes`` accounts for
    the distinct gram keys.
    """
    return entries * 24 + gram_bytes
