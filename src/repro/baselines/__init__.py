"""Baseline similarity-join algorithms used in the paper's evaluation.

The evaluation of Section 6 compares Pass-Join against ED-Join and
Trie-Join (Figure 15, Table 3) and mentions All-Pairs-Ed and Part-Enum as
the methods those two already dominate.  All of them are reimplemented here
from their original papers so that every comparison runs in the same
runtime:

* :class:`repro.baselines.naive.NaiveJoin` — brute force with length
  filtering; the ground truth in tests.
* :class:`repro.baselines.all_pairs_ed.AllPairsEdJoin` — q-gram prefix
  filtering (Bayardo et al., WWW 2007, adapted to edit distance).
* :class:`repro.baselines.ed_join.EdJoin` — location-based and
  content-based mismatch filtering (Xiao et al., PVLDB 2008).
* :class:`repro.baselines.trie_join.TrieJoin` — trie-based join with
  prefix pruning (Wang et al., PVLDB 2010).
* :class:`repro.baselines.part_enum.PartEnumJoin` — partition/enumeration
  signatures over q-gram sets (Arasu et al., VLDB 2006).

Every baseline exposes the same ``self_join(strings) -> JoinResult`` /
``join(left, right) -> JoinResult`` interface as :class:`repro.PassJoin`,
which is what the Figure 15 benchmark drives.
"""

from .all_pairs_ed import AllPairsEdJoin, all_pairs_ed_join
from .ed_join import EdJoin, ed_join
from .naive import NaiveJoin, naive_join
from .part_enum import PartEnumJoin, part_enum_join
from .qgram import gram_document_frequencies, order_grams, positional_qgrams, qgrams
from .trie_join import Trie, TrieJoin, trie_join

__all__ = [
    "NaiveJoin",
    "naive_join",
    "AllPairsEdJoin",
    "all_pairs_ed_join",
    "EdJoin",
    "ed_join",
    "TrieJoin",
    "Trie",
    "trie_join",
    "PartEnumJoin",
    "part_enum_join",
    "qgrams",
    "positional_qgrams",
    "order_grams",
    "gram_document_frequencies",
]
