"""Bit-parallel edit distance (Myers/Hyyrö), an extension beyond the paper.

The paper notes that its verification techniques can be plugged into other
algorithms; conversely, other verification kernels can be plugged into
Pass-Join.  This module provides the classic bit-parallel Levenshtein
kernel: the pattern is encoded as per-character bit masks and each text
character updates the whole DP column in O(1) word operations.  Python
integers are arbitrary precision, so a single "word" covers patterns of any
length — the constant factor is higher than in C, but the kernel is still a
useful ablation point (``benchmarks/bench_ablation_verifier_kernel.py``).
"""

from __future__ import annotations

from ..config import validate_threshold


def _pattern_masks(pattern: str) -> dict[str, int]:
    masks: dict[str, int] = {}
    for position, character in enumerate(pattern):
        masks[character] = masks.get(character, 0) | (1 << position)
    return masks


def myers_edit_distance(a: str, b: str) -> int:
    """Exact edit distance using the bit-parallel algorithm.

    >>> myers_edit_distance("kitten", "sitting")
    3
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    # Use the shorter string as the pattern so the bit masks stay small.
    if len(a) > len(b):
        a, b = b, a

    masks = _pattern_masks(a)
    m = len(a)
    all_ones = (1 << m) - 1
    high_bit = 1 << (m - 1)

    positive_vertical = all_ones
    negative_vertical = 0
    score = m

    for character in b:
        match = masks.get(character, 0)
        diagonal_zero = (((match & positive_vertical) + positive_vertical)
                         ^ positive_vertical) | match | negative_vertical
        horizontal_positive = negative_vertical | ~(diagonal_zero | positive_vertical)
        horizontal_negative = positive_vertical & diagonal_zero
        if horizontal_positive & high_bit:
            score += 1
        elif horizontal_negative & high_bit:
            score -= 1
        horizontal_positive = ((horizontal_positive << 1) | 1) & all_ones
        horizontal_negative = (horizontal_negative << 1) & all_ones
        positive_vertical = horizontal_negative | ~(diagonal_zero | horizontal_positive)
        positive_vertical &= all_ones
        negative_vertical = horizontal_positive & diagonal_zero
    return score


def myers_edit_distance_within(a: str, b: str, tau: int) -> int:
    """Bounded variant returning ``min(ed(a, b), tau + 1)``.

    The length filter short-circuits hopeless pairs, and the sweep applies
    the cutoff rule of Hyyrö's bounded variant: after consuming a text
    character, ``score`` is the exact distance of the pattern against the
    text prefix, and each remaining text character can lower it by at most
    one — so as soon as ``score - remaining > tau`` the pair can never come
    back under the threshold and the sweep stops.
    """
    tau = validate_threshold(tau)
    if abs(len(a) - len(b)) > tau:
        return tau + 1
    if a == b:
        return 0
    # Use the shorter string as the pattern so the bit masks stay small.
    if len(a) > len(b):
        a, b = b, a
    if not a:
        # The length filter already guaranteed len(b) <= tau here.
        return len(b)

    masks = _pattern_masks(a)
    m = len(a)
    all_ones = (1 << m) - 1
    high_bit = 1 << (m - 1)

    positive_vertical = all_ones
    negative_vertical = 0
    score = m
    remaining = len(b)

    for character in b:
        remaining -= 1
        match = masks.get(character, 0)
        diagonal_zero = (((match & positive_vertical) + positive_vertical)
                         ^ positive_vertical) | match | negative_vertical
        horizontal_positive = negative_vertical | ~(diagonal_zero | positive_vertical)
        horizontal_negative = positive_vertical & diagonal_zero
        if horizontal_positive & high_bit:
            score += 1
        elif horizontal_negative & high_bit:
            score -= 1
        if score - remaining > tau:
            return tau + 1
        horizontal_positive = ((horizontal_positive << 1) | 1) & all_ones
        horizontal_negative = (horizontal_negative << 1) & all_ones
        positive_vertical = horizontal_negative | ~(diagonal_zero | horizontal_positive)
        positive_vertical &= all_ones
        negative_vertical = horizontal_positive & diagonal_zero
    return score if score <= tau else tau + 1
