"""Unbounded Levenshtein (edit) distance.

These are the reference kernels: simple, exact, and easy to audit.  The
threshold-bounded kernels in :mod:`repro.distance.banded` are validated
against :func:`edit_distance` in the test suite.
"""

from __future__ import annotations


def edit_distance(a: str, b: str) -> int:
    """Return the exact edit distance between ``a`` and ``b``.

    Uses the classic dynamic program with two rolling rows, so memory is
    ``O(min(|a|, |b|))`` and time is ``O(|a| · |b|)``.

    >>> edit_distance("kaushic chaduri", "kaushuk chadhui")
    4
    >>> edit_distance("vldb", "pvldb")
    1
    """
    if a == b:
        return 0
    # Keep the shorter string as the row to minimise memory.
    if len(a) < len(b):
        a, b = b, a
    if not b:
        return len(a)

    previous = list(range(len(b) + 1))
    current = [0] * (len(b) + 1)
    for i, char_a in enumerate(a, start=1):
        current[0] = i
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current[j] = min(
                previous[j] + 1,        # deletion from a
                current[j - 1] + 1,     # insertion into a
                previous[j - 1] + cost,  # substitution / match
            )
        previous, current = current, previous
    return previous[len(b)]


def edit_distance_unit_cost_matrix(a: str, b: str) -> list[list[int]]:
    """Return the full ``(|a|+1) × (|b|+1)`` dynamic-programming matrix.

    ``matrix[i][j]`` is the edit distance between ``a[:i]`` and ``b[:j]``.
    The full matrix is only used in tests and in teaching examples; join
    algorithms use the bounded kernels instead.
    """
    rows = len(a) + 1
    cols = len(b) + 1
    matrix = [[0] * cols for _ in range(rows)]
    for i in range(rows):
        matrix[i][0] = i
    for j in range(cols):
        matrix[0][j] = j
    for i in range(1, rows):
        char_a = a[i - 1]
        row = matrix[i]
        above = matrix[i - 1]
        for j in range(1, cols):
            cost = 0 if char_a == b[j - 1] else 1
            row[j] = min(above[j] + 1, row[j - 1] + 1, above[j - 1] + cost)
    return matrix


def longest_common_prefix(a: str, b: str) -> int:
    """Return the length of the longest common prefix of ``a`` and ``b``.

    Used by the shared-prefix verifier (Section 5.3) to decide how many
    dynamic-programming rows can be reused between consecutive strings of a
    sorted inverted list.
    """
    limit = min(len(a), len(b))
    i = 0
    while i < limit and a[i] == b[i]:
        i += 1
    return i
