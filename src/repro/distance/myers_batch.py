"""Batched bit-parallel verification kernel (Myers/Hyyrö, bounded).

The per-pair entry point :func:`repro.distance.myers.myers_edit_distance_within`
rebuilds the pattern's character bit masks on every call.  That is wasted
work in Pass-Join's verification phase, where one probe string is verified
against *every* candidate of an inverted list (and, in the batch executor,
against every candidate of a whole ``(length, tau)`` query group):
the pattern — the probe — is the same each time.

:class:`BatchMyersKernel` hoists the pattern encoding out of the loop: the
masks, the word width, and the high bit are computed once per probe, and
:meth:`BatchMyersKernel.distances_within` then sweeps them across a whole
candidate list with the column update inlined.  Each sweep uses the cutoff
rule of Hyyrö's bounded variant: after consuming a text character,
``score`` is the exact edit distance of the pattern against the text prefix
consumed so far, and every remaining text character can lower the final
score by at most one — so the sweep terminates as soon as
``score - remaining > tau``.

As everywhere else in the library, "bounded" means the kernel returns
``min(ed(pattern, text), tau + 1)``: any value above ``tau`` reads as "not
similar" without saying by how much.  Python integers are arbitrary
precision, so one "word" covers patterns of any length.

The optional ``stats`` argument is duck-typed like the banded kernels': any
object with integer ``num_matrix_cells`` / ``num_early_terminations``
attributes (e.g. :class:`repro.types.JoinStatistics`) is incremented in
place.  One processed text character updates a whole DP column of the
pattern in O(1) word operations, so the cell counter advances by the
pattern length per character — the work the bit-parallel word replaces,
directly comparable with the DP kernels' counters.
"""

from __future__ import annotations

from typing import Sequence

from ..config import validate_threshold


def build_pattern_masks(pattern: str) -> dict[str, int]:
    """Per-character position bit masks of ``pattern`` (bit ``i`` = position ``i``)."""
    masks: dict[str, int] = {}
    for position, character in enumerate(pattern):
        masks[character] = masks.get(character, 0) | (1 << position)
    return masks


class BatchMyersKernel:
    """One pattern's bit-parallel state, swept across many candidate texts.

    Parameters
    ----------
    pattern:
        The fixed string (in Pass-Join verification: the probe).  Its
        character masks are built exactly once, here.

    Examples
    --------
    >>> kernel = BatchMyersKernel("kitten")
    >>> kernel.distance_within("sitting", tau=3)
    3
    >>> kernel.distances_within(["kitten", "mitten", "kitchen"], tau=2)
    [0, 1, 2]
    """

    __slots__ = ("pattern", "length", "masks", "_all_ones", "_high_bit")

    def __init__(self, pattern: str) -> None:
        self.pattern = pattern
        self.length = len(pattern)
        self.masks = build_pattern_masks(pattern)
        self._all_ones = (1 << self.length) - 1
        self._high_bit = 1 << (self.length - 1) if self.length else 0

    def distance_within(self, text: str, tau: int, stats=None) -> int:
        """Return ``min(ed(pattern, text), tau + 1)`` for one candidate."""
        results = self.distances_within((text,), tau, stats)
        return results[0]

    def distances_within(self, texts: Sequence[str], tau: int,
                         stats=None) -> list[int]:
        """Bounded distances of the pattern against every text, in order.

        The hot batched path: one call verifies a whole inverted list (or
        batch group), with the per-character column update inlined in the
        loop and the pattern masks shared by every sweep.
        """
        tau = validate_threshold(tau)
        m = self.length
        over = tau + 1
        masks_get = self.masks.get
        all_ones = self._all_ones
        high_bit = self._high_bit
        pattern = self.pattern
        results: list[int] = []
        append = results.append
        cells = 0
        early = 0

        for text in texts:
            n = len(text)
            if m - n > tau or n - m > tau:
                append(over)
                continue
            if text == pattern:
                append(0)
                continue
            if m == 0:
                # 0 < n <= tau here (the length filter passed, text != "").
                append(n)
                continue

            positive_vertical = all_ones
            negative_vertical = 0
            score = m
            remaining = n
            for character in text:
                remaining -= 1
                match = masks_get(character, 0)
                diagonal_zero = (((match & positive_vertical) + positive_vertical)
                                 ^ positive_vertical) | match | negative_vertical
                horizontal_positive = (negative_vertical
                                       | ~(diagonal_zero | positive_vertical))
                horizontal_negative = positive_vertical & diagonal_zero
                if horizontal_positive & high_bit:
                    score += 1
                elif horizontal_negative & high_bit:
                    score -= 1
                if score - remaining > tau:
                    score = over
                    early += 1
                    break
                horizontal_positive = ((horizontal_positive << 1) | 1) & all_ones
                horizontal_negative = (horizontal_negative << 1) & all_ones
                positive_vertical = (horizontal_negative
                                     | ~(diagonal_zero | horizontal_positive))
                positive_vertical &= all_ones
                negative_vertical = horizontal_positive & diagonal_zero
            cells += m * (n - remaining)
            append(score if score <= tau else over)

        if stats is not None:
            stats.num_matrix_cells += cells
            if early:
                stats.num_early_terminations += early
        return results

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BatchMyersKernel(pattern={self.pattern!r})"
