"""Threshold-bounded (banded) edit-distance kernels.

Two kernels are provided, matching the two verification baselines evaluated
in Figure 14 of the paper:

``banded_edit_distance``
    The classic approach: only cells with ``|i - j| ≤ τ`` are computed, i.e.
    at most ``2τ + 1`` cells per row, and a row whose values all exceed
    ``τ`` triggers an early termination ("prefix pruning").

``length_aware_edit_distance``
    The paper's improvement (Section 5.1): using the length difference
    ``Δ = |s| − |r|`` the band narrows to
    ``i − ⌊(τ−Δ)/2⌋ ≤ j ≤ i + ⌊(τ+Δ)/2⌋`` — at most ``τ + 1`` cells per
    row — and the early termination uses the *expected edit distance*
    ``E(i, j) = M(i, j) + |(|s|−j) − (|r|−i)|``, which accounts for the
    length still to be consumed and therefore fires much earlier.

Both kernels return ``min(ed(r, s), τ + 1)`` so a return value greater than
``τ`` simply means "not within the threshold".

The optional ``stats`` argument is duck-typed: any object exposing integer
attributes ``num_matrix_cells`` and ``num_early_terminations`` (for example
:class:`repro.types.JoinStatistics`) is incremented in place, which is how
the Figure 14 benchmark measures verification work.
"""

from __future__ import annotations

from ..config import validate_threshold

_INF = 1 << 30


def _count_cells(stats, cells: int) -> None:
    if stats is not None:
        stats.num_matrix_cells += cells


def _count_early_termination(stats) -> None:
    if stats is not None:
        stats.num_early_terminations += 1


def banded_edit_distance(r: str, s: str, tau: int, stats=None) -> int:
    """Bounded edit distance with a symmetric ``2τ+1`` band.

    Returns ``ed(r, s)`` when it is at most ``tau`` and ``tau + 1``
    otherwise.  Early termination uses the naive rule: stop as soon as every
    value in a row exceeds ``tau``.
    """
    tau = validate_threshold(tau)
    len_r, len_s = len(r), len(s)
    if abs(len_r - len_s) > tau:
        return tau + 1
    if r == s:
        return 0
    if tau == 0:
        return 0 if r == s else 1

    previous = [j if j <= tau else _INF for j in range(len_s + 1)]
    for i in range(1, len_r + 1):
        lo = max(0, i - tau)
        hi = min(len_s, i + tau)
        current = [_INF] * (len_s + 1)
        if lo == 0:
            current[0] = i
        char_r = r[i - 1]
        row_min = current[0] if lo == 0 else _INF
        for j in range(max(lo, 1), hi + 1):
            cost = 0 if char_r == s[j - 1] else 1
            best = previous[j - 1] + cost
            if previous[j] + 1 < best:
                best = previous[j] + 1
            if current[j - 1] + 1 < best:
                best = current[j - 1] + 1
            current[j] = best
            if best < row_min:
                row_min = best
        _count_cells(stats, hi - max(lo, 1) + 1 + (1 if lo == 0 else 0))
        if row_min > tau:
            _count_early_termination(stats)
            return tau + 1
        previous = current
    distance = previous[len_s]
    return distance if distance <= tau else tau + 1


def length_aware_edit_distance(r: str, s: str, tau: int, stats=None) -> int:
    """The paper's length-aware bounded edit distance (Section 5.1).

    Only ``τ + 1`` cells per row are computed and the expected-edit-distance
    early termination is applied after every row.  Returns
    ``min(ed(r, s), tau + 1)``.
    """
    tau = validate_threshold(tau)
    len_r, len_s = len(r), len(s)
    delta = len_s - len_r
    if abs(delta) > tau:
        return tau + 1
    if r == s:
        return 0

    # Width of the band on each side of the diagonal.  Both are >= 0 because
    # |delta| <= tau.  The window for row i is [i - left, i + right].
    left = (tau - delta) // 2
    right = (tau + delta) // 2

    previous = [j if j <= right else _INF for j in range(len_s + 1)]
    for i in range(1, len_r + 1):
        lo = max(0, i - left)
        hi = min(len_s, i + right)
        if lo > hi:
            return tau + 1
        current = [_INF] * (len_s + 1)
        char_r = r[i - 1]
        min_expected = _INF
        remaining_r = len_r - i
        cells = 0
        for j in range(lo, hi + 1):
            if j == 0:
                value = i
            else:
                cost = 0 if char_r == s[j - 1] else 1
                value = previous[j - 1] + cost
                if previous[j] + 1 < value:
                    value = previous[j] + 1
                if current[j - 1] + 1 < value:
                    value = current[j - 1] + 1
            current[j] = value
            cells += 1
            if value < _INF:
                expected = value + abs((len_s - j) - remaining_r)
                if expected < min_expected:
                    min_expected = expected
        _count_cells(stats, cells)
        if min_expected > tau:
            _count_early_termination(stats)
            return tau + 1
        previous = current
    distance = previous[len_s]
    return distance if distance <= tau else tau + 1
