"""Edit-distance kernels used by Pass-Join and by every baseline.

The package offers several kernels with different cost/feature trade-offs:

* :func:`repro.distance.levenshtein.edit_distance` — exact, unbounded,
  classic dynamic programming.
* :func:`repro.distance.banded.banded_edit_distance` — threshold-bounded DP
  computing ``2τ+1`` diagonals per row (the paper's baseline verifier).
* :func:`repro.distance.banded.length_aware_edit_distance` — the paper's
  length-aware verifier computing ``τ+1`` cells per row with the
  expected-edit-distance early termination (Section 5.1).
* :class:`repro.distance.shared_prefix.SharedPrefixVerifier` — incremental
  verification of one probe against many sorted strings, reusing DP rows
  across common prefixes (Section 5.3).
* :func:`repro.distance.myers.myers_edit_distance` — bit-parallel kernel
  (an extension beyond the paper, used by the verifier ablation).
* :class:`repro.distance.myers_batch.BatchMyersKernel` — the batched
  bit-parallel kernel: one probe's character masks built once and swept
  across a whole candidate list with Hyyrö's bounded cutoff.

Bounded kernels follow the paper's convention for ``VerifyStringPair``:
they return ``min(ed(a, b), τ + 1)``, i.e. any value larger than ``τ``
means "not similar" without telling you by how much.
"""

from .banded import banded_edit_distance, length_aware_edit_distance
from .levenshtein import edit_distance, edit_distance_unit_cost_matrix
from .myers import myers_edit_distance, myers_edit_distance_within
from .myers_batch import BatchMyersKernel
from .shared_prefix import SharedPrefixVerifier

__all__ = [
    "edit_distance",
    "edit_distance_unit_cost_matrix",
    "banded_edit_distance",
    "length_aware_edit_distance",
    "myers_edit_distance",
    "myers_edit_distance_within",
    "BatchMyersKernel",
    "SharedPrefixVerifier",
]
