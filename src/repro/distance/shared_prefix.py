"""Shared-prefix incremental verification (Section 5.3 of the paper).

When Pass-Join verifies the strings of one inverted list ``L_l^i(w)``
against a probe string, the list is sorted alphabetically, so consecutive
strings tend to share long prefixes.  The dynamic-programming rows computed
for the previous string's prefix are therefore valid for the next string up
to the length of their common prefix, and only the rows after it need to be
(re)computed.

:class:`SharedPrefixVerifier` encapsulates that: it is bound to one probe
string (the matrix columns) and verifies a sequence of strings (the matrix
rows) one after another, caching rows keyed by the number of characters
consumed so far.
"""

from __future__ import annotations

from ..config import validate_threshold
from .levenshtein import longest_common_prefix

_INF = 1 << 30


class SharedPrefixVerifier:
    """Verify many strings against one fixed probe, reusing shared prefixes.

    Parameters
    ----------
    probe:
        The fixed string (the columns of the DP matrix).
    tau:
        The edit-distance threshold; :meth:`distance` returns values capped
        at ``tau + 1``.
    stats:
        Optional statistics sink exposing ``num_matrix_cells`` and
        ``num_early_terminations`` attributes (duck-typed).

    Notes
    -----
    The verifier uses the same length-aware band and expected-edit-distance
    early termination as
    :func:`repro.distance.banded.length_aware_edit_distance`, so results are
    identical — only the amount of recomputation differs.  Because the band
    placement depends on the length of the verified string, cached rows are
    only reused between consecutive strings of equal length (which is always
    the case inside one inverted list ``L_l^i(w)``: all its strings have
    length ``l``, hence equal-length left parts and equal-length right
    parts... the left parts all have length ``p_i − 1`` and the right parts
    ``l − p_i − l_i + 1``).  When a string of a different length arrives the
    cache is simply discarded.
    """

    def __init__(self, probe: str, tau: int, stats=None) -> None:
        self.probe = probe
        self.tau = validate_threshold(tau)
        self._stats = stats
        self._previous_text: str | None = None
        # _rows[i] is the DP row after consuming i characters of the
        # previous verified string; _rows[0] is the initial row.
        self._rows: list[list[int]] = []
        self.cache_hits = 0
        self.rows_reused = 0

    def _count_cells(self, cells: int) -> None:
        if self._stats is not None:
            self._stats.num_matrix_cells += cells

    def _count_early_termination(self) -> None:
        if self._stats is not None:
            self._stats.num_early_terminations += 1

    def _initial_row(self, right: int) -> list[int]:
        row = [_INF] * (len(self.probe) + 1)
        for j in range(min(right, len(self.probe)) + 1):
            row[j] = j
        return row

    def distance(self, text: str) -> int:
        """Return ``min(ed(text, probe), tau + 1)``.

        Consecutive calls with strings sharing a common prefix (and the same
        length) reuse the previously computed DP rows for that prefix.
        """
        probe = self.probe
        tau = self.tau
        len_r, len_s = len(text), len(probe)
        delta = len_s - len_r
        if abs(delta) > tau:
            # Different length class: drop the cache, band geometry changed.
            self._previous_text = None
            self._rows = []
            return tau + 1
        if text == probe:
            # Exact match; do not touch the cache (cheap fast path).
            return 0

        left = (tau - delta) // 2
        right = (tau + delta) // 2

        reuse = 0
        if (
            self._previous_text is not None
            and len(self._previous_text) == len_r
            and self._rows
        ):
            reuse = longest_common_prefix(self._previous_text, text)
            reuse = min(reuse, len(self._rows) - 1)
            if reuse:
                self.cache_hits += 1
                self.rows_reused += reuse
        else:
            self._rows = []

        if not self._rows:
            self._rows = [self._initial_row(right)]
        else:
            del self._rows[reuse + 1:]

        rows = self._rows
        previous = rows[reuse]
        for i in range(reuse + 1, len_r + 1):
            lo = max(0, i - left)
            hi = min(len_s, i + right)
            if lo > hi:
                self._previous_text = text
                return tau + 1
            current = [_INF] * (len_s + 1)
            char_r = text[i - 1]
            min_expected = _INF
            remaining_r = len_r - i
            cells = 0
            for j in range(lo, hi + 1):
                if j == 0:
                    value = i
                else:
                    cost = 0 if char_r == probe[j - 1] else 1
                    value = previous[j - 1] + cost
                    if previous[j] + 1 < value:
                        value = previous[j] + 1
                    if current[j - 1] + 1 < value:
                        value = current[j - 1] + 1
                current[j] = value
                cells += 1
                if value < _INF:
                    expected = value + abs((len_s - j) - remaining_r)
                    if expected < min_expected:
                        min_expected = expected
            self._count_cells(cells)
            rows.append(current)
            previous = current
            if min_expected > tau:
                self._count_early_termination()
                self._previous_text = text
                return tau + 1

        self._previous_text = text
        distance = previous[len_s]
        return distance if distance <= tau else tau + 1

    def reset(self) -> None:
        """Forget the cached rows (e.g. when moving to a new inverted list)."""
        self._previous_text = None
        self._rows = []
