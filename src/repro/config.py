"""Configuration objects for the Pass-Join driver and the baselines.

The paper evaluates several variants of the two expensive phases of the
algorithm (substring selection in Section 4 and verification in Section 5).
:class:`JoinConfig` captures those choices so that a single driver
(:class:`repro.core.join.PassJoin`) can run any combination, which is exactly
what the Figure 12–14 ablation benchmarks need.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from .exceptions import ConfigurationError, InvalidThresholdError


class SelectionMethod(str, Enum):
    """Substring-selection strategies of Section 4 of the paper.

    ``LENGTH``
        Select every substring whose length equals the segment length
        (the straw-man baseline; ``(τ+1)(|s|+1) − l`` substrings).
    ``SHIFT``
        Select substrings whose start position is within ``±τ`` of the
        segment start (Wang et al.'s scheme; ``(τ+1)(2τ+1)`` substrings).
    ``POSITION``
        Position-aware selection of Section 4.1 (``(τ+1)²`` substrings).
    ``MULTI_MATCH``
        Multi-match-aware selection of Section 4.2 — the paper's minimal
        scheme (``⌊(τ²−Δ²)/2⌋ + τ + 1`` substrings).
    """

    LENGTH = "length"
    SHIFT = "shift"
    POSITION = "position"
    MULTI_MATCH = "multi-match"


class VerificationMethod(str, Enum):
    """Verification strategies of Section 5 (the Figure 14 ablation).

    ``BANDED``
        Classic banded dynamic programming computing ``2τ+1`` diagonals per
        row with the naive row-maximum early termination.
    ``LENGTH_AWARE``
        Length-aware banded DP computing ``τ+1`` cells per row with the
        expected-edit-distance early termination (Section 5.1).
    ``EXTENSION``
        Extension-based verification around the matching segment with the
        tightened thresholds ``τ_l = i−1`` and ``τ_r = τ+1−i`` (Section 5.2).
    ``SHARE_PREFIX``
        Extension-based verification that additionally reuses DP rows across
        inverted-list entries sharing a common prefix (Section 5.3).
    ``MYERS``
        Bit-parallel Myers verifier (an extension beyond the paper, used by
        the verifier-kernel ablation benchmark).
    ``MYERS_BATCH``
        Batched bit-parallel verifier (library extension): one probe's
        character masks are built once and swept across the whole inverted
        list / batch group with Hyyrö's bounded cutoff, instead of
        re-encoding the pattern per candidate pair.
    """

    BANDED = "banded"
    LENGTH_AWARE = "length-aware"
    EXTENSION = "extension"
    SHARE_PREFIX = "share-prefix"
    MYERS = "myers"
    MYERS_BATCH = "myers-batch"


class PartitionStrategy(str, Enum):
    """How an indexed string is split into ``τ+1`` segments.

    ``EVEN`` is the paper's scheme (segment lengths differ by at most one).
    ``LEFT_HEAVY`` and ``RIGHT_HEAVY`` are deliberately bad strategies kept
    for the partition ablation benchmark: they concentrate the slack on one
    side, producing shorter (hence less selective) segments at the other.
    """

    EVEN = "even"
    LEFT_HEAVY = "left-heavy"
    RIGHT_HEAVY = "right-heavy"


def validate_threshold(tau: int) -> int:
    """Validate and return an edit-distance threshold.

    Raises :class:`InvalidThresholdError` if ``tau`` is not a non-negative
    integer (booleans are rejected too, since ``True`` silently behaving as
    ``1`` hides caller bugs).
    """
    if isinstance(tau, bool) or not isinstance(tau, int) or tau < 0:
        raise InvalidThresholdError(tau)
    return tau


@dataclass(frozen=True, slots=True)
class JoinConfig:
    """Tuning knobs for :class:`repro.core.join.PassJoin` and the parallel
    driver :class:`repro.core.parallel.ParallelPassJoin`.

    Parameters
    ----------
    selection:
        Which substring-selection method to use (default: multi-match-aware,
        the paper's recommended and provably minimal scheme).
    verification:
        Which verification strategy to use (default: share-prefix, the
        paper's fastest).
    partition:
        Partition strategy for indexed strings (default: even).
    workers:
        Number of parallel probe workers.  ``1`` (default) runs the serial
        driver; ``0`` means "one per available CPU"; larger values fan probe
        chunks out over worker processes (or threads, where ``fork`` is
        unavailable).
    chunk_size:
        Number of probe strings per parallel chunk; ``None`` (default) picks
        a size that gives each worker several chunks.
    """

    selection: SelectionMethod = SelectionMethod.MULTI_MATCH
    verification: VerificationMethod = VerificationMethod.SHARE_PREFIX
    partition: PartitionStrategy = PartitionStrategy.EVEN
    workers: int = 1
    chunk_size: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.selection, SelectionMethod):
            object.__setattr__(
                self, "selection", SelectionMethod(str(self.selection))
            )
        if not isinstance(self.verification, VerificationMethod):
            object.__setattr__(
                self, "verification", VerificationMethod(str(self.verification))
            )
        if not isinstance(self.partition, PartitionStrategy):
            object.__setattr__(
                self, "partition", PartitionStrategy(str(self.partition))
            )
        if (isinstance(self.workers, bool) or not isinstance(self.workers, int)
                or self.workers < 0):
            raise ConfigurationError(
                f"workers must be a non-negative integer (0 = all CPUs), "
                f"got {self.workers!r}")
        if self.chunk_size is not None and (
                isinstance(self.chunk_size, bool)
                or not isinstance(self.chunk_size, int)
                or self.chunk_size < 1):
            raise ConfigurationError(
                f"chunk_size must be a positive integer or None, "
                f"got {self.chunk_size!r}")

    @classmethod
    def from_names(cls, selection: str = "multi-match",
                   verification: str = "share-prefix",
                   partition: str = "even", workers: int = 1,
                   chunk_size: int | None = None) -> "JoinConfig":
        """Build a config from plain strings, with a friendly error message."""
        try:
            return cls(
                selection=SelectionMethod(selection),
                verification=VerificationMethod(verification),
                partition=PartitionStrategy(partition),
                workers=workers,
                chunk_size=chunk_size,
            )
        except ValueError as exc:
            raise ConfigurationError(str(exc)) from exc


DEFAULT_CONFIG = JoinConfig()


#: Shard placement policies of the sharded serving tier
#: (:mod:`repro.service.placement`): ``hash`` is a consistent-hashing ring
#: (resizes move ~1/N of the records), ``length`` places by splittable
#: length bands, ``modulo`` is the legacy ``id % N`` map.
SHARD_POLICIES = ("hash", "length", "modulo")
#: Shard execution backends; ``auto`` resolves per platform at runtime.
SHARD_BACKENDS = ("auto", "process", "thread")
#: Registered similarity kernels (see :mod:`repro.core.kernel`): the
#: partition-based edit-distance pipeline and the prefix-filter token-set
#: Jaccard pipeline.  :data:`repro.core.kernel` asserts its registry matches
#: this tuple, the same contract placement maps keep with SHARD_POLICIES.
KERNELS = ("edit-distance", "token-jaccard")
#: Kernel served when a configuration does not name one.
DEFAULT_KERNEL = "edit-distance"


@dataclass(frozen=True, slots=True)
class ServiceConfig:
    """Tuning knobs for the online serving layer (:mod:`repro.service`).

    Parameters
    ----------
    host / port:
        Bind address of the JSON-lines TCP server.  ``port=0`` asks the
        operating system for an ephemeral port (the bound port is reported
        by :attr:`repro.service.server.SimilarityServer.address`).
    max_tau:
        Largest edit-distance threshold any query may use; the dynamic
        index partitions every string into ``max_tau + 1`` segments.
    partition:
        Partition strategy for indexed strings (default: even).
    cache_capacity:
        Maximum number of query results kept by the LRU
        :class:`~repro.service.cache.QueryCache`; ``0`` disables caching.
    max_batch:
        Maximum number of concurrent requests the
        :class:`~repro.service.batcher.RequestBatcher` coalesces into one
        index pass; reaching it drains the batch immediately.
    max_query_batch:
        Largest number of queries one ``search-batch`` request line may
        carry (``0`` = unlimited).  Bounds how long a single request can
        monopolise the serving core.
    batch_window:
        Seconds the batcher waits for more concurrent requests before
        draining a non-full batch (small: it only exists to catch requests
        arriving in the same scheduling quantum).
    compact_interval:
        Number of tombstoned (deleted but still indexed) records the
        dynamic index tolerates before compacting automatically; ``0``
        compacts on every delete.
    shards:
        Number of shard workers the collection is partitioned across.
        ``1`` (default) serves a single unsharded dynamic index; larger
        values route through a :class:`repro.service.sharding.ShardRouter`.
    shard_policy:
        Record placement: ``"hash"`` (consistent-hashing ring — uniform,
        and a fleet resize only moves ~1/N of the records), ``"length"``
        (length bands — queries only probe intersecting shards), or
        ``"modulo"`` (the legacy ``id % N`` map).
    shard_backend:
        ``"process"`` (fork-spawned shard workers), ``"thread"``
        (in-process shards), or ``"auto"`` (process on multi-core fork
        platforms, thread elsewhere).
    migration_batch:
        Largest number of records one live-resharding step moves between
        two shards.  Bounds how long a single migration step can hold the
        serving loop, which is what keeps queries flowing while an
        ``add-shard``/``remove-shard`` rebalance is in flight.
    slow_query_ms:
        Latency threshold (milliseconds) above which a request is written
        to the structured slow-query log (see :mod:`repro.obs.slowlog`).
        ``0`` (default) disables slow-query logging.
    kernel:
        Similarity kernel the service runs (one of :data:`KERNELS`):
        ``"edit-distance"`` (the Pass-Join partition pipeline; ``tau`` is
        an edit-distance bound) or ``"token-jaccard"`` (prefix-filtered
        token sets; ``tau`` is a scaled Jaccard distance in ``[0, 100)``).
        One server serves one kernel; requests naming another kernel are
        rejected with the served and registered kernel names.
    replicas:
        Read replicas per shard (``0``, the default, disables replication).
        Each shard primary feeds ``replicas`` extra workers from its
        epoch-tagged mutation log; reads load-balance across replicas whose
        applied epoch matches the router's epoch mirror, and a stale or
        dead replica is bypassed to the primary — never served.  Setting
        ``replicas > 0`` routes even a single-shard service through the
        :class:`~repro.service.sharding.ShardRouter` so the replica fleet
        exists to serve from.
    acceptors:
        Number of acceptor loops the TCP transport runs (default ``1``).
        With more than one, the extra acceptors share the listening port
        via ``SO_REUSEPORT`` (each with its own event loop, request
        batcher, and per-acceptor metrics, all over the one shared
        service); platforms without ``SO_REUSEPORT`` fall back to a single
        acceptor with a warning.
    """

    host: str = "127.0.0.1"
    port: int = 8765
    max_tau: int = 2
    partition: PartitionStrategy = PartitionStrategy.EVEN
    cache_capacity: int = 1024
    max_batch: int = 64
    max_query_batch: int = 1024
    batch_window: float = 0.002
    compact_interval: int = 64
    shards: int = 1
    shard_policy: str = "hash"
    shard_backend: str = "auto"
    migration_batch: int = 256
    slow_query_ms: float = 0.0
    kernel: str = DEFAULT_KERNEL
    replicas: int = 0
    acceptors: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.partition, PartitionStrategy):
            object.__setattr__(
                self, "partition", PartitionStrategy(str(self.partition))
            )
        validate_threshold(self.max_tau)
        if not isinstance(self.host, str) or not self.host:
            raise ConfigurationError(f"host must be a non-empty string, "
                                     f"got {self.host!r}")
        for name, value in (("port", self.port),
                            ("cache_capacity", self.cache_capacity),
                            ("max_query_batch", self.max_query_batch),
                            ("compact_interval", self.compact_interval),
                            ("replicas", self.replicas)):
            if isinstance(value, bool) or not isinstance(value, int) or value < 0:
                raise ConfigurationError(
                    f"{name} must be a non-negative integer, got {value!r}")
        if self.port > 65535:
            raise ConfigurationError(f"port must be <= 65535, got {self.port}")
        if (isinstance(self.max_batch, bool) or not isinstance(self.max_batch, int)
                or self.max_batch < 1):
            raise ConfigurationError(
                f"max_batch must be a positive integer, got {self.max_batch!r}")
        if (isinstance(self.acceptors, bool)
                or not isinstance(self.acceptors, int) or self.acceptors < 1):
            raise ConfigurationError(
                f"acceptors must be a positive integer, got {self.acceptors!r}")
        if (isinstance(self.batch_window, bool)
                or not isinstance(self.batch_window, (int, float))
                or self.batch_window < 0):
            raise ConfigurationError(
                f"batch_window must be a non-negative number, "
                f"got {self.batch_window!r}")
        if (isinstance(self.slow_query_ms, bool)
                or not isinstance(self.slow_query_ms, (int, float))
                or self.slow_query_ms < 0):
            raise ConfigurationError(
                f"slow_query_ms must be a non-negative number, "
                f"got {self.slow_query_ms!r}")
        if (isinstance(self.shards, bool) or not isinstance(self.shards, int)
                or self.shards < 1):
            raise ConfigurationError(
                f"shards must be a positive integer, got {self.shards!r}")
        if (isinstance(self.migration_batch, bool)
                or not isinstance(self.migration_batch, int)
                or self.migration_batch < 1):
            raise ConfigurationError(
                f"migration_batch must be a positive integer, "
                f"got {self.migration_batch!r}")
        if self.shard_policy not in SHARD_POLICIES:
            raise ConfigurationError(
                f"shard_policy must be one of {SHARD_POLICIES}, "
                f"got {self.shard_policy!r}")
        if self.shard_backend not in SHARD_BACKENDS:
            raise ConfigurationError(
                f"shard_backend must be one of {SHARD_BACKENDS}, "
                f"got {self.shard_backend!r}")
        if self.kernel not in KERNELS:
            raise ConfigurationError(
                f"kernel must be one of {KERNELS}, got {self.kernel!r}")


DEFAULT_SERVICE_CONFIG = ServiceConfig()
