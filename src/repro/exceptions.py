"""Exception hierarchy for the Pass-Join reproduction library.

All errors raised by the public API derive from :class:`PassJoinError`, so
callers can catch a single base class.  More specific subclasses signal the
usual misuse cases: invalid thresholds, malformed configuration, inputs that
violate a documented precondition, and dataset-generation problems.
"""

from __future__ import annotations


class PassJoinError(Exception):
    """Base class for every error raised by this library."""


class InvalidThresholdError(PassJoinError, ValueError):
    """The edit-distance threshold ``tau`` is not a non-negative integer."""

    def __init__(self, tau: object) -> None:
        super().__init__(
            f"edit-distance threshold must be a non-negative integer, got {tau!r}"
        )
        self.tau = tau


class InvalidPartitionError(PassJoinError, ValueError):
    """A string cannot be partitioned into the requested number of segments."""


class ConfigurationError(PassJoinError, ValueError):
    """A configuration value is out of range or inconsistent.

    Raised at construction time by :class:`repro.config.JoinConfig` and
    :class:`repro.config.ServiceConfig` so a bad knob (``shards < 1``, an
    unknown ``shard_policy``, ``migration_batch < 1``, ...) fails with a
    clear message instead of deep inside the serving stack.
    """


#: Short alias for :class:`ConfigurationError`.
ConfigError = ConfigurationError


class UnknownMethodError(ConfigurationError):
    """A selection/verification/algorithm name does not match a known method."""

    def __init__(self, kind: str, name: str, known: tuple[str, ...]) -> None:
        super().__init__(
            f"unknown {kind} {name!r}; expected one of {', '.join(sorted(known))}"
        )
        self.kind = kind
        self.name = name
        self.known = known


class DatasetError(PassJoinError):
    """A dataset could not be generated, loaded, or parsed."""


class ExperimentError(PassJoinError):
    """A benchmark experiment was misconfigured or failed to run."""


class ServiceError(PassJoinError):
    """The similarity-search service rejected a request or misbehaved.

    Raised by the service clients when the server answers ``ok: false`` or
    violates the JSON-lines protocol (truncated stream, non-JSON reply).
    """


class ProtocolError(ServiceError):
    """The JSON-lines wire protocol itself was violated.

    Raised by the service clients when the server closes the connection
    mid-response, sends a truncated or non-JSON frame, or the transport
    resets underneath a request — instead of leaking a bare
    ``json.JSONDecodeError`` or ``ConnectionResetError``.  Subclasses
    :class:`ServiceError`, so existing ``except ServiceError`` handlers
    keep working.
    """
