"""Mergeable metrics: counters, gauges, and fixed-bucket histograms.

:class:`MetricsRegistry` is the telemetry sink of the serving stack.  Its
design constraints, in order:

1. **Cheap on the hot path.**  A counter bump is one dict operation; a
   histogram observation is one :func:`bisect.bisect_left` over a short
   tuple of bucket bounds plus three scalar updates.  No locks, no label
   hashing, no string formatting — rendering cost is paid at scrape time.
2. **Snapshot-able to plain dicts.**  :meth:`MetricsRegistry.snapshot`
   returns nothing but ``dict``/``list``/``str``/numbers, so a snapshot
   travels unchanged over the JSON wire protocol *and* over the pickle
   pipes of the process shard backend.
3. **Mergeable.**  :func:`merge_snapshots` sums counters, gauges, and
   bucket counts element-wise, so the shard router can aggregate the
   snapshots its fork-spawned workers ship back — the same aggregation
   shape as :meth:`repro.service.sharding.ShardRouter.status_summary`.

:func:`funnel_snapshot` bridges the engine's per-run
:class:`~repro.types.JoinStatistics` (where the probe pipeline and the
verification kernels already count their work) into the same snapshot
format, and :func:`render_prometheus`/:func:`parse_prometheus` handle the
Prometheus text exposition format for ``admin metrics --prometheus``.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Any, Iterable, Mapping

from ..types import JoinStatistics

#: Default latency histogram bounds, in seconds.  Sub-millisecond buckets
#: matter here: a cached lookup answers in tens of microseconds while a
#: cold sharded scatter takes milliseconds, and one decade-spaced ladder
#: must resolve both.  Observations above the last bound land in the
#: implicit +Inf bucket.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0)

#: JoinStatistics counter fields surfaced as funnel metrics, in funnel
#: order: what the index scanned, what survived the id-column filters,
#: what the verifiers checked, what they accepted.
FUNNEL_COUNTER_FIELDS: tuple[tuple[str, str], ...] = (
    ("num_selected_substrings", "engine_selected_substrings"),
    ("num_index_probes", "engine_index_probes"),
    ("num_postings_scanned", "engine_postings_scanned"),
    ("num_candidates", "engine_candidates"),
    ("num_verifications", "engine_verifications"),
    ("num_accepted", "engine_accepted"),
    ("num_results", "engine_results"),
    ("num_matrix_cells", "engine_matrix_cells"),
    ("num_early_terminations", "engine_early_terminations"),
    ("num_windows_reused", "engine_windows_reused"),
    ("num_windows_cache_hits", "engine_windows_cache_hits"),
    ("num_postings_fanout", "engine_postings_fanout"),
    ("selection_seconds", "engine_selection_seconds"),
    ("verification_seconds", "engine_verification_seconds"),
)


class _Histogram:
    """One fixed-bucket histogram: bounds, per-bucket counts, sum, count."""

    __slots__ = ("bounds", "counts", "total", "count")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self.bounds = bounds
        # One slot per bound plus the overflow (+Inf) slot.
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1


class MetricsRegistry:
    """Counters, gauges, and fixed-bucket histograms with plain snapshots.

    Examples
    --------
    >>> registry = MetricsRegistry()
    >>> registry.inc("requests.search")
    >>> registry.observe("latency_seconds.search", 0.004)
    >>> snap = registry.snapshot()
    >>> snap["counters"]["requests.search"]
    1
    >>> snap["histograms"]["latency_seconds.search"]["count"]
    1
    """

    def __init__(self) -> None:
        self._counters: dict[str, int | float] = {}
        self._gauges: dict[str, int | float] = {}
        self._histograms: dict[str, _Histogram] = {}

    # ------------------------------------------------------------------
    # Hot-path updates
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: int | float = 1) -> None:
        """Add ``amount`` (default 1) to the counter ``name``."""
        counters = self._counters
        counters[name] = counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: int | float) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        self._gauges[name] = value

    def observe(self, name: str, value: float,
                buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS) -> None:
        """Record ``value`` into the histogram ``name``.

        The histogram is created on first observation with ``buckets``
        (ascending upper bounds; values above the last bound count in the
        implicit +Inf bucket).  Later ``buckets`` arguments for the same
        name are ignored — bounds are fixed at creation, which is what
        keeps snapshots mergeable.
        """
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = _Histogram(tuple(buckets))
        histogram.observe(value)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def counter_value(self, name: str) -> int | float:
        """Current value of counter ``name`` (0 when never incremented)."""
        return self._counters.get(name, 0)

    def counters_with_prefix(self, prefix: str) -> dict[str, int | float]:
        """Counters whose name starts with ``prefix``, keyed by the suffix."""
        return {name[len(prefix):]: value
                for name, value in self._counters.items()
                if name.startswith(prefix)}

    def snapshot(self) -> dict[str, Any]:
        """The registry as a plain (JSON- and pickle-ready) dictionary."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {
                name: {"buckets": list(histogram.bounds),
                       "counts": list(histogram.counts),
                       "sum": histogram.total,
                       "count": histogram.count}
                for name, histogram in self._histograms.items()},
        }


def empty_snapshot() -> dict[str, Any]:
    """The snapshot of a registry nothing was ever recorded into."""
    return {"counters": {}, "gauges": {}, "histograms": {}}


def merge_snapshots(snapshots: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Sum several registry snapshots into one.

    Counters and gauges are summed by name (gauges in this library are
    additive fleet quantities — index entries, bytes, cache sizes — so the
    sum is the fleet total).  Histograms are summed bucket-by-bucket;
    merging two histograms of the same name with different bucket bounds
    raises ``ValueError``, because their counts are not comparable.
    ``merge_snapshots([s])`` equals ``s`` and the operation is associative,
    which is what makes router-side aggregation order-independent
    (property-tested).
    """
    merged = empty_snapshot()
    counters = merged["counters"]
    gauges = merged["gauges"]
    histograms = merged["histograms"]
    for snapshot in snapshots:
        for name, value in snapshot.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snapshot.get("gauges", {}).items():
            gauges[name] = gauges.get(name, 0) + value
        for name, histogram in snapshot.get("histograms", {}).items():
            existing = histograms.get(name)
            if existing is None:
                histograms[name] = {"buckets": list(histogram["buckets"]),
                                    "counts": list(histogram["counts"]),
                                    "sum": histogram["sum"],
                                    "count": histogram["count"]}
                continue
            if list(existing["buckets"]) != list(histogram["buckets"]):
                raise ValueError(
                    f"cannot merge histogram {name!r}: bucket bounds differ "
                    f"({existing['buckets']} vs {histogram['buckets']})")
            existing["counts"] = [a + b for a, b in zip(existing["counts"],
                                                        histogram["counts"])]
            existing["sum"] += histogram["sum"]
            existing["count"] += histogram["count"]
    return merged


def funnel_snapshot(statistics: JoinStatistics,
                    memory: Mapping[str, int] | None = None,
                    kernel: str | None = None) -> dict[str, Any]:
    """Render a :class:`~repro.types.JoinStatistics` as a registry snapshot.

    The engine's probe pipeline and the verification kernels (including
    the batched Myers kernel's matrix-cell and early-termination counters)
    all record into a ``JoinStatistics``; this is the bridge that lets
    those funnel counters merge with the service-level request metrics —
    and ship over a shard worker's pipe as a plain dict.  ``memory``
    optionally adds the columnar index's memory report as gauges.
    ``kernel`` — the similarity kernel that produced the counters —
    additionally emits each funnel counter under a kernel-tagged name
    (``engine_candidates.token-jaccard``), so a scrape can attribute the
    funnel to the similarity being served; the untagged names stay, and
    stay the ones dashboards sum across a mixed fleet.
    """
    registry = MetricsRegistry()
    for field_name, metric_name in FUNNEL_COUNTER_FIELDS:
        value = getattr(statistics, field_name)
        if value:
            registry.inc(metric_name, value)
            if kernel is not None:
                registry.inc(f"{metric_name}.{kernel}", value)
    registry.set_gauge("engine_index_entries", statistics.index_entries)
    registry.set_gauge("engine_index_bytes", statistics.index_bytes)
    if memory is not None:
        for field_name, value in memory.items():
            registry.set_gauge(f"index_{field_name}", value)
    return registry.snapshot()


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
_NAME_SANITISER = re.compile(r"[^a-zA-Z0-9_:]")
_METRIC_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$")


def _prometheus_name(name: str, prefix: str) -> str:
    """A snapshot metric name as a legal Prometheus metric name."""
    sanitised = _NAME_SANITISER.sub("_", name)
    if sanitised and sanitised[0].isdigit():
        sanitised = f"_{sanitised}"
    return f"{prefix}_{sanitised}" if prefix else sanitised


def _prometheus_value(value: int | float) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


def render_prometheus(snapshot: Mapping[str, Any],
                      prefix: str = "passjoin") -> str:
    """Render a registry snapshot as Prometheus text exposition format.

    Counters and gauges become single samples; histograms become the
    conventional ``_bucket{le=...}`` (cumulative, ending in ``+Inf``),
    ``_sum``, and ``_count`` series.  Metric names are sanitised to the
    Prometheus grammar (dots and dashes become underscores) and prefixed,
    and the output is deterministically ordered — scrape diffs stay
    readable.  :func:`parse_prometheus` accepts everything emitted here.
    """
    lines: list[str] = []
    for name in sorted(snapshot.get("counters", {})):
        metric = _prometheus_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(
            f"{metric} {_prometheus_value(snapshot['counters'][name])}")
    for name in sorted(snapshot.get("gauges", {})):
        metric = _prometheus_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prometheus_value(snapshot['gauges'][name])}")
    for name in sorted(snapshot.get("histograms", {})):
        histogram = snapshot["histograms"][name]
        metric = _prometheus_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(histogram["buckets"], histogram["counts"]):
            cumulative += count
            lines.append(f'{metric}_bucket{{le="{_prometheus_value(float(bound))}"}}'
                         f" {cumulative}")
        lines.append(f'{metric}_bucket{{le="+Inf"}} {histogram["count"]}')
        lines.append(f"{metric}_sum {_prometheus_value(histogram['sum'])}")
        lines.append(f"{metric}_count {histogram['count']}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict[str, dict[str, Any]]:
    """Parse (and thereby validate) Prometheus text exposition format.

    Returns ``{metric_family: {"type": ..., "samples": [(name, labels,
    value), ...]}}``.  Raises ``ValueError`` on malformed lines, samples
    without a preceding ``# TYPE`` declaration, non-monotone histogram
    buckets, or a histogram whose ``+Inf`` bucket disagrees with its
    ``_count`` — the checks CI runs over the ``admin metrics
    --prometheus`` output.
    """
    families: dict[str, dict[str, Any]] = {}
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge",
                                                   "histogram", "summary",
                                                   "untyped"):
                raise ValueError(f"line {line_number}: malformed TYPE "
                                 f"declaration: {line!r}")
            families[parts[2]] = {"type": parts[3], "samples": []}
            continue
        if line.startswith("#"):
            continue
        match = _METRIC_LINE.match(line)
        if match is None:
            raise ValueError(f"line {line_number}: malformed sample: {line!r}")
        name = match.group("name")
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            trimmed = name[:-len(suffix)] if name.endswith(suffix) else None
            if trimmed is not None and families.get(trimmed, {}).get(
                    "type") == "histogram":
                family = trimmed
                break
        if family not in families:
            raise ValueError(f"line {line_number}: sample {name!r} has no "
                             f"preceding TYPE declaration")
        labels: dict[str, str] = {}
        if match.group("labels"):
            for pair in match.group("labels").split(","):
                key, _, raw = pair.partition("=")
                labels[key.strip()] = raw.strip().strip('"')
        raw_value = match.group("value")
        try:
            value = float(raw_value)
        except ValueError as exc:
            raise ValueError(f"line {line_number}: non-numeric sample value "
                             f"{raw_value!r}") from exc
        families[family]["samples"].append((name, labels, value))
    for family, data in families.items():
        if data["type"] != "histogram":
            continue
        buckets = [(labels["le"], value) for name, labels, value
                   in data["samples"] if name == f"{family}_bucket"]
        counts = [value for name, _, value in data["samples"]
                  if name == f"{family}_count"]
        if not buckets or not counts:
            raise ValueError(f"histogram {family!r} is missing bucket or "
                             f"count samples")
        previous = -1.0
        for le, value in buckets:
            if value < previous:
                raise ValueError(f"histogram {family!r} has non-monotone "
                                 f"cumulative buckets")
            previous = value
        if buckets[-1][0] != "+Inf":
            raise ValueError(f"histogram {family!r} does not end in a "
                             f"+Inf bucket")
        if buckets[-1][1] != counts[0]:
            raise ValueError(f"histogram {family!r}: +Inf bucket "
                             f"({buckets[-1][1]}) != count ({counts[0]})")
    return families
