"""Structured slow-query logging on stdlib ``logging``.

The service calls :func:`log_slow_query` for any request whose latency
exceeds :attr:`~repro.config.ServiceConfig.slow_query_ms`.  Events are
emitted through an ordinary :class:`logging.Logger` named
:data:`SLOW_QUERY_LOGGER_NAME`, carrying the structured payload in the
record's ``slow_query`` attribute — so deployments can attach any
handler they like, and :class:`JsonLogFormatter` renders each event as
one JSON object per line for machine consumption.

Following library convention, importing this module attaches **no**
handlers; call :func:`configure_slow_query_logging` (the ``serve``
command does when ``--slow-query-ms`` is set) or wire up handlers
yourself.
"""

from __future__ import annotations

import json
import logging
from typing import Any, Mapping

#: Logger through which all slow-query events flow.
SLOW_QUERY_LOGGER_NAME = "repro.service.slow_query"


class JsonLogFormatter(logging.Formatter):
    """Format log records as one JSON object per line.

    For records carrying a ``slow_query`` mapping (as emitted by
    :func:`log_slow_query`), that payload becomes the event body; plain
    records fall back to their formatted message.  Output key order is
    stable (sorted) so log diffs and tests are deterministic.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "timestamp": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
        }
        event = getattr(record, "slow_query", None)
        if isinstance(event, Mapping):
            payload["event"] = "slow_query"
            payload.update(event)
        else:
            payload["message"] = record.getMessage()
        return json.dumps(payload, sort_keys=True)


def log_slow_query(*, op: str, seconds: float, threshold_ms: float,
                   ok: bool, query: str | None = None,
                   logger: logging.Logger | None = None) -> None:
    """Emit one structured slow-query event.

    ``query`` is truncated to 200 characters — slow-query logs exist to
    answer "which op, how slow, roughly what input", not to archive
    payloads.
    """
    if logger is None:
        logger = logging.getLogger(SLOW_QUERY_LOGGER_NAME)
    if not logger.isEnabledFor(logging.WARNING):
        return
    event: dict[str, Any] = {
        "op": op,
        "latency_ms": round(seconds * 1000.0, 3),
        "threshold_ms": threshold_ms,
        "ok": ok,
    }
    if query is not None:
        event["query"] = query[:200]
    logger.warning("slow query: op=%s latency_ms=%.3f", op,
                   seconds * 1000.0, extra={"slow_query": event})


def configure_slow_query_logging(
        stream: Any | None = None) -> logging.Logger:
    """Attach a JSON-formatting stream handler to the slow-query logger.

    Idempotent: an existing handler installed by a previous call is
    reused, so repeated server starts in one process do not duplicate
    log lines.  Returns the configured logger.
    """
    logger = logging.getLogger(SLOW_QUERY_LOGGER_NAME)
    logger.setLevel(logging.WARNING)
    for handler in logger.handlers:
        if getattr(handler, "_repro_slow_query", False):
            return logger
    handler = logging.StreamHandler(stream)
    handler.setFormatter(JsonLogFormatter())
    handler._repro_slow_query = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    logger.propagate = False
    return logger
