"""Per-probe tracing for the ``explain`` op.

A :class:`ProbeTrace` rides through one
:func:`repro.core.engine.probe_record` call and records what the metrics
counters deliberately aggregate away: *per indexed length*, which
partition layout was consulted, how many selection windows were probed,
how many postings each probe scanned, and where candidates fell out of
the funnel (id filter, tombstone/exclude callback, already matched,
already verified).  ``explain`` runs the probe against a private
:class:`~repro.types.JoinStatistics`, so the trace plus the statistics
deltas reconstruct the paper's filter funnel exactly for a single query.

The hot path never sees any of this: the engine's per-posting loop is
duplicated behind an ``if trace is None`` guard, so production probes
execute the byte-identical untraced loop.

:func:`build_explain_report` renders trace + statistics + matches into a
plain-dict report (JSON- and pickle-ready), and
:func:`merge_explain_reports` aggregates the per-shard reports a
:class:`~repro.service.sharding.ShardRouter` scatter collects.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from ..types import JoinStatistics

#: Funnel counters shared by single-searcher and merged shard reports,
#: in funnel order.
FUNNEL_FIELDS: tuple[str, ...] = (
    "selected_substrings", "index_probes", "postings_scanned",
    "candidates", "verifications", "accepted")

#: Per-length counters summed when merging shard reports for a length
#: indexed on several shards (length-band policy keeps lengths disjoint,
#: but hash placement spreads every length fleet-wide).
_LENGTH_COUNTER_FIELDS: tuple[str, ...] = (
    "selection_windows", "index_probes", "postings_scanned",
    "filtered_same_id", "filtered_excluded", "filtered_already_found",
    "filtered_rechecked", "candidates", "verifications", "accepted")

_STAGE_FIELDS: tuple[str, ...] = (
    "selection_seconds", "verification_seconds", "total_seconds")


class ProbeTrace:
    """Mutable tracing context threaded through one ``probe_record`` call."""

    __slots__ = ("lengths", "short_pool_checked", "short_pool_accepted")

    def __init__(self) -> None:
        self.lengths: dict[int, dict[str, Any]] = {}
        self.short_pool_checked = 0
        self.short_pool_accepted = 0

    def length_entry(self, length: int,
                     layout: Sequence[tuple[int, int]],
                     num_selections: int) -> dict[str, Any]:
        """The per-indexed-length entry, created on first visit.

        ``layout`` is the even-partition segment table for ``length``
        (``(seg_start, seg_length)`` pairs) and ``num_selections`` the
        number of selection windows the substring selector produced for
        this probe against that layout.
        """
        entry = self.lengths.get(length)
        if entry is None:
            entry = self.lengths[length] = {
                "indexed_length": length,
                "partition_layout": [[start, seg_length]
                                     for start, seg_length in layout],
                "selection_windows": 0,
                "index_probes": 0,
                "postings_scanned": 0,
                "filtered_same_id": 0,
                "filtered_excluded": 0,
                "filtered_already_found": 0,
                "filtered_rechecked": 0,
                "candidates": 0,
                "verifications": 0,
                "accepted": 0,
            }
        entry["selection_windows"] += num_selections
        return entry

    def length_payloads(self) -> list[dict[str, Any]]:
        """Per-length entries as plain dicts, ascending by indexed length."""
        return [dict(self.lengths[length])
                for length in sorted(self.lengths)]


def build_explain_report(*, query: str, tau: int, verifier: Any,
                         trace: ProbeTrace, stats: JoinStatistics,
                         matches: Sequence[Any],
                         total_seconds: float) -> dict[str, Any]:
    """Assemble the ``explain`` report for one traced probe.

    ``stats`` must be a *fresh* :class:`~repro.types.JoinStatistics` used
    only for this probe, so its counters are exact per-query deltas.
    ``matches`` are the probe's results (anything with a ``to_dict()``,
    i.e. :class:`~repro.search.searcher.SearchMatch`); the report's
    ``funnel.accepted`` always equals ``num_matches`` because the engine
    filters previously-found ids *before* verification.
    """
    return {
        "query": query,
        "tau": tau,
        "funnel": {
            "selected_substrings": stats.num_selected_substrings,
            "index_probes": stats.num_index_probes,
            "postings_scanned": stats.num_postings_scanned,
            "candidates": stats.num_candidates,
            "verifications": stats.num_verifications,
            "accepted": stats.num_accepted,
        },
        "verifier": {
            "kernel": verifier.method.value,
            "verifications": stats.num_verifications,
            "matrix_cells": stats.num_matrix_cells,
            "early_terminations": stats.num_early_terminations,
        },
        "short_pool": {
            "records_checked": trace.short_pool_checked,
            "accepted": trace.short_pool_accepted,
        },
        "lengths": trace.length_payloads(),
        "stages": {
            "selection_seconds": stats.selection_seconds,
            "verification_seconds": stats.verification_seconds,
            "total_seconds": total_seconds,
        },
        "matches": [match.to_dict() for match in matches],
        "num_matches": len(matches),
    }


def empty_explain_report(query: str, tau: int) -> dict[str, Any]:
    """The report for a probe that touched no shard (empty length window)."""
    return {
        "query": query,
        "tau": tau,
        "funnel": {field: 0 for field in FUNNEL_FIELDS},
        "verifier": {"kernel": None, "verifications": 0,
                     "matrix_cells": 0, "early_terminations": 0},
        "short_pool": {"records_checked": 0, "accepted": 0},
        "lengths": [],
        "stages": {field: 0.0 for field in _STAGE_FIELDS},
        "matches": [],
        "num_matches": 0,
    }


def merge_explain_reports(query: str, tau: int,
                          reports: Iterable[Mapping[str, Any]]
                          ) -> dict[str, Any]:
    """Aggregate per-shard ``explain`` reports into one fleet-wide report.

    Funnel counters, verifier counters, short-pool counts, per-length
    entries, and stage times are summed (stage times are summed *work*,
    not wall time — shards probe concurrently).  Matches are merged under
    the router's ``(distance, id)`` order with ids deduplicated, matching
    what ``search`` returns mid-migration when a row is briefly present
    on both donor and recipient; the merged ``funnel.accepted`` keeps the
    raw per-shard sum, so it can exceed ``num_matches`` only during such
    a migration.  The original reports are preserved under ``"shards"``.
    """
    reports = list(reports)
    if not reports:
        return empty_explain_report(query, tau)
    merged = empty_explain_report(query, tau)
    lengths: dict[int, dict[str, Any]] = {}
    all_matches: list[Mapping[str, Any]] = []
    kernels: list[str] = []
    for report in reports:
        for field in FUNNEL_FIELDS:
            merged["funnel"][field] += report["funnel"][field]
        verifier = report["verifier"]
        for field in ("verifications", "matrix_cells", "early_terminations"):
            merged["verifier"][field] += verifier[field]
        if verifier["kernel"] is not None and verifier["kernel"] not in kernels:
            kernels.append(verifier["kernel"])
        merged["short_pool"]["records_checked"] += (
            report["short_pool"]["records_checked"])
        merged["short_pool"]["accepted"] += report["short_pool"]["accepted"]
        for entry in report["lengths"]:
            existing = lengths.get(entry["indexed_length"])
            if existing is None:
                lengths[entry["indexed_length"]] = dict(entry)
                continue
            for field in _LENGTH_COUNTER_FIELDS:
                existing[field] += entry[field]
        for field in _STAGE_FIELDS:
            merged["stages"][field] += report["stages"][field]
        all_matches.extend(report["matches"])
    if len(kernels) == 1:
        merged["verifier"]["kernel"] = kernels[0]
    elif kernels:
        merged["verifier"]["kernel"] = kernels

    merged["lengths"] = [lengths[length] for length in sorted(lengths)]
    seen_ids: set[int] = set()
    matches: list[Mapping[str, Any]] = []
    for match in sorted(all_matches,
                        key=lambda m: (m["distance"], m["id"])):
        if match["id"] in seen_ids:
            continue
        seen_ids.add(match["id"])
        matches.append(dict(match))
    merged["matches"] = matches
    merged["num_matches"] = len(matches)
    merged["shards"] = [dict(report) for report in reports]
    return merged
