"""Observability: metrics, probe traces, and structured slow-query logging.

The paper's entire evaluation story is a *funnel* — substrings selected →
candidates generated → candidates surviving the filters → verifications →
accepted pairs, plus per-stage time (Figures 11-14).  This package turns
those transient benchmark numbers into first-class serving telemetry:

* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges, and
  fixed-bucket latency histograms.  Cheap to update on the hot path,
  snapshot-able to plain dicts (JSON- and pickle-friendly), and
  **mergeable**: fork-pool workers and process-backend shards ship
  snapshots over their existing pipes and the router aggregates them with
  :func:`~repro.obs.metrics.merge_snapshots`.
* :func:`~repro.obs.metrics.funnel_snapshot` — the engine's
  :class:`~repro.types.JoinStatistics` counters (including the batched
  Myers kernel's cell/early-termination counters) rendered as a registry
  snapshot, so the probe funnel and the service-level request metrics
  merge into one scrape.
* :func:`~repro.obs.metrics.render_prometheus` — Prometheus text
  exposition rendering of any snapshot (the ``admin metrics --prometheus``
  backend), with :func:`~repro.obs.metrics.parse_prometheus` as the
  round-trip validity check.
* :class:`~repro.obs.trace.ProbeTrace` — the tracing context threaded
  through :func:`repro.core.engine.probe_record` by ``explain``: per
  indexed length, which selection windows were probed, how many postings
  were scanned, how many candidates survived each filter, and what the
  verifier accepted.
* :mod:`~repro.obs.slowlog` — structured slow-query logging on stdlib
  ``logging`` with a JSON formatter, gated by
  :attr:`~repro.config.ServiceConfig.slow_query_ms`.
"""

from .metrics import (DEFAULT_LATENCY_BUCKETS, MetricsRegistry,
                      funnel_snapshot, merge_snapshots, parse_prometheus,
                      render_prometheus)
from .slowlog import (SLOW_QUERY_LOGGER_NAME, JsonLogFormatter,
                      configure_slow_query_logging, log_slow_query)
from .trace import ProbeTrace, build_explain_report, merge_explain_reports

__all__ = [
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "merge_snapshots",
    "funnel_snapshot",
    "render_prometheus",
    "parse_prometheus",
    "ProbeTrace",
    "build_explain_report",
    "merge_explain_reports",
    "JsonLogFormatter",
    "SLOW_QUERY_LOGGER_NAME",
    "configure_slow_query_logging",
    "log_slow_query",
]
