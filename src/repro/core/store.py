"""Columnar record storage shared by every segment index.

:class:`RecordStore` is an interned table of ``(id, length, text)`` rows
held as parallel columns — two ``array('q')`` columns for the integers and
one list of strings for the texts.  Inverted lists reference rows by
*ordinal* (the row number) instead of holding Python object references, so
the postings of a :class:`~repro.core.index.SegmentIndex` become compact
``array('q')`` buffers:

* **Memory** — a posting costs 8 bytes in a flat buffer, and a record costs
  three machine words plus its text, instead of one heap ``StringRecord``
  object per record plus list slots per posting.
* **Fork friendliness** — worker processes spawned with ``fork`` (the
  parallel join pool, the process shard backend) inherit flat arrays
  copy-on-write.  Iterating them never touches per-object reference
  counts, so probing in a worker no longer faults in the pages holding
  millions of record objects (a ROADMAP open item).
* **One representation** — the join drivers, the searchers, the dynamic
  serving index, and the shard workers all store records the same way; a
  :class:`StringRecord` is materialised lazily, and only for candidates
  that survive the id-level filters.

Rows are reference counted: :meth:`RecordStore.intern` of an already-stored
``(id, text)`` pair bumps the count and returns the existing row, and
:meth:`RecordStore.release` frees the row once the count reaches zero,
recycling it through a free list so long-lived mutable indices do not grow
without bound under insert/delete churn.
"""

from __future__ import annotations

import sys
from array import array
from typing import Iterator, Sequence

from ..types import StringRecord


class RecordStore:
    """Interned columnar table of ``(id, length, text)`` rows.

    Examples
    --------
    >>> store = RecordStore()
    >>> row = store.intern(StringRecord(id=7, text="vldb"))
    >>> store.id_at(row), store.text_at(row), store.length_at(row)
    (7, 'vldb', 4)
    >>> store.record_at(row)
    StringRecord(id=7, text='vldb')
    """

    __slots__ = ("_ids", "_lengths", "_texts", "_refs", "_rows", "_free",
                 "_live", "_text_chars")

    def __init__(self) -> None:
        self._ids = array("q")
        self._lengths = array("q")
        self._texts: list[str] = []
        self._refs = array("q")
        # (id, text) -> row; the interning map that keeps one row per record.
        self._rows: dict[tuple[int, str], int] = {}
        self._free: list[int] = []
        self._live = 0
        self._text_chars = 0

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------
    def intern(self, record: StringRecord) -> int:
        """Store ``record`` (or find its existing row); return the row ordinal.

        Every ``intern`` must eventually be balanced by one
        :meth:`release`; an already-stored ``(id, text)`` pair only bumps
        the row's reference count.
        """
        key = (record.id, record.text)
        row = self._rows.get(key)
        if row is not None:
            self._refs[row] += 1
            return row
        if self._free:
            row = self._free.pop()
            self._ids[row] = record.id
            self._lengths[row] = record.length
            self._texts[row] = record.text
            self._refs[row] = 1
        else:
            row = len(self._texts)
            self._ids.append(record.id)
            self._lengths.append(record.length)
            self._texts.append(record.text)
            self._refs.append(1)
        self._rows[key] = row
        self._live += 1
        self._text_chars += len(record.text)
        return row

    def release(self, row: int) -> int:
        """Drop one reference to ``row``; return the remaining count.

        At zero the row is cleared and recycled through the free list —
        the caller guarantees no posting references it any more.
        """
        remaining = self._refs[row] - 1
        if remaining < 0:
            raise ValueError(f"row {row} released more often than interned")
        self._refs[row] = remaining
        if remaining == 0:
            text = self._texts[row]
            del self._rows[(self._ids[row], text)]
            self._text_chars -= len(text)
            self._texts[row] = ""
            self._ids[row] = -1
            self._lengths[row] = 0
            self._free.append(row)
            self._live -= 1
        return remaining

    def find(self, record_id: int, text: str) -> int | None:
        """Row ordinal of a stored ``(id, text)`` pair, or ``None``."""
        return self._rows.get((record_id, text))

    def is_live(self, row: int) -> bool:
        """True while ``row`` holds a record (not released/recycled)."""
        return self._refs[row] > 0

    # ------------------------------------------------------------------
    # Column access
    # ------------------------------------------------------------------
    def id_at(self, row: int) -> int:
        return self._ids[row]

    def text_at(self, row: int) -> str:
        return self._texts[row]

    def length_at(self, row: int) -> int:
        return self._lengths[row]

    def record_at(self, row: int) -> StringRecord:
        """Materialise the row as a :class:`StringRecord` (lazy, per call)."""
        return StringRecord(id=self._ids[row], text=self._texts[row])

    def sort_key(self, row: int) -> tuple[str, int]:
        """The ``(text, id)`` ordering key of a row (sorted-posting invariant)."""
        return (self._texts[row], self._ids[row])

    @property
    def ids(self) -> "array[int]":
        """The id column itself, for hot loops that index it directly.

        Treat as read-only: mutating it bypasses interning and refcounts.
        """
        return self._ids

    @property
    def lengths(self) -> "array[int]":
        """The length column itself (read-only; see :attr:`ids`)."""
        return self._lengths

    @property
    def texts(self) -> list[str]:
        """The text column itself (read-only; see :attr:`ids`)."""
        return self._texts

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._live

    @property
    def live_count(self) -> int:
        """Number of rows currently holding a record."""
        return self._live

    @property
    def row_count(self) -> int:
        """Number of allocated rows (live + recyclable)."""
        return len(self._texts)

    def approximate_bytes(self) -> int:
        """Data-structure bytes of the columns: three machine words per
        allocated row (id, length, text pointer) plus the live text payload.

        Python container overhead is deliberately excluded, mirroring
        :meth:`repro.core.index.SegmentIndex.approximate_bytes`.
        """
        return 24 * len(self._texts) + self._text_chars

    def deep_bytes(self) -> int:
        """Actual ``sys.getsizeof``-based footprint of the columns."""
        total = (sys.getsizeof(self._ids) + sys.getsizeof(self._lengths)
                 + sys.getsizeof(self._refs) + sys.getsizeof(self._texts)
                 + sys.getsizeof(self._rows) + sys.getsizeof(self._free))
        for text in self._texts:
            total += sys.getsizeof(text)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RecordStore(live={self._live}, rows={len(self._texts)}, "
                f"free={len(self._free)})")


class PostingList(Sequence[StringRecord]):
    """A lazy record view over one inverted list of store row ordinals.

    Iteration and indexing materialise :class:`StringRecord` objects on
    demand, so existing callers (and tests) keep seeing records; the probe
    hot path instead reads :attr:`ordinals` and the :attr:`store` columns
    directly and only materialises the candidates that survive the
    id-level filters.
    """

    __slots__ = ("store", "ordinals")

    def __init__(self, store: RecordStore, ordinals: array) -> None:
        self.store = store
        self.ordinals = ordinals

    def __len__(self) -> int:
        return len(self.ordinals)

    def __getitem__(self, position):  # type: ignore[override]
        if isinstance(position, slice):
            return [self.store.record_at(row)
                    for row in self.ordinals[position]]
        return self.store.record_at(self.ordinals[position])

    def __iter__(self) -> Iterator[StringRecord]:
        record_at = self.store.record_at
        for row in self.ordinals:
            yield record_at(row)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (list, tuple, PostingList)):
            return list(self) == list(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PostingList({list(self)!r})"
