"""The paper's primary contribution: the Pass-Join partition-based framework.

Sub-modules map one-to-one onto the paper's sections:

* :mod:`repro.core.partition` — the even-partition scheme (Section 3.1).
* :mod:`repro.core.index` — the segment inverted indices ``L_l^i``
  (Section 3.2).
* :mod:`repro.core.selection` — the four substring-selection methods
  (Section 4).
* :mod:`repro.core.verify` — the verification strategies (Section 5).
* :mod:`repro.core.join` — the :class:`PassJoin` driver gluing it all
  together (Algorithm 1).
* :mod:`repro.core.kernel` — the pluggable similarity-kernel interface:
  the Pass-Join pipeline packaged as the ``edit-distance`` kernel, plus a
  prefix-filter ``token-jaccard`` kernel behind the same serving stack.
"""

from .index import SegmentIndex
from .join import PassJoin, pass_join, pass_join_pairs
from .kernel import (SimilarityKernel, get_kernel, kernel_names,
                     resolve_kernel, token_jaccard_distance)
from .partition import partition, segment_layout
from .selection import make_selector
from .store import PostingList, RecordStore

__all__ = [
    "PassJoin",
    "pass_join",
    "pass_join_pairs",
    "SegmentIndex",
    "RecordStore",
    "PostingList",
    "partition",
    "segment_layout",
    "make_selector",
    "SimilarityKernel",
    "get_kernel",
    "kernel_names",
    "resolve_kernel",
    "token_jaccard_distance",
]
