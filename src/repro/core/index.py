"""Segment inverted indices ``L_l^i`` (Section 3.2), columnar edition.

For every indexed string length ``l`` and segment ordinal ``i`` the index
keeps a dictionary mapping segment text to the inverted list of strings
whose ``i``-th segment equals that text.  Postings are stored columnar: the
records themselves live once in a shared :class:`~repro.core.store.RecordStore`
(parallel ``(id, length, text)`` columns) and every inverted list is a
compact ``array('q')`` of store row ordinals.  :meth:`SegmentIndex.lookup`
resolves ordinals lazily through a :class:`~repro.core.store.PostingList`
view, so record objects are only materialised for candidates that survive
the probe-side filters — and ``fork`` workers inherit flat arrays
copy-on-write instead of touching refcounts on millions of record objects.

The lists preserve insertion order; because the Pass-Join driver inserts
strings in sorted (length, text) order, every inverted list is
automatically sorted alphabetically by the indexed string — the property
the shared-prefix verifier exploits.

The index also implements the paper's memory optimisation: once the driver
has moved on to strings of length ``l``, indices for lengths smaller than
``l − τ`` can never be probed again and are evicted
(:meth:`SegmentIndex.evict_below`).
"""

from __future__ import annotations

import sys
from array import array
from bisect import insort
from typing import Iterable, Sequence

from ..config import PartitionStrategy, validate_threshold
from ..types import StringRecord
from .partition import can_partition, partition, segment_layout
from .store import PostingList, RecordStore

#: Bytes of one posting in the approximate accounting (one machine word —
#: exactly one ``array('q')`` slot in the columnar layout).
POSTING_BYTES = 8


class SegmentIndex:
    """The collection of inverted indices ``L_l^i`` used by Pass-Join.

    Parameters
    ----------
    tau:
        Edit-distance threshold; every indexed string is split into
        ``tau + 1`` segments.
    strategy:
        Partition strategy (even by default, see
        :mod:`repro.core.partition`).
    store:
        Optional shared :class:`~repro.core.store.RecordStore`.  By default
        every index owns a private store; passing one lets several indices
        (or an index and its owning searcher) share a single record table.
    """

    def __init__(self, tau: int,
                 strategy: PartitionStrategy = PartitionStrategy.EVEN, *,
                 store: RecordStore | None = None) -> None:
        self.tau = validate_threshold(tau)
        self.strategy = strategy
        self.store = store if store is not None else RecordStore()
        # _indices[length][ordinal][segment_text] -> array('q') of store rows
        self._indices: dict[int, dict[int, dict[str, array]]] = {}
        self._records_per_length: dict[int, int] = {}
        self._segment_count = 0
        # Incremental accounting, maintained by add()/evict_below() so the
        # driver can record the *peak* concurrent index size cheaply.
        self._entries_by_length: dict[int, int] = {}
        self._bytes_by_length: dict[int, int] = {}
        self._current_entries = 0
        self._current_bytes = 0
        # Bumped whenever the *set* of indexed lengths changes (a length
        # group appears or disappears) — the invalidation signal consumed
        # by the kernel backends' persistent window caches.
        self._lengths_version = 0

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def add(self, record: StringRecord, *, keep_sorted: bool = False) -> int:
        """Partition ``record`` and add its segments; return the segment count.

        Strings shorter than ``tau + 1`` cannot be partitioned and are not
        indexed (the driver keeps them in a separate short-string pool);
        ``0`` is returned for them.

        The join drivers insert records in canonical (length, text) order, so
        plain appending keeps every inverted list sorted by the indexed
        string — the property the share-prefix verifier exploits.  Callers
        that insert out of order (the dynamic serving index) pass
        ``keep_sorted=True`` to place each posting at its sorted position
        instead, preserving that invariant under arbitrary insertions.
        """
        length = record.length
        if not can_partition(length, self.tau):
            return 0
        row = self.store.intern(record)
        if length not in self._indices:
            self._lengths_version += 1
        per_length = self._indices.setdefault(length, {})
        added_bytes = 0
        for segment in partition(record.text, self.tau, self.strategy):
            per_ordinal = per_length.setdefault(segment.ordinal, {})
            postings = per_ordinal.get(segment.text)
            if postings is None:
                per_ordinal[segment.text] = array("q", (row,))
                added_bytes += len(segment.text) + POSTING_BYTES
            else:
                if keep_sorted:
                    insort(postings, row, key=self.store.sort_key)
                else:
                    postings.append(row)
                added_bytes += POSTING_BYTES
        self._records_per_length[length] = self._records_per_length.get(length, 0) + 1
        self._segment_count += self.tau + 1
        self._entries_by_length[length] = (
            self._entries_by_length.get(length, 0) + self.tau + 1)
        self._bytes_by_length[length] = (
            self._bytes_by_length.get(length, 0) + added_bytes)
        self._current_entries += self.tau + 1
        self._current_bytes += added_bytes
        return self.tau + 1

    def add_all(self, records: Iterable[StringRecord]) -> int:
        """Index every record; return the total number of segments added."""
        return sum(self.add(record) for record in records)

    def remove(self, record: StringRecord) -> int:
        """Remove a previously :meth:`add`-ed record's postings.

        This is the compaction hook for the online service layer
        (:class:`repro.service.DynamicSearcher`): tombstoned records are
        physically purged from the inverted lists here, keeping the
        remaining entries in their original relative order.  Emptied
        segment buckets *and* their enclosing per-ordinal dictionaries are
        pruned, so a long-lived dynamic index never accumulates empty dict
        shells.  Returns the number of postings removed (``0`` when the
        record was never indexed, e.g. because it was too short to
        partition), and releases the record's store row once its last
        posting is gone.
        """
        length = record.length
        if not can_partition(length, self.tau):
            return 0
        per_length = self._indices.get(length)
        if per_length is None:
            return 0
        row = self.store.find(record.id, record.text)
        if row is None:
            return 0
        removed = 0
        removed_bytes = 0
        for segment in partition(record.text, self.tau, self.strategy):
            per_ordinal = per_length.get(segment.ordinal)
            if per_ordinal is None:
                continue
            postings = per_ordinal.get(segment.text)
            if postings is None:
                continue
            try:
                postings.remove(row)
            except ValueError:
                continue
            removed += 1
            removed_bytes += POSTING_BYTES
            if not postings:
                del per_ordinal[segment.text]
                removed_bytes += len(segment.text)
                if not per_ordinal:
                    del per_length[segment.ordinal]
        if removed == 0:
            return 0
        self.store.release(row)
        remaining = self._records_per_length.get(length, 0) - 1
        if remaining > 0:
            self._records_per_length[length] = remaining
        else:
            self._records_per_length.pop(length, None)
        if not per_length:
            self._indices.pop(length, None)
            self._lengths_version += 1
        self._entries_by_length[length] = (
            self._entries_by_length.get(length, 0) - removed)
        self._bytes_by_length[length] = (
            self._bytes_by_length.get(length, 0) - removed_bytes)
        if remaining <= 0:
            self._entries_by_length.pop(length, None)
            self._bytes_by_length.pop(length, None)
        self._current_entries -= removed
        self._current_bytes -= removed_bytes
        return removed

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def has_length(self, length: int) -> bool:
        """True when at least one string of ``length`` is indexed."""
        return length in self._indices

    def indexed_lengths(self) -> list[int]:
        """Return the indexed string lengths in ascending order."""
        return sorted(self._indices)

    def layout(self, length: int) -> tuple[tuple[int, int], ...]:
        """Return the segment layout used for indexed strings of ``length``."""
        return segment_layout(length, self.tau, self.strategy)

    def lookup(self, length: int, ordinal: int, text: str) -> Sequence[StringRecord]:
        """Return the inverted list ``L_length^ordinal(text)`` (possibly empty).

        Hits come back as a lazy :class:`~repro.core.store.PostingList`
        view: iterating it materialises records on demand, while the probe
        hot path reads its ``ordinals``/``store`` columns directly.
        """
        per_length = self._indices.get(length)
        if per_length is None:
            return ()
        per_ordinal = per_length.get(ordinal)
        if per_ordinal is None:
            return ()
        postings = per_ordinal.get(text)
        if postings is None:
            return ()
        return PostingList(self.store, postings)

    def records_with_length(self, length: int) -> int:
        """Number of indexed strings of exactly ``length``."""
        return self._records_per_length.get(length, 0)

    # ------------------------------------------------------------------
    # Lifecycle / accounting
    # ------------------------------------------------------------------
    def evict_below(self, min_length: int) -> int:
        """Drop indices for lengths smaller than ``min_length``.

        Returns the number of length groups removed.  The Pass-Join driver
        calls this as it advances through the sorted input, which bounds the
        number of live length groups by ``τ + 1``.  The store rows of the
        evicted records are released (every record appears exactly once per
        ``add`` in its ordinal-1 list), so the sliding-window join keeps
        the record table bounded by the live window too.
        """
        stale = [length for length in self._indices if length < min_length]
        if stale:
            self._lengths_version += 1
        for length in stale:
            per_length = self._indices.pop(length)
            for postings in per_length.get(1, {}).values():
                for row in postings:
                    self.store.release(row)
            self._records_per_length.pop(length, None)
            self._current_entries -= self._entries_by_length.pop(length, 0)
            self._current_bytes -= self._bytes_by_length.pop(length, 0)
        return len(stale)

    @property
    def lengths_version(self) -> int:
        """Generation counter of the indexed length *set*.

        Changes exactly when a length group is created or destroyed
        (:meth:`add` of a first record, :meth:`remove` of a last record,
        :meth:`evict_below`).  Persistent window caches compare it against
        the value they last saw and clear themselves on mismatch.
        """
        return self._lengths_version

    @property
    def segment_count(self) -> int:
        """Total number of segments ever added (Table 3 accounting)."""
        return self._segment_count

    @property
    def current_entry_count(self) -> int:
        """Number of postings currently stored (cheap incremental counter)."""
        return self._current_entries

    @property
    def current_approximate_bytes(self) -> int:
        """Approximate bytes currently stored (cheap incremental counter)."""
        return self._current_bytes

    def entry_count(self) -> int:
        """Total number of (segment text → row) postings currently stored."""
        total = 0
        for per_length in self._indices.values():
            for per_ordinal in per_length.values():
                for postings in per_ordinal.values():
                    total += len(postings)
        return total

    def distinct_segment_count(self) -> int:
        """Number of distinct (length, ordinal, segment text) keys stored."""
        total = 0
        for per_length in self._indices.values():
            for per_ordinal in per_length.values():
                total += len(per_ordinal)
        return total

    def approximate_bytes(self) -> int:
        """Rough memory footprint of the inverted lists (Table 3 comparison).

        The estimate counts the segment key strings plus one machine word
        (8 bytes) per posting — exactly one ``array('q')`` slot in the
        columnar layout — mirroring how the paper counts "an integer to
        encode a segment" plus the inverted lists.  Python object overhead
        is deliberately excluded so the number reflects the data structure,
        not the runtime; the record columns are accounted separately by
        :meth:`RecordStore.approximate_bytes` (see :meth:`memory_report`).
        """
        total = 0
        for per_length in self._indices.values():
            for per_ordinal in per_length.values():
                for text, postings in per_ordinal.items():
                    total += len(text.encode("utf-8", errors="replace"))
                    total += POSTING_BYTES * len(postings)
        return total

    def deep_bytes(self) -> int:
        """Actual ``sys.getsizeof``-based footprint (includes dict overhead)."""
        total = sys.getsizeof(self._indices) + self.store.deep_bytes()
        for per_length in self._indices.values():
            total += sys.getsizeof(per_length)
            for per_ordinal in per_length.values():
                total += sys.getsizeof(per_ordinal)
                for text, postings in per_ordinal.items():
                    total += sys.getsizeof(text) + sys.getsizeof(postings)
        return total

    def memory_report(self) -> dict[str, int]:
        """Memory figures of the columnar layout, for the ``stats`` op and
        the batch-search benchmark.

        ``records`` counts live store rows (for a dynamic index this
        includes tombstoned records until compaction physically purges
        them); ``approximate_bytes`` is the inverted lists plus the record
        columns.
        """
        store_bytes = self.store.approximate_bytes()
        return {
            "records": self.store.live_count,
            "postings": self._current_entries,
            "distinct_segments": self.distinct_segment_count(),
            "postings_bytes": self._current_bytes,
            "store_bytes": store_bytes,
            "approximate_bytes": self._current_bytes + store_bytes,
        }

    def object_layout_bytes(self) -> int:
        """Estimated footprint of the pre-columnar object-list layout.

        The counterfactual the memory benchmark compares against: the same
        inverted lists holding per-posting references to heap
        ``StringRecord`` objects — so each live record pays one record
        object plus one string object on top of its text, where the
        columnar layout pays three machine words.  Posting and segment-key
        bytes are identical in both layouts and counted the same way as
        :meth:`approximate_bytes`.
        """
        record_overhead = sys.getsizeof(StringRecord(id=0, text=""))
        str_overhead = sys.getsizeof("")
        total = self.approximate_bytes()
        store = self.store
        for row in range(store.row_count):
            if not store.is_live(row):
                continue
            total += record_overhead + str_overhead + len(store.text_at(row))
        return total

    def __len__(self) -> int:
        return self.entry_count()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SegmentIndex(tau={self.tau}, lengths={len(self._indices)}, "
                f"entries={self.entry_count()})")
