"""Shared filter-and-verify probe engine.

The heart of Pass-Join — "given one probe string, find every similar string
in a segment index" — is needed by two drivers with different index
lifecycles:

* :class:`~repro.core.join.PassJoin` builds the index *incrementally* while
  it sweeps the sorted input (self join) or once up front (R-S join), and
  probes on the same thread.
* :class:`~repro.core.parallel.ParallelPassJoin` builds one *static* index
  over the whole collection and fans probe chunks out to workers.

This module holds the logic both share: the canonical record ordering, the
static index builder, and :func:`probe_record`, the per-probe
select → lookup → verify pipeline.  The optional ``accept`` predicate lets
the parallel self join reproduce the serial driver's "only already-visited
strings are indexed" invariant on a full static index: a worker probing the
record at sort position ``p`` accepts only partners at positions ``< p``,
which yields exactly the serial result set with no cross-chunk
deduplication.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

from ..config import PartitionStrategy
from ..distance.banded import length_aware_edit_distance
from ..types import JoinStatistics, StringRecord
from .index import SegmentIndex
from .partition import can_partition
from .selection import SubstringSelector
from .verify import BaseVerifier, MatchContext


def sort_key(record: StringRecord) -> tuple[int, str]:
    """Canonical (length, text) ordering used by every Pass-Join driver."""
    return (record.length, record.text)


def sort_records(records: Sequence[StringRecord]) -> list[StringRecord]:
    """Return records in canonical order (stable, so ties keep input order)."""
    return sorted(records, key=sort_key)


def build_static_index(ordered: Sequence[StringRecord], tau: int,
                       strategy: PartitionStrategy,
                       ) -> tuple[SegmentIndex, list[StringRecord]]:
    """Index every partitionable record; pool the rest.

    ``ordered`` must already be in canonical order — insertion order is what
    keeps every inverted list sorted by the indexed string, the property the
    shared-prefix verifier exploits.  Returns the index and the side pool of
    strings too short to partition into ``tau + 1`` non-empty segments.
    """
    index = SegmentIndex(tau, strategy)
    short_pool: list[StringRecord] = []
    for record in ordered:
        if can_partition(record.length, tau):
            index.add(record)
        else:
            short_pool.append(record)
    return index, short_pool


def probe_record(probe: StringRecord, *, tau: int, index: SegmentIndex,
                 short_pool: Sequence[StringRecord],
                 selector: SubstringSelector, verifier: BaseVerifier,
                 stats: JoinStatistics, max_length: int,
                 allow_same_id: bool = False,
                 accept: Callable[[StringRecord], bool] | None = None,
                 ) -> list[tuple[StringRecord, int]]:
    """Find indexed (and short-pool) strings similar to ``probe``.

    ``max_length`` bounds the indexed lengths probed: ``|probe|`` for the
    self join (a partner longer than the probe sorts after it) and
    ``|probe| + τ`` for the R-S join.  ``accept`` optionally restricts which
    indexed records may partner the probe; records it rejects are skipped
    before candidate counting and verification, exactly as if they were not
    indexed at all.
    """
    found: dict[int, int] = {}
    checked: set[int] = set()
    min_length = probe.length - tau

    # Strings too short to partition are verified directly.
    for record in short_pool:
        if record.id == probe.id and not allow_same_id:
            continue
        if accept is not None and not accept(record):
            continue
        if abs(record.length - probe.length) > tau:
            continue
        verification_started = time.perf_counter()
        stats.num_verifications += 1
        distance = length_aware_edit_distance(record.text, probe.text, tau, stats)
        stats.verification_seconds += time.perf_counter() - verification_started
        if distance <= tau:
            found[record.id] = distance
    matches: list[tuple[StringRecord, int]] = [
        (record, found[record.id]) for record in short_pool
        if record.id in found
    ]

    skip_rechecks = verifier.exact_per_pair
    for length in range(max(min_length, 0), max_length + 1):
        if not index.has_length(length):
            continue
        layout = index.layout(length)

        selection_started = time.perf_counter()
        selections = selector.select(probe.text, length, layout)
        stats.selection_seconds += time.perf_counter() - selection_started
        stats.num_selected_substrings += len(selections)

        for selection in selections:
            stats.num_index_probes += 1
            postings = index.lookup(length, selection.ordinal, selection.text)
            if not postings:
                continue
            candidates = []
            for record in postings:
                if record.id == probe.id and not allow_same_id:
                    continue
                if accept is not None and not accept(record):
                    continue
                if record.id in found:
                    continue
                if skip_rechecks and record.id in checked:
                    continue
                candidates.append(record)
            if not candidates:
                continue
            stats.num_candidates += len(candidates)
            context = MatchContext(ordinal=selection.ordinal,
                                   probe_start=selection.start,
                                   seg_start=selection.seg_start,
                                   seg_length=selection.seg_length)
            verification_started = time.perf_counter()
            accepted = verifier.verify_candidates(probe.text, candidates, context)
            stats.verification_seconds += time.perf_counter() - verification_started
            if skip_rechecks:
                checked.update(record.id for record in candidates)
            for record, distance in accepted:
                if record.id not in found:
                    found[record.id] = distance
                    matches.append((record, distance))
    return matches
