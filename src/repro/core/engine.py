"""Shared filter-and-verify probe engine.

The heart of Pass-Join — "given one probe string, find every similar string
in a segment index" — is needed by two drivers with different index
lifecycles:

* :class:`~repro.core.join.PassJoin` builds the index *incrementally* while
  it sweeps the sorted input (self join) or once up front (R-S join), and
  probes on the same thread.
* :class:`~repro.core.parallel.ParallelPassJoin` builds one *static* index
  over the whole collection and fans probe chunks out to workers.

This module holds the logic both share: the canonical record ordering, the
static index builder, and :func:`probe_record`, the per-probe
select → lookup → verify pipeline.  The optional ``accept`` predicate (a
function of the candidate's record *id*) lets the parallel self join
reproduce the serial driver's "only already-visited strings are indexed"
invariant on a full static index: a worker probing the record at sort
position ``p`` accepts only partners at positions ``< p``, which yields
exactly the serial result set with no cross-chunk deduplication.

Candidate filtering runs on the columnar postings directly — record ids are
read straight from the :class:`~repro.core.store.RecordStore` id column and
surviving row ordinals are handed to the verifier's ``verify_rows`` entry
point, so a :class:`~repro.types.StringRecord` is only materialised for
candidates the verifier actually touches (and, for the batched Myers
verifier, only for candidates it *accepts*).

:func:`probe_many` is the v2 batch-probe executor on top of the same
pipeline: a whole batch of ``(query, tau)`` lookups is answered in one
pass, with duplicate queries executed once and the selection windows of
every ``(query length, indexed length)`` combination resolved through a
:class:`~repro.core.selection.WindowCache` — shared across groups that
differ only in ``tau`` (the window formula depends on the index partition
threshold, not the per-query one), and, when the caller passes its
persistent cache, across batches and across ``search``/``search_many``/
``explain`` calls too (hits counted as ``num_windows_cache_hits``,
within-batch reuse as ``num_windows_reused``).  When several queries in a
group probe the same posting list, the list is scanned once and the
surviving row ordinals fan out to every interested query before
verification (``num_postings_fanout``).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Sequence

from ..config import PartitionStrategy
from ..distance.banded import length_aware_edit_distance
from ..types import JoinStatistics, StringRecord
from .index import SegmentIndex
from .partition import can_partition
from .selection import SubstringSelector, WindowCache, substrings_from_windows
from .verify import BaseVerifier, MatchContext

if TYPE_CHECKING:
    from ..obs.trace import ProbeTrace


def sort_key(record: StringRecord) -> tuple[int, str]:
    """Canonical (length, text) ordering used by every Pass-Join driver."""
    return (record.length, record.text)


def sort_records(records: Sequence[StringRecord]) -> list[StringRecord]:
    """Return records in canonical order (stable, so ties keep input order)."""
    return sorted(records, key=sort_key)


def build_static_index(ordered: Sequence[StringRecord], tau: int,
                       strategy: PartitionStrategy,
                       ) -> tuple[SegmentIndex, list[StringRecord]]:
    """Index every partitionable record; pool the rest.

    ``ordered`` must already be in canonical order — insertion order is what
    keeps every inverted list sorted by the indexed string, the property the
    shared-prefix verifier exploits.  Returns the index and the side pool of
    strings too short to partition into ``tau + 1`` non-empty segments.
    """
    index = SegmentIndex(tau, strategy)
    short_pool: list[StringRecord] = []
    for record in ordered:
        if can_partition(record.length, tau):
            index.add(record)
        else:
            short_pool.append(record)
    return index, short_pool


def probe_record(probe: StringRecord, *, tau: int, index: SegmentIndex,
                 short_pool: Sequence[StringRecord],
                 selector: SubstringSelector, verifier: BaseVerifier,
                 stats: JoinStatistics, max_length: int,
                 allow_same_id: bool = False,
                 accept: Callable[[int], bool] | None = None,
                 trace: "ProbeTrace | None" = None,
                 window_cache: WindowCache | None = None,
                 ) -> list[tuple[StringRecord, int]]:
    """Find indexed (and short-pool) strings similar to ``probe``.

    ``max_length`` bounds the indexed lengths probed: ``|probe|`` for the
    self join (a partner longer than the probe sorts after it) and
    ``|probe| + τ`` for the R-S join.  ``accept`` optionally restricts which
    indexed records may partner the probe by record id; ids it rejects are
    skipped before candidate counting and verification, exactly as if they
    were not indexed at all.

    ``trace`` optionally collects a per-indexed-length breakdown for the
    ``explain`` op.  The per-posting filter loop is duplicated so that the
    untraced hot path executes unchanged when ``trace`` is ``None``.

    ``window_cache`` optionally resolves selection windows through a
    persistent :class:`~repro.core.selection.WindowCache` (hits counted as
    ``num_windows_cache_hits``) instead of recomputing them per probe; the
    substrings are then sliced from the cached windows.
    """
    found: dict[int, int] = {}
    checked: set[int] = set()
    min_length = probe.length - tau
    probe_id = probe.id

    # Strings too short to partition are verified directly.
    for record in short_pool:
        if record.id == probe_id and not allow_same_id:
            continue
        if accept is not None and not accept(record.id):
            continue
        if abs(record.length - probe.length) > tau:
            continue
        verification_started = time.perf_counter()
        stats.num_verifications += 1
        distance = length_aware_edit_distance(record.text, probe.text, tau, stats)
        stats.verification_seconds += time.perf_counter() - verification_started
        if trace is not None:
            trace.short_pool_checked += 1
            if distance <= tau:
                trace.short_pool_accepted += 1
        if distance <= tau:
            found[record.id] = distance
    matches: list[tuple[StringRecord, int]] = [
        (record, found[record.id]) for record in short_pool
        if record.id in found
    ]

    skip_rechecks = verifier.exact_per_pair
    for length in range(max(min_length, 0), max_length + 1):
        if not index.has_length(length):
            continue
        layout = index.layout(length)

        selection_started = time.perf_counter()
        if window_cache is None:
            selections = selector.select(probe.text, length, layout)
        else:
            selections = substrings_from_windows(
                probe.text,
                window_cache.windows(probe.length, length, layout, stats))
        stats.selection_seconds += time.perf_counter() - selection_started
        stats.num_selected_substrings += len(selections)
        entry = (None if trace is None
                 else trace.length_entry(length, layout, len(selections)))

        for selection in selections:
            stats.num_index_probes += 1
            if entry is not None:
                entry["index_probes"] += 1
            postings = index.lookup(length, selection.ordinal, selection.text)
            if not postings:
                continue
            stats.num_postings_scanned += len(postings)
            store = postings.store
            store_ids = store.ids
            rows: list[int] = []
            row_ids: list[int] = []
            if entry is None:
                for row in postings.ordinals:
                    record_id = store_ids[row]
                    if record_id == probe_id and not allow_same_id:
                        continue
                    if accept is not None and not accept(record_id):
                        continue
                    if record_id in found:
                        continue
                    if skip_rechecks and record_id in checked:
                        continue
                    rows.append(row)
                    row_ids.append(record_id)
            else:
                # Traced twin of the loop above: identical filter order,
                # plus per-filter attribution for the explain report.
                entry["postings_scanned"] += len(postings)
                for row in postings.ordinals:
                    record_id = store_ids[row]
                    if record_id == probe_id and not allow_same_id:
                        entry["filtered_same_id"] += 1
                        continue
                    if accept is not None and not accept(record_id):
                        entry["filtered_excluded"] += 1
                        continue
                    if record_id in found:
                        entry["filtered_already_found"] += 1
                        continue
                    if skip_rechecks and record_id in checked:
                        entry["filtered_rechecked"] += 1
                        continue
                    rows.append(row)
                    row_ids.append(record_id)
            if not rows:
                continue
            stats.num_candidates += len(rows)
            if entry is not None:
                entry["candidates"] += len(rows)
            context = MatchContext(ordinal=selection.ordinal,
                                   probe_start=selection.start,
                                   seg_start=selection.seg_start,
                                   seg_length=selection.seg_length)
            verifications_before = stats.num_verifications
            verification_started = time.perf_counter()
            accepted = verifier.verify_rows(probe.text, store, rows, context)
            stats.verification_seconds += time.perf_counter() - verification_started
            if entry is not None:
                entry["verifications"] += (stats.num_verifications
                                           - verifications_before)
            if skip_rechecks:
                checked.update(row_ids)
            for record, distance in accepted:
                if record.id not in found:
                    found[record.id] = distance
                    matches.append((record, distance))
                    if entry is not None:
                        entry["accepted"] += 1
    stats.num_accepted += len(matches)
    return matches


class _BatchQueryState:
    """Per-unique-query accumulator of one :func:`probe_many` group."""

    __slots__ = ("text", "positions", "found", "matches", "checked", "accept")

    def __init__(self, text: str, positions: list[int], skip_rechecks: bool,
                 accept: Callable[[int], bool] | None) -> None:
        self.text = text
        self.positions = positions
        self.found: dict[int, int] = {}
        self.matches: list[tuple[StringRecord, int]] = []
        self.checked: set[int] | None = set() if skip_rechecks else None
        self.accept = accept


def probe_many(queries: Sequence[tuple[str, int]], *, index: SegmentIndex,
               short_pool: Sequence[StringRecord],
               selector: SubstringSelector,
               verifier_factory: Callable[[int], BaseVerifier],
               stats: JoinStatistics,
               accept: (Callable[[int], bool]
                        | Sequence[Callable[[int], bool] | None] | None) = None,
               window_cache: WindowCache | None = None,
               ) -> list[list[tuple[StringRecord, int]]]:
    """Answer a batch of ``(query text, tau)`` searches in one grouped pass.

    The v2 batch executor behind ``search_many()`` and the batch-aware
    top-k widening:

    1. **Deduplicate** — identical ``(query, tau)`` pairs (under the same
       ``accept`` predicate) are probed once and their result is fanned
       out to every occurrence.
    2. **Group by shape** — unique queries are grouped by
       ``(query length, tau)``.  Selection windows depend only on the
       probe *length* and the indexed length (the selector's tau is the
       index partition threshold, not the per-query one), so every window
       set is resolved through a :class:`~repro.core.selection.WindowCache`
       — per-call when none is passed, the caller's persistent one
       otherwise, sharing windows across batches and across tau groups
       alike (``num_windows_cache_hits``; within-call cross-group reuse is
       additionally counted as ``num_windows_reused``).
    3. **Fused candidate accumulation** — when several queries in a group
       probe the same posting list (same indexed length, ordinal, and
       substring), the list is scanned once and the row ordinals fan out
       to every interested query (``num_postings_fanout`` counts the
       scans saved), each query then applying its own id filters.
    4. **Stream verification** — candidates are verified per query exactly
       as in :func:`probe_record`, so each result list is
       element-identical to the per-query pipeline (the property-test
       contract).

    Queries are treated as external probes (the search use case): no
    same-id filtering is applied beyond the optional ``accept`` predicate
    on candidate record ids.  ``accept`` is either one predicate applied
    to every query or a sequence aligned with ``queries`` (one predicate
    or ``None`` per position) — the hook the batch top-k widening uses to
    exclude each query's already-found partners.  Returns one
    ``(record, distance)`` list per input position, aligned with
    ``queries``.
    """
    results: list[list[tuple[StringRecord, int]]] = [[] for _ in queries]
    if accept is None or callable(accept):
        accepts: list[Callable[[int], bool] | None] = [accept] * len(queries)
    else:
        accepts = list(accept)
        if len(accepts) != len(queries):
            raise ValueError(
                f"accept sequence length {len(accepts)} does not match "
                f"{len(queries)} queries")
    if window_cache is None:
        window_cache = WindowCache(selector)

    unique: dict[tuple, list[int]] = {}
    for position, (text, tau) in enumerate(queries):
        unique.setdefault((text, tau, accepts[position]), []).append(position)
    groups: dict[tuple[int, int],
                 list[tuple[str, list[int],
                            Callable[[int], bool] | None]]] = {}
    for (text, tau, query_accept), positions in unique.items():
        groups.setdefault((len(text), tau), []).append(
            (text, positions, query_accept))

    # Tracks (query length, indexed length) pairs already resolved during
    # *this* call so cross-group sharing within one batch keeps its own
    # counter next to the persistent cache's hit counter.
    seen_windows: set[tuple[int, int]] = set()

    for (query_length, tau), members in sorted(groups.items(),
                                               key=lambda item: item[0]):
        verifier = verifier_factory(tau)
        skip_rechecks = verifier.exact_per_pair
        states = [_BatchQueryState(text, positions, skip_rechecks, query_accept)
                  for text, positions, query_accept in members]

        # Strings too short to partition are verified directly, per query.
        for record in short_pool:
            if abs(record.length - query_length) > tau:
                continue
            for state in states:
                state_accept = state.accept
                if state_accept is not None and not state_accept(record.id):
                    continue
                verification_started = time.perf_counter()
                stats.num_verifications += 1
                distance = length_aware_edit_distance(record.text, state.text,
                                                      tau, stats)
                stats.verification_seconds += (
                    time.perf_counter() - verification_started)
                if distance <= tau:
                    state.found[record.id] = distance
                    state.matches.append((record, distance))

        for length in range(max(0, query_length - tau), query_length + tau + 1):
            if not index.has_length(length):
                continue
            layout = index.layout(length)
            if (query_length, length) in seen_windows:
                stats.num_windows_reused += 1
            else:
                seen_windows.add((query_length, length))
            selection_started = time.perf_counter()
            windows = window_cache.windows(query_length, length, layout, stats)
            stats.selection_seconds += time.perf_counter() - selection_started

            for window in windows:
                size = window.size
                if size <= 0:
                    continue
                seg_length = window.seg_length
                ordinal = window.ordinal
                seg_start = window.seg_start
                stats.num_selected_substrings += size * len(states)
                for start in range(window.lo, window.hi + 1):
                    if len(states) == 1:
                        # Dominant case (all-distinct shapes): no fusion
                        # bookkeeping, same inner loop as the per-query path.
                        probers = ((states[0].text[start:start + seg_length],
                                    states),)
                    else:
                        by_substring: dict[str, list[_BatchQueryState]] = {}
                        for state in states:
                            by_substring.setdefault(
                                state.text[start:start + seg_length],
                                []).append(state)
                        probers = tuple(by_substring.items())
                    for substring, interested in probers:
                        stats.num_index_probes += 1
                        postings = index.lookup(length, ordinal, substring)
                        if not postings:
                            continue
                        stats.num_postings_scanned += len(postings)
                        if len(interested) > 1:
                            # One scan of this posting list serves every
                            # interested query in the group.
                            stats.num_postings_fanout += len(interested) - 1
                        store = postings.store
                        store_ids = store.ids
                        if len(interested) > 1:
                            # Resolve the id column once; each query applies
                            # its own filters to the shared (row, id) stream.
                            candidates = [(row, store_ids[row])
                                          for row in postings.ordinals]
                        else:
                            candidates = None
                        context = None
                        for state in interested:
                            found = state.found
                            checked = state.checked
                            state_accept = state.accept
                            rows = []
                            row_ids = []
                            if candidates is None:
                                for row in postings.ordinals:
                                    record_id = store_ids[row]
                                    if (state_accept is not None
                                            and not state_accept(record_id)):
                                        continue
                                    if record_id in found:
                                        continue
                                    if (checked is not None
                                            and record_id in checked):
                                        continue
                                    rows.append(row)
                                    row_ids.append(record_id)
                            else:
                                for row, record_id in candidates:
                                    if (state_accept is not None
                                            and not state_accept(record_id)):
                                        continue
                                    if record_id in found:
                                        continue
                                    if (checked is not None
                                            and record_id in checked):
                                        continue
                                    rows.append(row)
                                    row_ids.append(record_id)
                            if not rows:
                                continue
                            stats.num_candidates += len(rows)
                            if context is None:
                                context = MatchContext(ordinal=ordinal,
                                                       probe_start=start,
                                                       seg_start=seg_start,
                                                       seg_length=seg_length)
                            verification_started = time.perf_counter()
                            accepted = verifier.verify_rows(
                                state.text, store, rows, context)
                            stats.verification_seconds += (
                                time.perf_counter() - verification_started)
                            if checked is not None:
                                checked.update(row_ids)
                            for record, distance in accepted:
                                if record.id not in found:
                                    found[record.id] = distance
                                    state.matches.append((record, distance))

        for state in states:
            # Counted once per unique query (not per fan-out position), so
            # the funnel invariant accepted <= verifications holds.
            stats.num_accepted += len(state.matches)
            for position in state.positions:
                results[position] = list(state.matches)
    return results
