"""The Pass-Join driver (Algorithm 1 of the paper).

:class:`PassJoin` glues the partition scheme, the segment inverted indices,
a substring selector, and a verifier into the full filter-and-verify join.

Self join (``R = S``)
    Strings are sorted by (length, text) and visited in order.  For the
    current string ``s`` the driver probes the indices of lengths in
    ``[|s| − τ, |s|]`` (only already-visited strings are indexed, so no pair
    is enumerated twice), verifies the candidates, then partitions ``s`` and
    inserts its segments.  Indices for lengths below ``|s| − τ`` are evicted.

R–S join
    The strings of ``S`` are indexed (grouped by length); each string of
    ``R`` then probes the indices of lengths in ``[|r| − τ, |r| + τ]``.

Strings shorter than ``τ + 1`` cannot be partitioned into ``τ + 1``
non-empty segments (the paper assumes they do not occur).  To keep the
implementation total, such strings are kept in a small side pool and joined
by direct verification within the length window; this preserves the exact
result set on arbitrary inputs and costs nothing when, as in the paper's
datasets, no such string exists.
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

from ..config import DEFAULT_CONFIG, JoinConfig, validate_threshold
from ..types import (JoinResult, JoinStatistics, SimilarPair, StringRecord,
                     as_records, normalise_pair)
from .engine import probe_record, sort_key as _sort_key
from .index import SegmentIndex
from .partition import can_partition
from .selection import SubstringSelector, make_selector
from .verify import BaseVerifier, make_verifier


class PassJoin:
    """Partition-based string similarity join with edit-distance threshold.

    Parameters
    ----------
    tau:
        Edit-distance threshold.
    config:
        Optional :class:`~repro.config.JoinConfig` selecting the substring
        selection method, verification strategy, and partition strategy.

    Examples
    --------
    >>> join = PassJoin(tau=2)
    >>> result = join.self_join(["vldb", "pvldb", "sigmod", "icde"])
    >>> sorted((pair.left, pair.right) for pair in result)
    [('vldb', 'pvldb')]
    """

    def __init__(self, tau: int, config: JoinConfig | None = None) -> None:
        self.tau = validate_threshold(tau)
        self.config = config if config is not None else DEFAULT_CONFIG

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def self_join(self, strings: Iterable[str | StringRecord]) -> JoinResult:
        """Find every pair of strings within the threshold in one collection."""
        records = as_records(strings)
        stats = JoinStatistics(num_strings=len(records))
        selector = make_selector(self.config.selection, self.tau)
        verifier = make_verifier(self.config.verification, self.tau, stats)
        started = time.perf_counter()
        pairs = self._self_join(records, selector, verifier, stats)
        stats.total_seconds = time.perf_counter() - started
        stats.num_results = len(pairs)
        return JoinResult(pairs=pairs, statistics=stats)

    def join(self, left: Iterable[str | StringRecord],
             right: Iterable[str | StringRecord]) -> JoinResult:
        """Find every pair ``(r ∈ left, s ∈ right)`` within the threshold."""
        left_records = as_records(left)
        right_records = as_records(right)
        stats = JoinStatistics(num_strings=len(left_records) + len(right_records))
        selector = make_selector(self.config.selection, self.tau)
        verifier = make_verifier(self.config.verification, self.tau, stats)
        started = time.perf_counter()
        pairs = self._rs_join(left_records, right_records, selector, verifier, stats)
        stats.total_seconds = time.perf_counter() - started
        stats.num_results = len(pairs)
        return JoinResult(pairs=pairs, statistics=stats)

    # ------------------------------------------------------------------
    # Self join
    # ------------------------------------------------------------------
    def _self_join(self, records: Sequence[StringRecord],
                   selector: SubstringSelector, verifier: BaseVerifier,
                   stats: JoinStatistics) -> list[SimilarPair]:
        tau = self.tau
        ordered = sorted(records, key=_sort_key)
        index = SegmentIndex(tau, self.config.partition)
        short_pool: list[StringRecord] = []
        pairs: list[SimilarPair] = []

        for probe in ordered:
            matches = self._probe(probe, index, short_pool, selector, verifier,
                                  stats, max_length=probe.length)
            for partner, distance in matches:
                pairs.append(normalise_pair(probe.id, partner.id, distance,
                                            probe.text, partner.text))
            # Index the probe so later (longer or equal) strings can find it.
            indexing_started = time.perf_counter()
            if can_partition(probe.length, tau):
                index.add(probe)
                stats.num_indexed_segments += tau + 1
            else:
                short_pool.append(probe)
            index.evict_below(probe.length - tau)
            stats.indexing_seconds += time.perf_counter() - indexing_started
            stats.index_entries = max(stats.index_entries, index.current_entry_count)
            stats.index_bytes = max(stats.index_bytes, index.current_approximate_bytes)
        return pairs

    # ------------------------------------------------------------------
    # R-S join
    # ------------------------------------------------------------------
    def _rs_join(self, left: Sequence[StringRecord], right: Sequence[StringRecord],
                 selector: SubstringSelector, verifier: BaseVerifier,
                 stats: JoinStatistics) -> list[SimilarPair]:
        tau = self.tau
        index = SegmentIndex(tau, self.config.partition)
        short_pool: list[StringRecord] = []

        indexing_started = time.perf_counter()
        for record in sorted(right, key=_sort_key):
            if can_partition(record.length, tau):
                index.add(record)
                stats.num_indexed_segments += tau + 1
            else:
                short_pool.append(record)
        stats.indexing_seconds += time.perf_counter() - indexing_started
        stats.index_entries = index.current_entry_count
        stats.index_bytes = index.current_approximate_bytes

        pairs: list[SimilarPair] = []
        for probe in sorted(left, key=_sort_key):
            matches = self._probe(probe, index, short_pool, selector, verifier,
                                  stats, max_length=probe.length + tau,
                                  allow_same_id=True)
            for partner, distance in matches:
                pairs.append(SimilarPair(left_id=probe.id, right_id=partner.id,
                                         distance=distance, left=probe.text,
                                         right=partner.text))
        return pairs

    # ------------------------------------------------------------------
    # Shared probing logic
    # ------------------------------------------------------------------
    def _probe(self, probe: StringRecord, index: SegmentIndex,
               short_pool: Sequence[StringRecord], selector: SubstringSelector,
               verifier: BaseVerifier, stats: JoinStatistics, max_length: int,
               allow_same_id: bool = False) -> list[tuple[StringRecord, int]]:
        """Find indexed (and short-pool) strings similar to ``probe``.

        ``max_length`` bounds the indexed lengths probed: ``|probe|`` for the
        self join (longer strings are not indexed yet) and ``|probe| + τ``
        for the R–S join.  The actual pipeline lives in
        :func:`repro.core.engine.probe_record`, shared with the parallel
        driver.
        """
        return probe_record(probe, tau=self.tau, index=index,
                            short_pool=short_pool, selector=selector,
                            verifier=verifier, stats=stats,
                            max_length=max_length, allow_same_id=allow_same_id)


# ----------------------------------------------------------------------
# Convenience functions
# ----------------------------------------------------------------------
def pass_join(strings: Iterable[str | StringRecord], tau: int,
              config: JoinConfig | None = None) -> JoinResult:
    """Self-join a collection of strings with threshold ``tau``.

    >>> result = pass_join(["vldb", "pvldb", "icde"], tau=1)
    >>> [(pair.left, pair.right) for pair in result]
    [('vldb', 'pvldb')]
    """
    return PassJoin(tau, config).self_join(strings)


def pass_join_pairs(strings: Iterable[str | StringRecord], tau: int,
                    config: JoinConfig | None = None) -> list[tuple[int, int]]:
    """Self-join and return just the sorted (left_id, right_id) tuples."""
    return sorted(pass_join(strings, tau, config).pair_ids())


def pass_join_rs(left: Iterable[str | StringRecord],
                 right: Iterable[str | StringRecord], tau: int,
                 config: JoinConfig | None = None) -> JoinResult:
    """Join two distinct collections with threshold ``tau``."""
    return PassJoin(tau, config).join(left, right)
